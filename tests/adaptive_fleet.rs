//! End-to-end guarantees of the adaptation subsystem (ISSUE 2 acceptance):
//!
//! 1. under an injected workload shift, the adaptive fleet achieves a
//!    lower mean TTF prediction error than the frozen-model fleet on the
//!    same seeds, while the retrainer runs concurrently with (never
//!    pausing) the worker pool;
//! 2. with drift triggering disabled, `run_adaptive` is outcome-identical
//!    to the frozen run — which transitively extends the existing
//!    single-instance `evaluate_policy` parity to the service path.

use software_aging::adapt::{AdaptConfig, AdaptiveService, DriftConfig};
use software_aging::core::rejuvenation::evaluate_policy;
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, InstanceSpec, WorkloadShift};
use software_aging::ml::m5p::M5pLearner;
use software_aging::ml::{DynLearner, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};
use std::sync::Arc;

fn leaky(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

/// The shifting fleet: trained on slow leaks, shifted onto a fast leak a
/// quarter into the horizon.
fn shifting_specs(n: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    (0..n)
        .map(|i| InstanceSpec {
            name: format!("svc-{i:03}"),
            scenario: before.clone(),
            policy,
            seed: 5_000 + i as u64,
            shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
            class: Default::default(),
        })
        .collect()
}

fn fleet_config(horizon_secs: f64) -> FleetConfig {
    FleetConfig {
        shards: 4,
        rejuvenation: RejuvenationConfig { horizon_secs, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    }
}

fn slow_regime_predictor(features: &FeatureSet) -> AgingPredictor {
    let training = vec![
        leaky("train-75eb", 75, 75),
        leaky("train-100eb", 100, 75),
        leaky("train-125eb", 125, 75),
    ];
    AgingPredictor::train(&training, features.clone(), 42).unwrap()
}

#[test]
fn adaptive_fleet_beats_frozen_model_under_workload_shift() {
    let features = FeatureSet::exp42();
    let predictor = slow_regime_predictor(&features);
    let horizon = 6.0 * 3600.0;
    let n_instances = 24;
    let config = fleet_config(horizon);

    // Frozen run: the stale model rides out the shift.
    let frozen = Fleet::new(shifting_specs(n_instances, horizon), config)
        .unwrap()
        .run_with_predictor(&predictor);
    assert!(
        frozen.ttf_error_count > 0,
        "the shifted fleet must produce labelled prediction errors: {frozen}"
    );

    // Adaptive run: same specs and seeds, model served by the service.
    let learner: Arc<dyn DynLearner> = Arc::new(M5pLearner::paper_default());
    let initial: Arc<dyn Regressor> = Arc::new(predictor.model().clone());
    let service = AdaptiveService::builder(learner, features.variables().to_vec(), initial)
        .config(
            AdaptConfig::builder()
                .drift(DriftConfig {
                    error_threshold_secs: 600.0,
                    min_observations: 40,
                    cooldown_observations: 120,
                    ..Default::default()
                })
                .buffer_capacity(2048)
                .min_buffer_to_retrain(120)
                .build(),
        )
        .spawn();
    let adaptive = Fleet::new(shifting_specs(n_instances, horizon), config)
        .unwrap()
        .run_adaptive(&service, &features);
    let stats = service.shutdown();

    // Retraining happened, concurrently with the run (the report is built
    // while the service is still live, and the fleet completed its whole
    // horizon without the workers ever blocking on training).
    assert!(stats.drift_events >= 1, "the shift must register as drift: {stats:?}");
    assert!(stats.retrains >= 1, "drift must trigger retraining: {stats:?}");
    assert!(stats.generations_published >= 1, "retrains must publish generations: {stats:?}");
    let run_stats = adaptive.adaptation.expect("adaptive runs carry adaptation stats");
    assert!(run_stats.ingested_checkpoints > 0, "shards must stream labelled checkpoints");
    assert_eq!(adaptive.instances.len(), n_instances);

    // The paper's claim, fleet-scale: adapting to the shifted regime gives
    // strictly lower mean TTF prediction error than the frozen model.
    assert!(
        adaptive.mean_ttf_error_secs < frozen.mean_ttf_error_secs,
        "adaptive error {:.0}s must beat frozen error {:.0}s (stats {:?})",
        adaptive.mean_ttf_error_secs,
        frozen.mean_ttf_error_secs,
        stats
    );
}

#[test]
fn run_adaptive_with_drift_disabled_matches_frozen_run_exactly() {
    let features = FeatureSet::exp42();
    let scenario = leaky("leaky", 100, 15);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), features.clone(), 77).unwrap();
    let horizon = 3.0 * 3600.0;
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let specs: Vec<InstanceSpec> = (0..6)
        .map(|i| InstanceSpec::new(format!("svc-{i}"), scenario.clone(), policy, 900 + i as u64))
        .collect();
    let config = fleet_config(horizon);

    let frozen = Fleet::new(specs.clone(), config).unwrap().run_with_predictor(&predictor);

    let service = AdaptiveService::builder(
        Arc::new(M5pLearner::paper_default()),
        features.variables().to_vec(),
        Arc::new(predictor.model().clone()),
    )
    .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
    .spawn();
    let adaptive = Fleet::new(specs, config).unwrap().run_adaptive(&service, &features);
    let stats = service.shutdown();

    assert_eq!(stats.generations_published, 0, "disabled drift must never publish");
    assert_eq!(
        frozen, adaptive,
        "generation-0 adaptive run must be outcome-identical to the frozen run"
    );
    // The simulated outcomes are not just equal but bit-identical.
    for (a, b) in frozen.instances.iter().zip(&adaptive.instances) {
        assert_eq!(a.downtime_secs.to_bits(), b.downtime_secs.to_bits(), "{}", a.name);
        assert_eq!(a.ttf_error_sum_secs.to_bits(), b.ttf_error_sum_secs.to_bits(), "{}", a.name);
    }
}

/// Single-instance parity: the adaptive path with drift disabled still
/// reproduces `evaluate_policy` field for field (the acceptance criterion
/// extends the frozen-engine guarantee to the service-backed engine).
#[test]
fn single_instance_adaptive_parity_with_evaluate_policy() {
    let features = FeatureSet::exp42();
    let scenario = leaky("leaky", 100, 15);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), features.clone(), 77).unwrap();
    let rejuvenation = RejuvenationConfig { horizon_secs: 4.0 * 3600.0, ..Default::default() };
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };

    for seed in [1u64, 42] {
        let single =
            evaluate_policy(&scenario, policy, Some(&predictor), &rejuvenation, seed).unwrap();

        let service = AdaptiveService::builder(
            Arc::new(M5pLearner::paper_default()),
            features.variables().to_vec(),
            Arc::new(predictor.model().clone()),
        )
        .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
        .spawn();
        let config = FleetConfig { shards: 1, rejuvenation, counterfactual_horizon_secs: 3600.0 };
        let report =
            Fleet::new(vec![InstanceSpec::new("solo", scenario.clone(), policy, seed)], config)
                .unwrap()
                .run_adaptive(&service, &features);
        service.shutdown();

        let inst = &report.instances[0];
        assert_eq!(inst.crashes, single.crashes, "seed {seed}");
        assert_eq!(inst.rejuvenations, single.rejuvenations, "seed {seed}");
        assert_eq!(inst.downtime_secs.to_bits(), single.downtime_secs.to_bits(), "seed {seed}");
        assert_eq!(inst.availability.to_bits(), single.availability.to_bits(), "seed {seed}");
        assert_eq!(inst.lost_requests.to_bits(), single.lost_requests.to_bits(), "seed {seed}");
    }
}
