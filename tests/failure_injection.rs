//! Failure-injection integration tests: every crash mode is reachable,
//! non-aging runs survive, and the scenario vocabulary covers the paper's
//! experiment shapes.

use software_aging::testbed::{
    CrashKind, MemLeakSpec, PeriodicSpec, Scenario, SimConfig, ThreadLeakSpec,
};

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.heap.max_mb = 256.0;
    cfg.heap.young_mb = 48.0;
    cfg.heap.old_initial_mb = 64.0;
    cfg.heap.old_grow_step_mb = 48.0;
    cfg.heap.perm_mb = 32.0;
    cfg.system.max_process_threads = 250;
    cfg
}

#[test]
fn memory_leak_reaches_out_of_memory() {
    let trace = Scenario::builder("oom")
        .config(small_config())
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(10))
        .run_to_crash()
        .build()
        .run(1);
    assert_eq!(trace.crash.expect("must crash").kind, CrashKind::OutOfMemory);
}

#[test]
fn thread_leak_reaches_thread_exhaustion() {
    let trace = Scenario::builder("threads")
        .config(small_config())
        .emulated_browsers(50)
        .thread_leak(ThreadLeakSpec::new(45, 30))
        .run_to_crash()
        .build()
        .run(2);
    let kind = trace.crash.expect("must crash").kind;
    assert!(
        matches!(kind, CrashKind::ThreadExhaustion | CrashKind::OutOfMemory),
        "thread leak must exhaust threads or their heap footprint, got {kind:?}"
    );
}

#[test]
fn idle_server_survives() {
    let trace = Scenario::builder("idle")
        .config(small_config())
        .emulated_browsers(100)
        .duration_minutes(60)
        .build()
        .run(3);
    assert!(trace.crash.is_none(), "no injection => no crash, got {:?}", trace.crash);
}

#[test]
fn periodic_full_release_survives_but_retention_crashes() {
    let spec = PeriodicSpec { acquire_n: 10, release_n: 25, phase_secs: 180, chunk_mb: 1.0 };
    let no_retention = Scenario::builder("waves")
        .config(small_config())
        .emulated_browsers(100)
        .periodic_cycles_no_retention(spec, 4)
        .build()
        .run(4);
    assert!(no_retention.crash.is_none(), "full release must not age the server");

    let retention = Scenario::builder("masked")
        .config(small_config())
        .emulated_browsers(100)
        .periodic_cycles(spec, 60)
        .run_to_crash()
        .build()
        .run(5);
    let crash = retention.crash.expect("net retention must crash");
    assert_eq!(crash.kind, CrashKind::OutOfMemory);
    // The masked aging must survive at least one full acquire/release cycle
    // (i.e. the release phase really does release).
    assert!(crash.time_secs > 360.0, "crash at {}s is too early", crash.time_secs);
}

#[test]
fn combined_injection_crashes_faster_than_either_alone() {
    let mem_only = Scenario::builder("m")
        .config(small_config())
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(20))
        .run_to_crash()
        .build()
        .run(6)
        .crash
        .unwrap()
        .time_secs;
    let combined = Scenario::builder("mt")
        .config(small_config())
        .emulated_browsers(100)
        .phase(
            software_aging::testbed::Phase::leak("both", None, MemLeakSpec::new(20))
                .with_threads(ThreadLeakSpec::new(30, 40)),
        )
        .run_to_crash()
        .build()
        .run(6)
        .crash
        .unwrap()
        .time_secs;
    assert!(
        combined < mem_only,
        "two resources must age faster: combined {combined} vs memory-only {mem_only}"
    );
}

#[test]
fn crash_time_scales_inversely_with_workload() {
    let ttf = |ebs: u64| {
        Scenario::builder(format!("w{ebs}"))
            .config(small_config())
            .emulated_browsers(ebs)
            .memory_leak(MemLeakSpec::new(15))
            .run_to_crash()
            .build()
            .run(7)
            .crash
            .unwrap()
            .time_secs
    };
    let heavy = ttf(200);
    let light = ttf(50);
    assert!(
        heavy * 2.0 < light,
        "the leak is servlet-driven, so 4x the workload must crash much faster: {heavy} vs {light}"
    );
}

#[test]
fn trace_and_scenario_serialization_round_trip() {
    let scenario = Scenario::builder("serde")
        .config(small_config())
        .emulated_browsers(50)
        .duration_minutes(5)
        .build();
    let scenario_json = serde_json::to_string(&scenario).expect("scenario serializes");
    let scenario_back: Scenario = serde_json::from_str(&scenario_json).expect("deserializes");
    assert_eq!(scenario_back, scenario);

    let trace = scenario.run(8);
    let json = serde_json::to_string(&trace).expect("trace serializes");
    let back: software_aging::testbed::RunTrace =
        serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(back, trace);
}
