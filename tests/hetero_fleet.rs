//! End-to-end guarantees of class-routed adaptation (ISSUE 3 acceptance):
//!
//! 1. in a heterogeneous two-class fleet with a workload shift injected
//!    into class A only, the router adapts class A (≥ 5× lower mean TTF
//!    error than the frozen per-class baseline) while class B's outcomes
//!    and generation count are **bit-identical** to a fleet that never
//!    contained class A at all — the shifted class cannot pollute its
//!    neighbour's model;
//! 2. a single-class routed run with drift disabled is bit-identical to
//!    the frozen engine, so the routed path inherits the
//!    `evaluate_policy` parity chain;
//! 3. routing is deterministic: same specs and seeds produce identical
//!    per-class generations and fleet outcomes across different shard
//!    counts.

use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, QuantileAdaptive, RouterConfig,
    ServiceClass, ThresholdPolicy,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{Fleet, FleetConfig, FleetReport, InstanceSpec, WorkloadShift};
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};
use std::sync::Arc;
use std::time::Duration;

fn leaky(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

const POLICY: RejuvenationPolicy =
    RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };

fn fleet_config(horizon_secs: f64, shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        rejuvenation: RejuvenationConfig { horizon_secs, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    }
}

/// Class A ("leak"): trained on slow leaks, shifted onto a fast leak a
/// quarter into the horizon — the class that must adapt.
fn class_a_specs(n: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("slow-leak", 100, 75);
    let after = leaky("fast-leak", 150, 15);
    (0..n)
        .map(|i| InstanceSpec {
            name: format!("a-{i:03}"),
            scenario: before.clone(),
            policy: POLICY,
            seed: 5_000 + i as u64,
            shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
            class: ServiceClass::new("leak"),
        })
        .collect()
}

/// Class B ("steady"): a different aging signature, no shift — the class
/// that must stay untouched. Its model is trained on a slightly *slower*
/// leak than it serves (N = 45 vs N = 30), so a few predictions miss and
/// real crash epochs keep feeding its buffer and drift monitor — the
/// isolation guarantee is exercised on a live pipeline, not a dormant one.
fn class_b_specs(n: usize) -> Vec<InstanceSpec> {
    let scenario = leaky("steady-leak", 100, 30);
    (0..n)
        .map(|i| {
            InstanceSpec::new(format!("b-{i:03}"), scenario.clone(), POLICY, 9_000 + i as u64)
                .with_class("steady")
        })
        .collect()
}

fn initial_model_a(features: &FeatureSet) -> Arc<dyn Regressor> {
    let training = vec![
        leaky("train-75eb", 75, 75),
        leaky("train-100eb", 100, 75),
        leaky("train-125eb", 125, 75),
    ];
    let predictor = AgingPredictor::train(&training, features.clone(), 42).unwrap();
    Arc::new(predictor.model().clone())
}

fn initial_model_b(features: &FeatureSet) -> Arc<dyn Regressor> {
    let predictor =
        AgingPredictor::train(&[leaky("steady-train", 100, 45)], features.clone(), 42).unwrap();
    Arc::new(predictor.model().clone())
}

/// Class A's adaptation tuning (mirrors the single-service shift test).
fn adapt_a(drift_enabled: bool) -> AdaptConfig {
    AdaptConfig::builder()
        .drift(if drift_enabled {
            DriftConfig {
                error_threshold_secs: 600.0,
                min_observations: 40,
                cooldown_observations: 120,
                ..Default::default()
            }
        } else {
            DriftConfig::disabled()
        })
        .buffer_capacity(2048)
        .min_buffer_to_retrain(120)
        .build()
}

/// Class B's tuning: drift detection *live* but thresholds sized for its
/// stationary regime, so only a genuine regime change would fire. The
/// isolation guarantee below relies on routing, not on disabling B.
fn adapt_b(drift_enabled: bool) -> AdaptConfig {
    AdaptConfig::builder()
        .drift(if drift_enabled {
            DriftConfig {
                error_threshold_secs: 3600.0,
                min_observations: 40,
                trend_slope_threshold: 50.0,
                cooldown_observations: 120,
                ..Default::default()
            }
        } else {
            DriftConfig::disabled()
        })
        .buffer_capacity(2048)
        .min_buffer_to_retrain(120)
        .build()
}

fn spawn_router(features: &FeatureSet, drift_enabled: bool) -> AdaptiveRouter {
    AdaptiveRouter::builder(features.variables().to_vec())
        .class(
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), initial_model_a(features))
                .config(adapt_a(drift_enabled))
                .build(),
        )
        .class(
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), initial_model_b(features))
                .config(adapt_b(drift_enabled))
                .build(),
        )
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn()
}

fn assert_bit_identical(a: &FleetReport, b: &FleetReport, what: &str) {
    assert_eq!(a, b, "{what}: outcome mismatch");
    for (x, y) in a.instances.iter().zip(&b.instances) {
        assert_eq!(x.name, y.name, "{what}");
        assert_eq!(x.downtime_secs.to_bits(), y.downtime_secs.to_bits(), "{what}: {}", x.name);
        assert_eq!(
            x.ttf_error_sum_secs.to_bits(),
            y.ttf_error_sum_secs.to_bits(),
            "{what}: {}",
            x.name
        );
        assert_eq!(x.lost_requests.to_bits(), y.lost_requests.to_bits(), "{what}: {}", x.name);
    }
}

#[test]
fn shifted_class_adapts_while_the_steady_class_is_untouched() {
    let features = FeatureSet::exp42();
    let horizon = 6.0 * 3600.0;
    let config = fleet_config(horizon, 4);
    let specs: Vec<InstanceSpec> =
        class_a_specs(20, horizon).into_iter().chain(class_b_specs(8)).collect();

    // Frozen per-class baseline: the same router topology with drift
    // disabled, so each class serves its generation-0 model throughout.
    let frozen_router = spawn_router(&features, false);
    let frozen =
        Fleet::new(specs.clone(), config).unwrap().run_routed(&frozen_router, &features).unwrap();
    frozen_router.shutdown();
    let frozen_a = frozen.class_mean_ttf_error_secs("leak");
    assert!(frozen_a > 0.0, "the shifted class must produce labelled errors: {frozen}");

    // Adaptive run: same specs and seeds, class-routed retraining live.
    let router = spawn_router(&features, true);
    let adaptive = Fleet::new(specs, config).unwrap().run_routed(&router, &features).unwrap();
    assert!(router.quiesce(Duration::from_secs(60)), "router must settle");
    let stats = router.shutdown();

    // Class A registered the shift and retrained.
    let sa = stats.class(&ServiceClass::new("leak")).unwrap();
    assert!(sa.drift_events >= 1, "class A must drift: {sa:?}");
    assert!(sa.retrains >= 1, "class A must retrain: {sa:?}");
    assert!(sa.generations_published >= 1);

    // The acceptance bound: class A's mean TTF error improves ≥ 5× over
    // the frozen per-class baseline.
    let adaptive_a = adaptive.class_mean_ttf_error_secs("leak");
    assert!(
        adaptive_a * 5.0 <= frozen_a,
        "class A must improve ≥ 5×: frozen {frozen_a:.0}s vs adaptive {adaptive_a:.0}s ({stats:?})"
    );

    // Class B never left generation 0 — its live drift monitor saw a
    // stationary error stream.
    let sb = stats.class(&ServiceClass::new("steady")).unwrap();
    assert_eq!(sb.generations_published, 0, "class B must stay frozen: {sb:?}");
    assert_eq!(sb.drift_events, 0, "class B must not drift: {sb:?}");
    assert!(sb.ingested_checkpoints > 0, "class B's crash epochs still flow to its buffer");
    assert_eq!(stats.unrouted_checkpoints, 0);

    // Isolation, bit-exact: class B's instances came out of the shared
    // heterogeneous run *identical* to a run where class A never existed.
    let b_router = spawn_router(&features, true);
    let b_only =
        Fleet::new(class_b_specs(8), config).unwrap().run_routed(&b_router, &features).unwrap();
    assert!(b_router.quiesce(Duration::from_secs(60)));
    let b_stats = b_router.shutdown();
    let sb_solo = b_stats.class(&ServiceClass::new("steady")).unwrap();
    assert_eq!(
        sb.generations_published, sb_solo.generations_published,
        "class B's generation count must match its no-shift run"
    );
    assert_eq!(sb.ingested_checkpoints, sb_solo.ingested_checkpoints);
    let b_from_hetero: Vec<_> =
        adaptive.instances.iter().filter(|i| i.class == "steady").cloned().collect();
    assert_eq!(b_from_hetero.len(), 8);
    for (x, y) in b_from_hetero.iter().zip(&b_only.instances) {
        assert_eq!(x, y, "class B instance {} must be untouched by class A's shift", x.name);
        assert_eq!(x.ttf_error_sum_secs.to_bits(), y.ttf_error_sum_secs.to_bits(), "{}", x.name);
    }
}

#[test]
fn single_class_routed_run_is_bit_identical_to_the_frozen_engine() {
    let features = FeatureSet::exp42();
    let scenario = leaky("leaky", 100, 15);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), features.clone(), 77).unwrap();
    let config = fleet_config(3.0 * 3600.0, 4);
    let specs: Vec<InstanceSpec> = (0..6)
        .map(|i| InstanceSpec::new(format!("svc-{i}"), scenario.clone(), POLICY, 900 + i as u64))
        .collect();

    let frozen = Fleet::new(specs.clone(), config).unwrap().run_with_predictor(&predictor);

    let router = AdaptiveRouter::builder(features.variables().to_vec())
        .class(
            ServiceClass::default(),
            ClassSpec::builder(LearnerKind::M5p.learner(), Arc::new(predictor.model().clone()))
                .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
                .build(),
        )
        .spawn();
    let routed = Fleet::new(specs, config).unwrap().run_routed(&router, &features).unwrap();
    let stats = router.shutdown();

    assert_eq!(stats.generations_published, 0);
    assert_bit_identical(&frozen, &routed, "single-class routed vs frozen");
    let routing = routed.routing.expect("routed runs carry per-class stats");
    assert_eq!(routing.classes.len(), 1);
    assert_eq!(routing.dropped_checkpoints, 0, "the bounded bus must keep up here");
}

/// The self-tuning acceptance (ISSUE 4): with `QuantileAdaptive`, a
/// heterogeneous-shift fleet whose spec contains **no per-class threshold
/// constants** — every class shares one `AdaptConfig` with the default
/// drift level and one shared policy `Arc` — ends up with per-class error
/// no worse than the hand-picked PR 3 thresholds (600 s for the shifting
/// class, 3600 s for the steady one), because each class's pipeline
/// re-derives its own thresholds from its own error quantiles on every
/// publish.
#[test]
fn quantile_adaptive_matches_hand_picked_per_class_thresholds() {
    let features = FeatureSet::exp42();
    let horizon = 6.0 * 3600.0;
    let config = fleet_config(horizon, 4);
    let specs: Vec<InstanceSpec> =
        class_a_specs(20, horizon).into_iter().chain(class_b_specs(8)).collect();

    // Baseline: the hand-picked per-class thresholds of PR 3.
    let hand_picked_router = spawn_router(&features, true);
    let hand_picked = Fleet::new(specs.clone(), config)
        .unwrap()
        .run_routed(&hand_picked_router, &features)
        .unwrap();
    assert!(hand_picked_router.quiesce(Duration::from_secs(60)));
    hand_picked_router.shutdown();

    // Self-tuned: ONE shared config (default 900 s drift level — not
    // hand-picked for either class) and ONE shared policy for every class.
    let shared_config = AdaptConfig::builder()
        .drift(DriftConfig {
            min_observations: 40,
            cooldown_observations: 120,
            ..Default::default()
        })
        .buffer_capacity(2048)
        .min_buffer_to_retrain(120)
        .build();
    let policy: Arc<dyn ThresholdPolicy> = Arc::new(QuantileAdaptive::default());
    let self_tuned_router = AdaptiveRouter::builder(features.variables().to_vec())
        .class(
            ServiceClass::new("leak"),
            ClassSpec::builder(LearnerKind::M5p.learner(), initial_model_a(&features))
                .config(shared_config)
                .policy(Arc::clone(&policy))
                .build(),
        )
        .class(
            ServiceClass::new("steady"),
            ClassSpec::builder(LearnerKind::M5p.learner(), initial_model_b(&features))
                .config(shared_config)
                .policy(policy)
                .build(),
        )
        .config(RouterConfig::builder().retrainer_threads(2).build())
        .spawn();
    let self_tuned =
        Fleet::new(specs, config).unwrap().run_routed(&self_tuned_router, &features).unwrap();
    assert!(self_tuned_router.quiesce(Duration::from_secs(60)));
    let stats = self_tuned_router.shutdown();

    // Both classes adapted under the shared starting threshold…
    let leak = stats.class(&ServiceClass::new("leak")).unwrap();
    assert!(leak.retrains >= 1, "the shifted class must retrain: {leak:?}");
    // …and the policy moved the thresholds per class, from the one shared
    // constant to values reflecting each class's own error regime.
    let steady = stats.class(&ServiceClass::new("steady")).unwrap();
    if steady.retrains >= 1 {
        assert!(
            steady.effective_error_threshold_secs != leak.effective_error_threshold_secs,
            "classes sharing one config must still tune apart: {stats:?}"
        );
    }
    assert!(
        leak.effective_rejuvenation_threshold_secs.is_some(),
        "the shifted class must have self-tuned its rejuvenation trigger: {leak:?}"
    );

    // The acceptance bound: per-class error no worse than the hand-picked
    // thresholds (adaptive runs are not bit-deterministic, so allow a
    // small scheduling tolerance).
    for class in ["leak", "steady"] {
        let hand = hand_picked.class_mean_ttf_error_secs(class);
        let tuned = self_tuned.class_mean_ttf_error_secs(class);
        assert!(
            tuned <= hand * 1.15,
            "class {class}: self-tuned error {tuned:.0}s must be no worse than the \
             hand-picked {hand:.0}s ({stats:?})"
        );
    }
}

#[test]
fn routing_is_deterministic_across_shard_counts() {
    let features = FeatureSet::exp42();
    let horizon = 2.0 * 3600.0;
    let build_specs = || -> Vec<InstanceSpec> {
        class_a_specs(6, horizon).into_iter().chain(class_b_specs(4)).collect()
    };

    let run = |shards: usize| -> (FleetReport, Vec<(ServiceClass, u64, u64)>) {
        let router = spawn_router(&features, false);
        let report = Fleet::new(build_specs(), fleet_config(horizon, shards))
            .unwrap()
            .run_routed(&router, &features)
            .unwrap();
        assert!(router.quiesce(Duration::from_secs(60)));
        let stats = router.shutdown();
        assert_eq!(stats.dropped_checkpoints, 0);
        let per_class = stats
            .classes
            .iter()
            .map(|c| (c.class.clone(), c.stats.generations_published, c.stats.ingested_checkpoints))
            .collect();
        (report, per_class)
    };

    let (one, classes_one) = run(1);
    let (five, classes_five) = run(5);
    assert_eq!(one.instances, five.instances, "sharding must not change routed outcomes");
    assert_eq!(one.epochs, five.epochs);
    for report in [&one, &five] {
        assert!(
            report.timing.checkpoints_per_sec.is_finite()
                && report.timing.checkpoints_per_sec > 0.0,
            "throughput must be finite and positive: {:?}",
            report.timing
        );
    }
    assert_eq!(
        classes_one, classes_five,
        "per-class generations and ingestion must be shard-independent"
    );
}
