//! End-to-end guarantees of automatic class discovery (ISSUE 5):
//!
//! 1. with adaptation frozen (drift disabled in the template), the
//!    discovered partition — class count, assignment, reassignment
//!    totals — and every instance outcome are **deterministic across
//!    shard counts**;
//! 2. a two-regime fleet is separated into pure classes (no instance of
//!    one regime lands in the other's class);
//! 3. a stationary fleet is never carved up: no splits, no merges, no
//!    reassignments — the split gate holds against noise;
//! 4. `Fleet::run_routed` against a router missing one of the fleet's
//!    classes fails fast with an error naming the class, instead of
//!    silently booking every checkpoint as unrouted.

use software_aging::adapt::discovery::{DiscoveryConfig, SignatureConfig};
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, ClassSpec, DriftConfig, RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::fleet::{
    DiscoverySetup, Fleet, FleetConfig, FleetError, FleetReport, InstanceSpec, WorkloadShift,
};
use software_aging::ml::{LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};
use std::sync::Arc;

fn leaky(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

const POLICY: RejuvenationPolicy =
    RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };

fn fleet_config(horizon_secs: f64, shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        rejuvenation: RejuvenationConfig { horizon_secs, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    }
}

/// A two-regime fleet with **no operator-assigned classes**: everything
/// starts in the same moderate-leak regime, but the `shift-*` instances
/// move to an aggressive leak a quarter into the horizon while the
/// `steady-*` instances never change. (The pre-shift scenario is kept
/// short-epoch so every instance completes service epochs well inside the
/// reassessment cadence — an epoch in flight keeps its scenario, so a
/// near-horizon first epoch would never even pick the shift up.)
fn unlabelled_specs(n_shift: usize, n_steady: usize, horizon_secs: f64) -> Vec<InstanceSpec> {
    let before = leaky("steady-leak", 100, 30);
    let after = leaky("fast-leak", 150, 15);
    let steady = leaky("steady-leak", 100, 30);
    let shifting = (0..n_shift).map(move |i| InstanceSpec {
        name: format!("shift-{i:03}"),
        scenario: before.clone(),
        policy: POLICY,
        seed: 5_000 + i as u64,
        shift: Some(WorkloadShift { after_secs: horizon_secs * 0.25, scenario: after.clone() }),
        class: ServiceClass::default(),
    });
    let steady = (0..n_steady).map(move |i| {
        InstanceSpec::new(format!("steady-{i:03}"), steady.clone(), POLICY, 9_000 + i as u64)
    });
    shifting.chain(steady).collect()
}

fn shared_initial_model(features: &FeatureSet) -> Arc<dyn Regressor> {
    // One blended model for the whole fleet — nobody told us about the
    // classes, so nobody trained per-class models either.
    let training =
        vec![leaky("train-45", 100, 45), leaky("train-30", 100, 30), leaky("train-125", 125, 30)];
    Arc::new(AgingPredictor::train(&training, features.clone(), 42).unwrap().model().clone())
}

/// A frozen template (drift disabled): models never move, so outcomes and
/// the partition are bit-deterministic — the regime for the determinism
/// and stability suites.
fn frozen_setup(features: &FeatureSet, reassess_every_epochs: u64) -> DiscoverySetup {
    let template = ClassSpec::builder(LearnerKind::M5p.learner(), shared_initial_model(features))
        .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
        .build();
    DiscoverySetup {
        router: RouterConfig::builder().retrainer_threads(2).build(),
        discovery: DiscoveryConfig { seed: 7, ..Default::default() },
        signature: SignatureConfig::default(),
        reassess_every_epochs,
        ..DiscoverySetup::new(template)
    }
}

#[derive(Debug, PartialEq)]
struct PartitionFacts {
    assignment: Vec<String>,
    classes: Vec<(String, usize, bool)>,
    reassignments: u64,
    splits: u64,
    merges: u64,
}

fn partition_facts(report: &FleetReport) -> PartitionFacts {
    let discovery = report.discovery.as_ref().expect("discovered runs carry a partition");
    PartitionFacts {
        assignment: discovery.assignment.clone(),
        classes: discovery
            .classes
            .iter()
            .map(|c| (c.class.clone(), c.members, c.retired))
            .collect(),
        reassignments: discovery.reassignments,
        splits: discovery.splits,
        merges: discovery.merges,
    }
}

#[test]
fn discovered_partition_is_deterministic_across_shard_counts() {
    let features = FeatureSet::exp42();
    let horizon = 4.0 * 3600.0;
    let run = |shards: usize| {
        let specs = unlabelled_specs(9, 6, horizon);
        Fleet::new(specs, fleet_config(horizon, shards))
            .unwrap()
            .run_discovered(&frozen_setup(&features, 120), &features)
            .unwrap()
    };
    let one = run(1);
    let five = run(5);
    assert_eq!(one.instances, five.instances, "sharding must not change discovered outcomes");
    assert_eq!(one.epochs, five.epochs);
    assert_eq!(
        partition_facts(&one),
        partition_facts(&five),
        "the discovered partition must be shard-independent"
    );
}

#[test]
fn two_regimes_are_separated_into_pure_classes() {
    let features = FeatureSet::exp42();
    let horizon = 4.0 * 3600.0;
    let specs = unlabelled_specs(9, 6, horizon);
    let report = Fleet::new(specs, fleet_config(horizon, 4))
        .unwrap()
        .run_discovered(&frozen_setup(&features, 120), &features)
        .unwrap();
    let discovery = report.discovery.as_ref().unwrap();
    let active = discovery.classes.iter().filter(|c| !c.retired).count();
    assert!(active >= 2, "the two regimes must be told apart: {discovery:?}");
    // Purity: every discovered class holds instances of one regime only.
    for class in discovery.classes.iter().filter(|c| c.members > 0) {
        let members: Vec<&str> = report
            .instances
            .iter()
            .filter(|i| i.class == class.class)
            .map(|i| i.name.as_str())
            .collect();
        let shifted = members.iter().filter(|n| n.starts_with("shift-")).count();
        assert!(
            shifted == 0 || shifted == members.len(),
            "class {} mixes regimes: {members:?}",
            class.class
        );
    }
    // The routed side really followed: discovered classes exist on the
    // router and ingested the re-routed traffic.
    let routing = report.routing.as_ref().unwrap();
    assert!(routing.classes.len() >= 2);
    assert_eq!(routing.unrouted_checkpoints, 0);
    assert_eq!(routing.dynamic_registrations as usize, routing.classes.len() - 1);
}

#[test]
fn stationary_fleet_is_never_carved_up() {
    let features = FeatureSet::exp42();
    let horizon = 3.0 * 3600.0;
    let scenario = leaky("steady-leak", 100, 30);
    let specs: Vec<InstanceSpec> = (0..10)
        .map(|i| InstanceSpec::new(format!("svc-{i:02}"), scenario.clone(), POLICY, 40 + i as u64))
        .collect();
    let report = Fleet::new(specs, fleet_config(horizon, 3))
        .unwrap()
        .run_discovered(&frozen_setup(&features, 120), &features)
        .unwrap();
    let discovery = report.discovery.as_ref().unwrap();
    assert!(discovery.evaluations >= 3, "the engine must actually have looked: {discovery:?}");
    assert_eq!(discovery.splits, 0, "a stationary fleet must not be split: {discovery:?}");
    assert_eq!(discovery.merges, 0);
    assert_eq!(discovery.reassignments, 0, "no oscillation: {discovery:?}");
    assert_eq!(discovery.classes.len(), 1);
    assert_eq!(discovery.classes[0].members, 10);
}

/// ISSUE 5 satellite: a fleet whose spec names a class the router does not
/// serve must fail fast — at `run_routed` entry, naming the class — not
/// silently book every checkpoint as unrouted.
#[test]
fn run_routed_fails_fast_on_an_unregistered_class() {
    let features = FeatureSet::exp42();
    let scenario = leaky("leaky", 100, 30);
    let predictor =
        AgingPredictor::train(std::slice::from_ref(&scenario), features.clone(), 7).unwrap();
    let registered = ServiceClass::new("known");
    let router = AdaptiveRouter::builder(features.variables().to_vec())
        .class(
            registered.clone(),
            ClassSpec::builder(LearnerKind::LinReg.learner(), Arc::new(predictor.model().clone()))
                .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
                .build(),
        )
        .spawn();
    let specs = vec![
        InstanceSpec::new("ok", scenario.clone(), POLICY, 1).with_class(registered),
        InstanceSpec::new("orphan", scenario, POLICY, 2).with_class("ghost-class"),
    ];
    let err = Fleet::new(specs, fleet_config(3600.0, 2))
        .unwrap()
        .run_routed(&router, &features)
        .expect_err("an unregistered class must be rejected before any epoch runs");
    match err {
        FleetError::InvalidParameter(message) => {
            assert!(
                message.contains("ghost-class"),
                "the error must name the offending class: {message}"
            );
        }
        other => panic!("unexpected error variant: {other:?}"),
    }
    let stats = router.shutdown();
    assert_eq!(stats.unrouted_checkpoints, 0, "nothing may have been published, let alone lost");
    assert_eq!(stats.ingested_checkpoints, 0);
}
