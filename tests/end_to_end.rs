//! Cross-crate integration tests: the full pipeline from scenario
//! description through simulation, monitoring, training and on-line
//! prediction, at reduced scale so they run in normal CI time.

use software_aging::core::AgingPredictor;
use software_aging::ml::linreg::LinRegLearner;
use software_aging::ml::m5p::M5pLearner;
use software_aging::ml::Learner;
use software_aging::monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use software_aging::testbed::{MemLeakSpec, Scenario, SimConfig};

/// A quarter-size heap so runs crash in simulated minutes.
fn small_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.heap.max_mb = 256.0;
    cfg.heap.young_mb = 48.0;
    cfg.heap.old_initial_mb = 64.0;
    cfg.heap.old_grow_step_mb = 48.0;
    cfg.heap.perm_mb = 32.0;
    cfg
}

fn small_leak(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .config(small_config())
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

#[test]
fn full_pipeline_trains_and_predicts() {
    let predictor = AgingPredictor::train(
        &[small_leak("t1", 100, 10), small_leak("t2", 50, 10)],
        FeatureSet::exp42(),
        1,
    )
    .expect("training succeeds");
    let report =
        predictor.evaluate_scenario(&small_leak("test", 75, 10), 77).expect("evaluation succeeds");
    assert!(report.evaluation.mae.is_finite());
    let mean_ttf: f64 = report.actuals.iter().sum::<f64>() / report.actuals.len() as f64;
    assert!(
        report.evaluation.mae < mean_ttf,
        "MAE {} should beat the trivial scale {mean_ttf}",
        report.evaluation.mae
    );
    // Predictions are clamped into the physical range.
    for &p in &report.predictions {
        assert!((0.0..=TTF_CAP_SECS).contains(&p));
    }
}

#[test]
fn m5p_beats_linreg_on_unseen_workload() {
    // The headline comparison of the paper's Table 3, at small scale: the
    // piecewise-linear tree handles the GC-resize non-linearity better.
    let features = FeatureSet::exp41();
    let traces = [small_leak("a", 150, 10).run(3), small_leak("b", 50, 10).run(4)];
    let refs: Vec<_> = traces.iter().collect();
    let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
    let m5p = M5pLearner::paper_default().fit(&ds).unwrap();
    let lr = LinRegLearner::default().fit(&ds).unwrap();

    let test = small_leak("test", 100, 10).run(5);
    let actuals = label_ttf(&test, TTF_CAP_SECS);
    let e_m5p = software_aging::core::predictor::evaluate_regressor_on_trace(
        &m5p, &features, &test, &actuals,
    );
    let e_lr = software_aging::core::predictor::evaluate_regressor_on_trace(
        &lr, &features, &test, &actuals,
    );
    // At this reduced scale (a quarter-size heap, ~10-minute runs, only two
    // training traces) both models land within ~2 minutes MAE and the
    // piecewise-linear advantage is small; the full-scale Table 3 shape is
    // asserted by the ignored experiment test in `aging-bench`. Here we
    // check both are usable and M5P is in the same class.
    assert!(
        e_m5p.mae <= e_lr.mae * 2.0 + 30.0,
        "M5P ({}) far worse than LinReg ({})",
        e_m5p.mae,
        e_lr.mae
    );
    assert!(e_m5p.mae < 600.0, "M5P must predict within 10 minutes at this scale");
    assert!(e_m5p.s_mae <= e_m5p.mae);
}

#[test]
fn predictions_sharpen_towards_the_crash() {
    let predictor =
        AgingPredictor::train(&[small_leak("t", 100, 10)], FeatureSet::exp42(), 9).unwrap();
    let report = predictor.evaluate_scenario(&small_leak("s", 100, 10), 10).unwrap();
    let (pre, post) = (report.evaluation.pre_mae, report.evaluation.post_mae);
    if let (Some(pre), Some(post)) = (pre, post) {
        assert!(
            post < pre * 2.0,
            "POST-MAE ({post}) should not blow up relative to PRE-MAE ({pre})"
        );
    }
}

#[test]
fn frozen_truth_equals_crash_labels_for_constant_rates() {
    // For a constant-rate scenario the frozen-rate ground truth and the
    // run's own crash labels must agree closely.
    let predictor =
        AgingPredictor::train(&[small_leak("t", 100, 10)], FeatureSet::exp42(), 11).unwrap();
    let scenario = small_leak("s", 100, 10);
    let frozen = predictor.evaluate_scenario_frozen_truth(&scenario, 12).unwrap();
    let plain = predictor.evaluate_scenario(&scenario, 12).unwrap();
    assert_eq!(frozen.actuals.len(), plain.actuals.len());
    let mut diverged = 0;
    for (f, p) in frozen.actuals.iter().zip(&plain.actuals) {
        if (f - p).abs() > p.max(120.0) * 0.5 {
            diverged += 1;
        }
    }
    assert!(
        diverged * 10 <= frozen.actuals.len(),
        "{diverged}/{} frozen labels diverged badly from crash labels",
        frozen.actuals.len()
    );
}

#[test]
fn training_dataset_shape_is_consistent() {
    let trace = small_leak("t", 100, 10).run(13);
    for fs in [FeatureSet::exp41(), FeatureSet::exp42(), FeatureSet::exp43_heap()] {
        let ds = build_dataset(&[&trace], &fs, TTF_CAP_SECS);
        assert_eq!(ds.len(), trace.samples.len());
        assert_eq!(ds.n_attributes(), fs.len());
        // Every value finite, every label within the cap.
        for i in 0..ds.len() {
            assert!(ds.row(i).values().iter().all(|v| v.is_finite()));
            assert!((0.0..=TTF_CAP_SECS).contains(&ds.target(i)));
        }
    }
}

#[test]
fn online_predictor_is_reusable_across_runs_after_reset() {
    let predictor =
        AgingPredictor::train(&[small_leak("t", 100, 10)], FeatureSet::exp42(), 14).unwrap();
    let trace = small_leak("s", 100, 10).run(15);
    let mut online = predictor.online();
    let first: Vec<f64> = trace.samples.iter().map(|s| online.observe(s)).collect();
    online.reset();
    let second: Vec<f64> = trace.samples.iter().map(|s| online.observe(s)).collect();
    assert_eq!(first, second, "reset must fully clear windowed state");
}
