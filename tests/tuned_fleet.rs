//! End-to-end guarantees of self-optimising policy search (ISSUE 9
//! acceptance):
//!
//! 1. on a journalled two-class run recorded under a deliberately
//!    *detuned* policy (drift off, no retrain schedule, a stale model),
//!    [`Tuner::search`] finds — and the gate promotes — a configuration
//!    whose replayed mean TTF error beats the detuned incumbent by
//!    ≥ 20 %;
//! 2. the search is bit-reproducible: same seed, same journal, same
//!    incumbent ⇒ the same [`SearchOutcome`], candidate for candidate;
//! 3. a live fleet run with a [`FleetTuner`] attached whose gate can
//!    never fire is report-identical to the same run without a tuner —
//!    attaching the machinery is free until a promotion actually lands.

use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, CheckpointBatch, ClassSpec, DriftConfig, LabelledCheckpoint,
    RouterConfig, ServiceClass,
};
use software_aging::core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use software_aging::dataset::Dataset;
use software_aging::fleet::{Fleet, FleetConfig, InstanceSpec};
use software_aging::journal::{Journal, JournalCheckpoint, JournalRecord};
use software_aging::ml::linreg::LinRegLearner;
use software_aging::ml::{Learner, LearnerKind, Regressor};
use software_aging::monitor::FeatureSet;
use software_aging::testbed::{MemLeakSpec, Scenario};
use software_aging::tune::{FleetTuner, PolicyPoint, TuneConfig, TunedClass, Tuner};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aging-tune-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn line_model(slope: f64) -> Arc<dyn Regressor> {
    let mut ds = Dataset::new(vec!["x".into()], "y");
    for i in 0..30 {
        ds.push_row(vec![i as f64], slope * i as f64).unwrap();
    }
    Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
}

/// The recording spec: the policy equivalent of [`detuned_point`] — drift
/// off, no schedule, so the stale model is never replaced.
fn detuned_spec(slope: f64) -> ClassSpec {
    ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(slope))
        .config(
            AdaptConfig::builder()
                .drift(DriftConfig::disabled())
                .buffer_capacity(512)
                .min_buffer_to_retrain(40)
                .build(),
        )
        .build()
}

/// The detuned incumbent as a search point: adaptation entirely off.
fn detuned_point() -> PolicyPoint {
    PolicyPoint {
        learner: LearnerKind::LinReg,
        drift_enabled: false,
        retrain_every: None,
        ..Default::default()
    }
}

fn batch(
    class: &ServiceClass,
    xs: impl IntoIterator<Item = (f64, f64, Option<f64>)>,
) -> CheckpointBatch {
    CheckpointBatch {
        source: format!("src-{class}"),
        class: class.clone(),
        checkpoints: xs
            .into_iter()
            .map(|(x, y, pred)| LabelledCheckpoint::new(vec![x], y, pred))
            .collect(),
    }
}

// Enough rows that candidates with workspace-default retrain gates
// (min_buffer_to_retrain = 200) actually get to retrain mid-replay.
const CHUNKS: u64 = 12;
const CHUNK_ROWS: u64 = 64;

/// Journals a two-class detuned run: the "leak" class's truth is
/// `y = 500 − 2x` while its stale model insists `y = 2x` (every batch a
/// misprediction, nothing ever retrains); the "stable" class tracks its
/// model exactly. Exactly the stream a search must rescue.
fn record_detuned_run(dir: &Path) -> (ServiceClass, ServiceClass) {
    let (a, b) = (ServiceClass::new("leak"), ServiceClass::new("stable"));
    let journal = Arc::new(Journal::open(dir).unwrap());
    let router = AdaptiveRouter::builder(vec!["x".into()])
        .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(128).build())
        .journal(Arc::clone(&journal))
        .class(a.clone(), detuned_spec(2.0))
        .class(b.clone(), detuned_spec(1.0))
        .spawn();
    let bus = router.bus();
    for chunk in 0..CHUNKS {
        let xs: Vec<f64> = (0..CHUNK_ROWS).map(|i| (chunk * CHUNK_ROWS + i) as f64).collect();
        assert!(bus.publish(batch(&a, xs.iter().map(|&x| (x, 500.0 - 2.0 * x, Some(2.0 * x))))));
        assert!(bus.publish(batch(&b, xs.iter().map(|&x| (x, x, Some(x))))));
        assert!(router.quiesce(Duration::from_secs(30)), "chunk {chunk} must settle");
    }
    journal.sync().unwrap();
    let stats = router.shutdown();
    assert_eq!(stats.journal_errors, 0, "recording must journal cleanly");
    assert!(
        stats.classes.iter().all(|c| c.stats.generation == 0),
        "the detuned policy must never retrain — that is the point: {stats:?}"
    );
    (a, b)
}

fn leak_evaluator(dir: &Path, class: &ServiceClass) -> software_aging::tune::Evaluator {
    software_aging::tune::Evaluator::new(
        dir.to_path_buf(),
        vec!["x".into()],
        class.clone(),
        line_model(2.0),
    )
}

#[test]
fn search_promotes_a_policy_beating_the_detuned_incumbent_by_20_percent() {
    let dir = tmp_dir("beats");
    let (leak, _) = record_detuned_run(&dir);
    let evaluator = leak_evaluator(&dir, &leak);
    let detuned = detuned_point();

    // The incumbent really is bad: every one of the 192 rows scored,
    // none ever corrected by a retrain.
    let incumbent = evaluator.evaluate(&detuned).unwrap();
    assert_eq!(incumbent.scored_rows, CHUNKS * CHUNK_ROWS);
    assert_eq!(incumbent.retrains, 0, "the detuned point must not retrain");
    assert!(incumbent.objective_secs > 100.0, "the stale model must hurt: {incumbent:?}");

    let outcome = Tuner::new(TuneConfig::default()).search(&evaluator, &detuned).unwrap();
    assert!(outcome.promoted, "the winner must clear the promotion gate: {outcome:?}");
    let improvement = outcome.improvement.expect("both objectives finite");
    assert!(
        improvement >= 0.20,
        "the promoted policy must beat the detuned incumbent by ≥ 20 %, got {:.1} % \
         ({:?} → {:?})",
        improvement * 100.0,
        outcome.incumbent_objective_secs,
        outcome.best_objective_secs,
    );
    // What the search actually discovered: turning adaptation back on.
    let winner = evaluator.evaluate(&outcome.best).unwrap();
    assert!(winner.retrains >= 1, "the winner must retrain its way off the stale model");
}

#[test]
fn search_is_bit_reproducible_for_a_fixed_seed() {
    let dir = tmp_dir("repro");
    let (leak, _) = record_detuned_run(&dir);
    let evaluator = leak_evaluator(&dir, &leak);
    let detuned = detuned_point();

    let config = TuneConfig { seed: 7, verify_digest_stability: true, ..Default::default() };
    let first = Tuner::new(config.clone()).search(&evaluator, &detuned).unwrap();
    let second = Tuner::new(config).search(&evaluator, &detuned).unwrap();
    // The entire outcome — trajectory, acceptances, operator weights —
    // must match candidate for candidate, not just the final point.
    assert_eq!(first, second, "same seed + same journal + same incumbent ⇒ same search");
    assert!(
        first.candidates.iter().all(|c| c.objective_secs.is_some()),
        "every candidate must double-replay to a stable digest: {:?}",
        first.candidates
    );
}

/// A journal whose labels are *exactly* the incumbent model's own
/// predictions: the incumbent replays to a mean error of exactly zero,
/// and since objectives are non-negative and the gate comparison is
/// strict, no candidate can ever be promoted off it.
fn unbeatable_journal(dir: &Path, class: &ServiceClass, model: &Arc<dyn Regressor>) {
    let journal = Journal::open(dir).unwrap();
    for chunk in 0..4u64 {
        let rows = (0..16u64)
            .map(|i| {
                let x = (chunk * 16 + i) as f64;
                let label = model.predict(&[x]);
                JournalCheckpoint {
                    features: vec![x],
                    ttf_secs: label,
                    predicted_ttf_secs: Some(label),
                    predicted_generation: Some(0),
                    monitor_only: false,
                }
            })
            .collect();
        journal
            .append(&JournalRecord::Checkpoints { class: class.as_str().to_string(), rows })
            .unwrap();
    }
    journal.sync().unwrap();
}

#[test]
fn a_tuner_whose_gate_never_fires_leaves_the_fleet_report_identical() {
    let features = FeatureSet::exp42();
    let horizon = 2.0 * 3600.0;
    let config = FleetConfig {
        shards: 2,
        rejuvenation: RejuvenationConfig { horizon_secs: horizon, ..Default::default() },
        counterfactual_horizon_secs: 3600.0,
    };
    let scenario = Scenario::builder("steady-leak")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(30))
        .run_to_crash()
        .build();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let specs: Vec<InstanceSpec> = (0..6)
        .map(|i| {
            InstanceSpec::new(format!("svc-{i:03}"), scenario.clone(), policy, 9_000 + i)
                .with_class("steady")
        })
        .collect();
    let initial: Arc<dyn Regressor> = {
        let training = Scenario::builder("steady-train")
            .emulated_browsers(100)
            .memory_leak(MemLeakSpec::new(45))
            .run_to_crash()
            .build();
        let predictor = AgingPredictor::train(&[training], features.clone(), 42).unwrap();
        Arc::new(predictor.model().clone())
    };
    let steady = ServiceClass::new("steady");
    let spawn_router = || {
        AdaptiveRouter::builder(features.variables().to_vec())
            .class(
                steady.clone(),
                ClassSpec::builder(LearnerKind::M5p.learner(), Arc::clone(&initial))
                    .config(AdaptConfig::builder().drift(DriftConfig::disabled()).build())
                    .build(),
            )
            .config(RouterConfig::builder().retrainer_threads(2).build())
            .spawn()
    };

    // Baseline: no tuner.
    let router = spawn_router();
    let untuned =
        Fleet::new(specs.clone(), config).unwrap().run_routed(&router, &features).unwrap();
    router.shutdown();

    // Same run with a live tuner grinding rounds against a journal its
    // gate mathematically cannot win on (incumbent objective is 0).
    let tuner_dir = tmp_dir("unbeatable");
    let tuner_model = line_model(2.0);
    unbeatable_journal(&tuner_dir, &steady, &tuner_model);
    let tuner = FleetTuner::new(
        &tuner_dir,
        vec!["x".into()],
        TuneConfig::default(),
        vec![TunedClass {
            class: steady.clone(),
            incumbent: detuned_point(),
            initial: tuner_model,
        }],
    );
    let router = spawn_router();
    let tuned = Fleet::new(specs, config)
        .unwrap()
        .with_tuner(tuner)
        .run_routed(&router, &features)
        .unwrap();
    let stats = router.stats();
    router.shutdown();

    let tuning = tuned.tuning.as_ref().expect("the tuner ran and left its stats");
    assert_eq!(tuning.promotions, 0, "a zero-error incumbent is unbeatable: {tuning:?}");
    assert_eq!(stats.applied_specs, 0, "no promotion, no live spec swap");
    assert_eq!(
        untuned, tuned,
        "with the gate never firing, the tuned run must be report-identical"
    );
}
