//! Crash-recovery guarantees of the checkpoint journal (ISSUE 8):
//!
//! 1. **kill-and-restart** — a routed run journals every batch before
//!    buffering it; dropping all live state and spawning a fresh router
//!    with `.replay()` restores **bit-identical** adaptation state, as
//!    witnessed by the per-class state digests;
//! 2. **offline replay** — [`replay`] reproduces the same digests with
//!    no live threads at all;
//! 3. **torn tail** — garbage after the last complete frame (a crash
//!    mid-write) is truncated and reported, never fatal;
//! 4. **what-if mode** — replaying the recorded stream under a different
//!    [`ThresholdPolicy`] is deterministic (equal to itself) and
//!    divergent (different from what actually happened).

use software_aging::adapt::replay::replay;
use software_aging::adapt::{
    AdaptConfig, AdaptiveRouter, CheckpointBatch, ClassSpec, DriftConfig, LabelledCheckpoint,
    QuantileAdaptive, RouterConfig, ServiceClass,
};
use software_aging::dataset::Dataset;
use software_aging::journal::Journal;
use software_aging::ml::linreg::LinRegLearner;
use software_aging::ml::{Learner, Regressor};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aging-recovery-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn line_model(slope: f64) -> Arc<dyn Regressor> {
    let mut ds = Dataset::new(vec!["x".into()], "y");
    for i in 0..30 {
        ds.push_row(vec![i as f64], slope * i as f64).unwrap();
    }
    Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
}

fn quick_adapt(threshold: f64) -> AdaptConfig {
    AdaptConfig::builder()
        .drift(DriftConfig {
            enabled: true,
            ewma_alpha: 0.4,
            error_threshold_secs: threshold,
            min_observations: 8,
            trend_window: 64,
            trend_tolerance_secs: 100.0,
            trend_slope_threshold: 5.0,
            cooldown_observations: 40,
        })
        .buffer_capacity(512)
        .min_buffer_to_retrain(40)
        .bus_capacity(256)
        .build()
}

fn spec(slope: f64, threshold: f64) -> ClassSpec {
    ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(slope))
        .config(quick_adapt(threshold))
        .build()
}

fn batch(
    class: &ServiceClass,
    xs: impl IntoIterator<Item = (f64, f64, Option<f64>)>,
) -> CheckpointBatch {
    CheckpointBatch {
        source: format!("src-{class}"),
        class: class.clone(),
        checkpoints: xs
            .into_iter()
            .map(|(x, y, pred)| LabelledCheckpoint::new(vec![x], y, pred))
            .collect(),
    }
}

fn classes() -> (ServiceClass, ServiceClass) {
    (ServiceClass::new("leaky"), ServiceClass::new("stable"))
}

fn specs() -> Vec<(ServiceClass, ClassSpec)> {
    let (a, b) = classes();
    vec![(a, spec(2.0, 150.0)), (b, spec(1.0, 150.0))]
}

const CHUNKS: u64 = 6;
const CHUNK_ROWS: u64 = 32;

/// Runs the recorded stream: class A's regime has shifted away from its
/// stale model (drift fires, refits happen), class B tracks its model
/// exactly (never retrains). Quiesces after every chunk so refit timing
/// cannot blur the outcome — the determinism the digests witness is of
/// the *settled* states.
fn record_run(dir: &PathBuf) -> Vec<(ServiceClass, u64)> {
    let (a, b) = classes();
    let journal = Arc::new(Journal::open(dir).unwrap());
    let mut builder = AdaptiveRouter::builder(vec!["x".into()])
        .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(128).build())
        .journal(Arc::clone(&journal));
    for (class, spec) in specs() {
        builder = builder.class(class, spec);
    }
    let router = builder.spawn();
    let bus = router.bus();
    for chunk in 0..CHUNKS {
        let xs: Vec<f64> = (0..CHUNK_ROWS).map(|i| (chunk * CHUNK_ROWS + i) as f64).collect();
        // Class A: truth is y = 500 - 2x, the stale model said y = 2x.
        assert!(bus.publish(batch(&a, xs.iter().map(|&x| (x, 500.0 - 2.0 * x, Some(2.0 * x))))));
        // Class B: truth matches the model bit for bit.
        assert!(bus.publish(batch(&b, xs.iter().map(|&x| (x, x, Some(x))))));
        assert!(router.quiesce(Duration::from_secs(30)), "chunk {chunk} must settle");
    }
    journal.sync().unwrap();
    let (stats, digests) = router.shutdown_with_digests();
    assert!(stats.classes.iter().any(|c| c.stats.generation > 0), "class A must have retrained");
    assert_eq!(stats.journal_errors, 0, "recording must journal cleanly");
    digests.expect("ingest thread publishes digests at exit")
}

fn digest_of(digests: &[(ServiceClass, u64)], class: &ServiceClass) -> u64 {
    digests.iter().find(|(c, _)| c == class).map(|(_, d)| *d).expect("class digested")
}

#[test]
fn restart_with_replay_restores_bit_identical_state() {
    let dir = tmp_dir("restart");
    let live = record_run(&dir);

    // "Restart": all in-memory state is gone, only the journal survives.
    let mut builder = AdaptiveRouter::builder(vec!["x".into()])
        .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(128).build())
        .journal(Arc::new(Journal::open(&dir).unwrap()))
        .replay();
    for (class, spec) in specs() {
        builder = builder.class(class, spec);
    }
    let restored = builder.spawn();
    assert!(restored.quiesce(Duration::from_secs(30)));

    // The restored router is live, not a read-only reconstruction: it
    // must keep ingesting (and journalling) new batches.
    let (a, _) = classes();
    let bus = restored.bus();
    let xs: Vec<f64> = (0..CHUNK_ROWS).map(|i| (CHUNKS * CHUNK_ROWS + i) as f64).collect();
    assert!(bus.publish(batch(&a, xs.iter().map(|&x| (x, 500.0 - 2.0 * x, Some(2.0 * x))))));
    assert!(restored.quiesce(Duration::from_secs(30)), "post-restart ingestion must settle");

    let stats = restored.stats();
    assert_eq!(stats.journal_errors, 0);
    let ingested: u64 = stats.classes.iter().map(|c| c.stats.ingested_checkpoints).sum();
    assert_eq!(
        ingested,
        (CHUNKS + 1) * CHUNK_ROWS * 2 - CHUNK_ROWS,
        "replayed rows + the one live chunk"
    );

    // Re-replay offline including the post-restart chunk: the journal
    // kept growing across the restart (sequence numbers continue), so a
    // second recovery sees one consistent log.
    drop(restored);
    let outcome = replay(&dir, vec!["x".into()], specs()).unwrap();
    assert_eq!(outcome.rows, (CHUNKS + 1) * CHUNK_ROWS * 2 - CHUNK_ROWS);
    assert_eq!(outcome.truncated_bytes, 0);

    // And the pre-crash digests match a pure replay of the original run:
    // replaying only what `record_run` journalled is covered by
    // `offline_replay_matches_live_digests`; here the live restart path
    // is the subject. Spawn a *third* router replaying everything and
    // compare against the restored router's own continuation — both saw
    // recorded-run + extra chunk, so both must land on the same state.
    let (a, b) = classes();
    let from_restart = {
        let mut builder = AdaptiveRouter::builder(vec!["x".into()])
            .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(128).build())
            .journal(Arc::new(Journal::open(&dir).unwrap()))
            .replay();
        for (class, spec) in specs() {
            builder = builder.class(class, spec);
        }
        let router = builder.spawn();
        assert!(router.quiesce(Duration::from_secs(30)));
        router.shutdown_with_digests().1.expect("digests published")
    };
    let offline = replay(&dir, vec!["x".into()], specs()).unwrap();
    for class in [&a, &b] {
        let offline_digest = offline
            .classes
            .iter()
            .find(|c| &c.class == class)
            .map(|c| c.digest)
            .expect("class replayed");
        assert_eq!(
            digest_of(&from_restart, class),
            offline_digest,
            "live replay and offline replay must agree on {class}"
        );
    }
    // The original live run's digests are a *prefix* state (one chunk
    // short), so they must differ from the continued log's — equality
    // here would mean the restart never ingested the extra chunk.
    assert_ne!(digest_of(&live, &a), digest_of(&from_restart, &a));
}

#[test]
fn offline_replay_matches_live_digests() {
    let dir = tmp_dir("offline");
    let live = record_run(&dir);
    let (a, b) = classes();

    let outcome = replay(&dir, vec!["x".into()], specs()).unwrap();
    assert_eq!(outcome.truncated_bytes, 0);
    assert_eq!(outcome.rows, CHUNKS * CHUNK_ROWS * 2);
    assert_eq!(outcome.skipped_records, 0);
    assert!(outcome.partition.is_none(), "no discovery ran");
    for class in [&a, &b] {
        let replayed = outcome.classes.iter().find(|c| &c.class == class).unwrap();
        assert_eq!(
            replayed.digest,
            digest_of(&live, class),
            "offline replay must restore {class} bit-identically \
             (generation {}, buffered {})",
            replayed.generation,
            replayed.buffered
        );
    }
    let leaky = outcome.classes.iter().find(|c| c.class == a).unwrap();
    let stable = outcome.classes.iter().find(|c| c.class == b).unwrap();
    assert!(leaky.generation > 0, "shifted class must retrain in replay too");
    assert_eq!(stable.generation, 0, "faithful class must never retrain");
    assert_eq!(leaky.buffered, CHUNKS * CHUNK_ROWS);
}

#[test]
fn torn_tail_is_truncated_not_fatal() {
    let dir = tmp_dir("torn");
    let live = record_run(&dir);
    let (a, _) = classes();

    // A crash mid-append leaves a partial frame at the end of the newest
    // segment. Forge one: half a length prefix plus garbage.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ajl"))
        .max()
        .expect("journal has segments");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&newest).unwrap();
        f.write_all(&[0xFF, 0x13, 0x37]).unwrap();
    }

    let outcome = replay(&dir, vec!["x".into()], specs()).unwrap();
    assert_eq!(outcome.truncated_bytes, 3, "the torn bytes are dropped, not an error");
    assert_eq!(outcome.rows, CHUNKS * CHUNK_ROWS * 2, "every complete frame survives");
    let replayed = outcome.classes.iter().find(|c| c.class == a).unwrap();
    assert_eq!(replayed.digest, digest_of(&live, &a), "recovery is unimpaired by the tail");
}

#[test]
fn what_if_replay_diverges_deterministically() {
    let dir = tmp_dir("whatif");
    let live = record_run(&dir);
    let (a, _) = classes();

    // Counterfactual: same recorded stream, but thresholds re-derive
    // from error quantiles instead of staying fixed.
    let what_if_specs = || {
        specs()
            .into_iter()
            .map(|(class, spec)| {
                let ClassSpec { learner, initial, config, .. } = spec;
                let spec = ClassSpec::builder(learner, initial)
                    .config(config)
                    .policy(Arc::new(QuantileAdaptive::default()))
                    .build();
                (class, spec)
            })
            .collect::<Vec<_>>()
    };

    let first = replay(&dir, vec!["x".into()], what_if_specs()).unwrap();
    let second = replay(&dir, vec!["x".into()], what_if_specs()).unwrap();

    let digest_in = |outcome: &software_aging::adapt::ReplayOutcome| {
        outcome.classes.iter().find(|c| c.class == a).map(|c| c.digest).unwrap()
    };
    assert_eq!(
        digest_in(&first),
        digest_in(&second),
        "a what-if run is exactly reproducible: same journal + same specs ⇒ same state"
    );
    assert_ne!(
        digest_in(&first),
        digest_of(&live, &a),
        "swapping the threshold policy must change the drifting class's end state"
    );
    let counterfactual = first.classes.iter().find(|c| c.class == a).unwrap();
    let fixed = quick_adapt(150.0);
    assert!(
        counterfactual.thresholds.error_threshold_secs != fixed.drift.error_threshold_secs
            || counterfactual.thresholds.rejuvenation_threshold_secs.is_some(),
        "the adaptive policy must actually move a threshold: {:?}",
        counterfactual.thresholds
    );
}
