//! Monitoring subsystem: turns raw simulator checkpoints into the paper's
//! Table-2 variable vectors and labelled training datasets.
//!
//! The paper samples the testbed every 15 seconds and feeds M5P a vector of
//! raw metrics plus *derived* variables, "where the most important variable
//! we add is the consumption speed from every resource under monitoring …
//! smoothed out using averaging over a sliding window of recent
//! instantaneous measurements" (Section 2.2). This crate implements:
//!
//! - [`catalog`] — the full variable catalogue (every row of the paper's
//!   Table 2) and the streaming [`catalog::FeatureExtractor`] that computes
//!   it checkpoint by checkpoint,
//! - [`featureset`] — the per-experiment variable subsets (Experiment 4.1
//!   omits heap internals; Experiment 4.3's expert selection keeps *only*
//!   the Java-heap variables),
//! - [`label`] — time-to-failure labelling of run-to-crash executions
//!   (non-aging executions are labelled with the paper's 3-hour "infinite"
//!   cap) and the [`label::build_dataset`] bridge into `aging-dataset`.
//!
//! # Example
//!
//! ```
//! use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
//! use aging_testbed::{MemLeakSpec, Scenario};
//!
//! let trace = Scenario::builder("train")
//!     .emulated_browsers(100)
//!     .memory_leak(MemLeakSpec::new(15))
//!     .run_to_crash()
//!     .build()
//!     .run(1);
//! let ds = build_dataset(&[&trace], &FeatureSet::exp42(), TTF_CAP_SECS);
//! assert_eq!(ds.len(), trace.samples.len());
//! assert_eq!(ds.target_name(), "time_to_failure");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod featureset;
pub mod label;

pub use catalog::FeatureExtractor;
pub use featureset::FeatureSet;
pub use label::{build_dataset, build_dataset_with_targets, label_ttf, TTF_CAP_SECS};
