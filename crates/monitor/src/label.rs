//! Time-to-failure labelling and dataset construction.
//!
//! "Our model will be trained using failure executions" (Section 2.2):
//! every checkpoint of a run-to-crash execution is labelled with the time
//! remaining until the crash. Executions that never crash are labelled with
//! the paper's cap: "we have trained our model to declare that the time
//! until crash is 3 hours (standing for 'very long' or 'infinite') when
//! there is no aging".

use crate::catalog::FeatureExtractor;
use crate::featureset::FeatureSet;
use aging_dataset::Dataset;
use aging_testbed::RunTrace;

/// The paper's "infinite TTF" stand-in: 3 hours, in seconds.
pub const TTF_CAP_SECS: f64 = 10_800.0;

/// Labels every checkpoint of `trace` with its time to failure in seconds,
/// capped at `cap_secs`. For non-crashing runs every label is `cap_secs`.
pub fn label_ttf(trace: &RunTrace, cap_secs: f64) -> Vec<f64> {
    trace
        .samples
        .iter()
        .map(|s| trace.ttf_from(s.time_secs).unwrap_or(cap_secs).min(cap_secs))
        .collect()
}

/// Builds a labelled dataset from several monitored executions.
///
/// Each trace gets a fresh [`FeatureExtractor`] (sliding-window state must
/// not leak across executions); rows are the feature-set projection of the
/// catalogue vector, targets are capped TTFs.
pub fn build_dataset(traces: &[&RunTrace], features: &FeatureSet, cap_secs: f64) -> Dataset {
    let mut ds = Dataset::new(features.variables().to_vec(), "time_to_failure");
    for trace in traces {
        let mut fx = FeatureExtractor::new(features.window());
        let targets = label_ttf(trace, cap_secs);
        for (sample, ttf) in trace.samples.iter().zip(targets) {
            let full = fx.push(sample);
            ds.push_row(features.project(&full), ttf)
                .expect("catalogue rows are finite and arity-correct");
        }
    }
    ds
}

/// Builds a dataset from one execution with caller-supplied targets (used
/// when the ground truth comes from frozen-rate forks rather than the run's
/// own crash time — Experiments 4.2 and 4.4).
///
/// # Panics
///
/// Panics if `targets.len() != trace.samples.len()`.
pub fn build_dataset_with_targets(
    trace: &RunTrace,
    features: &FeatureSet,
    targets: &[f64],
) -> Dataset {
    assert_eq!(targets.len(), trace.samples.len(), "one target per checkpoint required");
    let mut ds = Dataset::new(features.variables().to_vec(), "time_to_failure");
    let mut fx = FeatureExtractor::new(features.window());
    for (sample, &ttf) in trace.samples.iter().zip(targets) {
        let full = fx.push(sample);
        ds.push_row(features.project(&full), ttf)
            .expect("catalogue rows are finite and arity-correct");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_testbed::{MemLeakSpec, Scenario};

    fn crashing_trace() -> RunTrace {
        Scenario::builder("t")
            .emulated_browsers(100)
            .memory_leak(MemLeakSpec::new(15))
            .run_to_crash()
            .build()
            .run(42)
    }

    fn idle_trace() -> RunTrace {
        Scenario::builder("idle").emulated_browsers(50).duration_minutes(10).build().run(1)
    }

    #[test]
    fn crash_labels_decrease_to_zero() {
        let trace = crashing_trace();
        let labels = label_ttf(&trace, TTF_CAP_SECS);
        assert_eq!(labels.len(), trace.samples.len());
        for w in labels.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "TTF must decrease monotonically");
        }
        let last = *labels.last().unwrap();
        assert!(last < 60.0, "last checkpoint is within a minute of the crash, got {last}");
    }

    #[test]
    fn idle_labels_are_capped() {
        let trace = idle_trace();
        let labels = label_ttf(&trace, TTF_CAP_SECS);
        assert!(labels.iter().all(|&t| t == TTF_CAP_SECS));
    }

    #[test]
    fn long_crash_run_labels_are_capped_early() {
        let trace = crashing_trace();
        let labels = label_ttf(&trace, 100.0);
        assert_eq!(labels[0], 100.0, "early labels hit the cap");
    }

    #[test]
    fn dataset_shape_and_targets() {
        let trace = crashing_trace();
        let fs = FeatureSet::exp42();
        let ds = build_dataset(&[&trace], &fs, TTF_CAP_SECS);
        assert_eq!(ds.len(), trace.samples.len());
        assert_eq!(ds.n_attributes(), fs.len());
        assert_eq!(ds.target_name(), "time_to_failure");
        assert_eq!(ds.targets(), label_ttf(&trace, TTF_CAP_SECS).as_slice());
    }

    #[test]
    fn multiple_traces_concatenate() {
        let a = idle_trace();
        let b = idle_trace();
        let fs = FeatureSet::exp41();
        let ds = build_dataset(&[&a, &b], &fs, TTF_CAP_SECS);
        assert_eq!(ds.len(), a.samples.len() + b.samples.len());
    }

    #[test]
    fn custom_targets_dataset() {
        let trace = idle_trace();
        let targets: Vec<f64> = (0..trace.samples.len()).map(|i| i as f64).collect();
        let ds = build_dataset_with_targets(&trace, &FeatureSet::exp42(), &targets);
        assert_eq!(ds.targets(), targets.as_slice());
    }

    #[test]
    #[should_panic(expected = "one target per checkpoint")]
    fn mismatched_targets_panic() {
        let trace = idle_trace();
        let _ = build_dataset_with_targets(&trace, &FeatureSet::exp42(), &[1.0]);
    }

    #[test]
    fn heap_feature_dataset_has_heap_columns_only() {
        let trace = idle_trace();
        let ds = build_dataset(&[&trace], &FeatureSet::exp43_heap(), TTF_CAP_SECS);
        assert!(ds.attribute_names().iter().all(|n| n.contains("young") || n.contains("old")));
    }
}
