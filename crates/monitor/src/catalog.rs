//! The full variable catalogue — every row of the paper's Table 2 —
//! and the streaming extractor that computes it per checkpoint.
//!
//! Naming convention (mirroring the paper's rows):
//!
//! - `swa_var_X` — the sliding-window-averaged consumption speed of
//!   resource `X` ("SWA variation"), in units per second,
//! - `inv_swa_X` — `1 / SWA variation` (capped),
//! - `X_per_swa` — resource level divided by its SWA variation
//!   ("Resource Used (R)/SWA"),
//! - `*_per_th` — the same quantity divided by throughput,
//! - `swa_used_X` — the sliding-window-averaged *level* of `X`
//!   ("SWA Resource Used").

use aging_dataset::{RateTracker, SlidingWindow};
use aging_testbed::MetricSample;

/// Cap used for `1/SWA`-style variables when the consumption speed is zero
/// or negative (an idle resource has unbounded time to exhaustion but the
/// feature must stay finite).
pub const INVERSE_CAP: f64 = 1.0e6;

/// Default sliding-window length `X` in checkpoints. The paper discusses
/// the trade-off and its Experiment 4.2 narration implies 12 marks
/// ("12 marks * 15 seconds per mark, 180 seconds").
pub const DEFAULT_WINDOW: usize = 12;

/// Every variable in the catalogue, in canonical order. Dataset columns and
/// feature-set subsets all refer to these names.
pub const ALL_VARIABLES: &[&str] = &[
    // -- raw metrics (Table 2, upper block) --
    "throughput",
    "workload",
    "response_time",
    "system_load",
    "disk_used",
    "swap_free",
    "num_processes",
    "sys_mem_used",
    "tomcat_mem_used",
    "num_threads",
    "http_connections",
    "mysql_connections",
    // -- heap zone metrics: Max MB, MB used, % used (Table 2) --
    "young_max",
    "old_max",
    "young_used",
    "old_used",
    "young_pct_used",
    "old_pct_used",
    // -- SWA variation of young/old (2) --
    "swa_var_young",
    "swa_var_old",
    // -- SWA variation (3): threads, tomcat mem, system mem --
    "swa_var_threads",
    "swa_var_tomcat_mem",
    "swa_var_sys_mem",
    // -- SWA variation / TH (2 + 2) --
    "swa_var_tomcat_mem_per_th",
    "swa_var_sys_mem_per_th",
    "swa_var_young_per_th",
    "swa_var_old_per_th",
    // -- 1 / SWA (3 + 2) --
    "inv_swa_threads",
    "inv_swa_tomcat_mem",
    "inv_swa_sys_mem",
    "inv_swa_young",
    "inv_swa_old",
    // -- Young/Old used / SWA (2) --
    "young_used_per_swa",
    "old_used_per_swa",
    // -- Resource used (R) / SWA (3) --
    "threads_per_swa",
    "tomcat_mem_per_swa",
    "sys_mem_per_swa",
    // -- (1/SWA variation) / TH (2 + 2) --
    "inv_swa_tomcat_mem_per_th",
    "inv_swa_sys_mem_per_th",
    "inv_swa_young_per_th",
    "inv_swa_old_per_th",
    // -- (R/SWA variation) / TH (2 + 2) --
    "tomcat_mem_per_swa_per_th",
    "sys_mem_per_swa_per_th",
    "young_per_swa_per_th",
    "old_per_swa_per_th",
    // -- SWA Resource Used (4): response time, throughput, sys mem, tomcat mem --
    "swa_used_response_time",
    "swa_used_throughput",
    "swa_used_sys_mem",
    "swa_used_tomcat_mem",
];

/// Index of `name` in [`ALL_VARIABLES`], if it is a known variable.
pub fn variable_index(name: &str) -> Option<usize> {
    ALL_VARIABLES.iter().position(|&v| v == name)
}

/// Whether a variable describes the Java heap ("the variables related with
/// the Java Heap evolution" kept by the paper's Experiment 4.3 selection).
pub fn is_heap_variable(name: &str) -> bool {
    name.contains("young") || name.contains("old")
}

/// Streaming computer of the full variable vector.
///
/// Feed checkpoints in time order with [`FeatureExtractor::push`]; each call
/// returns the complete, catalogue-ordered variable vector for that
/// checkpoint. State (sliding windows, rate trackers) is carried across
/// calls, so use one extractor per monitored execution.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    window: usize,
    threads: RateTracker,
    tomcat_mem: RateTracker,
    sys_mem: RateTracker,
    young: RateTracker,
    old: RateTracker,
    swa_response: SlidingWindow,
    swa_throughput: SlidingWindow,
    swa_sys_mem: SlidingWindow,
    swa_tomcat_mem: SlidingWindow,
}

impl FeatureExtractor {
    /// Creates an extractor with sliding windows of `window` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        FeatureExtractor {
            window,
            threads: RateTracker::new(window),
            tomcat_mem: RateTracker::new(window),
            sys_mem: RateTracker::new(window),
            young: RateTracker::new(window),
            old: RateTracker::new(window),
            swa_response: SlidingWindow::new(window),
            swa_throughput: SlidingWindow::new(window),
            swa_sys_mem: SlidingWindow::new(window),
            swa_tomcat_mem: SlidingWindow::new(window),
        }
    }

    /// The configured window length `X`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Resets all windowed state (e.g. after a rejuvenation).
    pub fn reset(&mut self) {
        *self = FeatureExtractor::new(self.window);
    }

    /// Consumes one checkpoint and returns the full variable vector in
    /// [`ALL_VARIABLES`] order.
    pub fn push(&mut self, s: &MetricSample) -> Vec<f64> {
        let t = s.time_secs;
        self.threads.observe(t, s.num_threads);
        self.tomcat_mem.observe(t, s.tomcat_mem_mb);
        self.sys_mem.observe(t, s.system_mem_used_mb);
        self.young.observe(t, s.young_used_mb);
        self.old.observe(t, s.old_used_mb);
        self.swa_response.push(s.response_time_ms);
        self.swa_throughput.push(s.throughput_rps);
        self.swa_sys_mem.push(s.system_mem_used_mb);
        self.swa_tomcat_mem.push(s.tomcat_mem_mb);

        let th = s.throughput_rps.max(1e-6);
        let v_threads = self.threads.smoothed_speed();
        let v_tomcat = self.tomcat_mem.smoothed_speed();
        let v_sys = self.sys_mem.smoothed_speed();
        let v_young = self.young.smoothed_speed();
        let v_old = self.old.smoothed_speed();

        let per_swa = |level: f64, speed: f64| {
            if speed <= 0.0 {
                INVERSE_CAP
            } else {
                (level / speed).min(INVERSE_CAP)
            }
        };

        vec![
            s.throughput_rps,
            s.workload_ebs,
            s.response_time_ms,
            s.system_load,
            s.disk_used_mb,
            s.swap_free_mb,
            s.num_processes,
            s.system_mem_used_mb,
            s.tomcat_mem_mb,
            s.num_threads,
            s.http_connections,
            s.mysql_connections,
            s.young_max_mb,
            s.old_max_mb,
            s.young_used_mb,
            s.old_used_mb,
            100.0 * s.young_used_mb / s.young_max_mb.max(1e-6),
            100.0 * s.old_used_mb / s.old_max_mb.max(1e-6),
            v_young,
            v_old,
            v_threads,
            v_tomcat,
            v_sys,
            v_tomcat / th,
            v_sys / th,
            v_young / th,
            v_old / th,
            self.threads.inverse_speed(INVERSE_CAP),
            self.tomcat_mem.inverse_speed(INVERSE_CAP),
            self.sys_mem.inverse_speed(INVERSE_CAP),
            self.young.inverse_speed(INVERSE_CAP),
            self.old.inverse_speed(INVERSE_CAP),
            per_swa(s.young_used_mb, v_young),
            per_swa(s.old_used_mb, v_old),
            per_swa(s.num_threads, v_threads),
            per_swa(s.tomcat_mem_mb, v_tomcat),
            per_swa(s.system_mem_used_mb, v_sys),
            self.tomcat_mem.inverse_speed(INVERSE_CAP) / th,
            self.sys_mem.inverse_speed(INVERSE_CAP) / th,
            self.young.inverse_speed(INVERSE_CAP) / th,
            self.old.inverse_speed(INVERSE_CAP) / th,
            per_swa(s.tomcat_mem_mb, v_tomcat) / th,
            per_swa(s.system_mem_used_mb, v_sys) / th,
            per_swa(s.young_used_mb, v_young) / th,
            per_swa(s.old_used_mb, v_old) / th,
            self.swa_response.mean(),
            self.swa_throughput.mean(),
            self.swa_sys_mem.mean(),
            self.swa_tomcat_mem.mean(),
        ]
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor::new(DEFAULT_WINDOW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, tomcat_mem: f64, threads: f64) -> MetricSample {
        MetricSample {
            time_secs: t,
            throughput_rps: 14.0,
            workload_ebs: 100.0,
            response_time_ms: 50.0,
            system_load: 0.1,
            disk_used_mb: 9500.0,
            swap_free_mb: 1024.0,
            num_processes: 82.0,
            system_mem_used_mb: 700.0 + tomcat_mem,
            tomcat_mem_mb: tomcat_mem,
            num_threads: threads,
            http_connections: 2.0,
            mysql_connections: 2.0,
            young_max_mb: 128.0,
            old_max_mb: 256.0,
            young_used_mb: 40.0,
            old_used_mb: tomcat_mem / 2.0,
            heap_used_mb: 40.0 + tomcat_mem / 2.0,
            gc_minor: 1.0,
            gc_major: 0.0,
            old_resizes: 0.0,
            refused: 0.0,
        }
    }

    #[test]
    fn vector_matches_catalogue_length_and_is_finite() {
        let mut fx = FeatureExtractor::default();
        for i in 0..20 {
            let row = fx.push(&sample(i as f64 * 15.0, 300.0 + i as f64, 76.0));
            assert_eq!(row.len(), ALL_VARIABLES.len());
            assert!(row.iter().all(|v| v.is_finite()), "non-finite at step {i}: {row:?}");
        }
    }

    #[test]
    fn variable_indices_are_consistent() {
        for (i, name) in ALL_VARIABLES.iter().enumerate() {
            assert_eq!(variable_index(name), Some(i));
        }
        assert_eq!(variable_index("not_a_variable"), None);
    }

    #[test]
    fn no_duplicate_variable_names() {
        let mut names: Vec<&str> = ALL_VARIABLES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_VARIABLES.len());
    }

    #[test]
    fn consumption_speed_is_computed() {
        let mut fx = FeatureExtractor::new(4);
        // Tomcat memory grows 15 MB per 15 s checkpoint = 1 MB/s.
        let mut last = Vec::new();
        for i in 0..10 {
            last = fx.push(&sample(i as f64 * 15.0, 300.0 + 15.0 * i as f64, 76.0));
        }
        let idx = variable_index("swa_var_tomcat_mem").unwrap();
        assert!((last[idx] - 1.0).abs() < 1e-9, "speed {} != 1.0 MB/s", last[idx]);
        let inv = variable_index("inv_swa_tomcat_mem").unwrap();
        assert!((last[inv] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_resource_speed_is_zero_and_inverse_capped() {
        let mut fx = FeatureExtractor::new(4);
        let mut last = Vec::new();
        for i in 0..6 {
            last = fx.push(&sample(i as f64 * 15.0, 300.0, 76.0));
        }
        assert_eq!(last[variable_index("swa_var_tomcat_mem").unwrap()], 0.0);
        assert_eq!(last[variable_index("inv_swa_tomcat_mem").unwrap()], INVERSE_CAP);
        assert_eq!(last[variable_index("tomcat_mem_per_swa").unwrap()], INVERSE_CAP);
    }

    #[test]
    fn percentages_are_computed() {
        let mut fx = FeatureExtractor::default();
        let row = fx.push(&sample(0.0, 300.0, 76.0));
        let young_pct = row[variable_index("young_pct_used").unwrap()];
        assert!((young_pct - 100.0 * 40.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn heap_variable_classification() {
        assert!(is_heap_variable("young_used"));
        assert!(is_heap_variable("swa_var_old"));
        assert!(is_heap_variable("old_per_swa_per_th"));
        assert!(!is_heap_variable("tomcat_mem_used"));
        assert!(!is_heap_variable("num_threads"));
    }

    #[test]
    fn reset_clears_windows() {
        let mut fx = FeatureExtractor::new(3);
        for i in 0..5 {
            fx.push(&sample(i as f64 * 15.0, 300.0 + 30.0 * i as f64, 76.0));
        }
        fx.reset();
        let row = fx.push(&sample(100.0, 300.0, 76.0));
        assert_eq!(row[variable_index("swa_var_tomcat_mem").unwrap()], 0.0);
    }

    #[test]
    fn swa_levels_smooth() {
        let mut fx = FeatureExtractor::new(2);
        fx.push(&sample(0.0, 100.0, 76.0));
        let row = fx.push(&sample(15.0, 300.0, 76.0));
        let idx = variable_index("swa_used_tomcat_mem").unwrap();
        assert_eq!(row[idx], 200.0, "mean of the last two levels");
    }
}
