//! Per-experiment variable subsets — the columns of the paper's Table 2.
//!
//! Each experiment trains its model on a specific subset of the catalogue:
//!
//! - **Experiment 4.1** (deterministic aging): everything *except* the heap
//!   internals — "In this experiment, we did not add the heap information."
//! - **Experiments 4.2 / 4.4**: the full catalogue.
//! - **Experiment 4.3 complete**: the full catalogue (which the paper found
//!   performed poorly — "the model was paying too much attention to
//!   irrelevant attributes").
//! - **Experiment 4.3 feature-selected**: only "the variables related with
//!   the Java Heap evolution".

use crate::catalog::{self, ALL_VARIABLES, DEFAULT_WINDOW};
use serde::{Deserialize, Serialize};

/// A named subset of the variable catalogue plus the sliding-window length.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    name: String,
    variables: Vec<String>,
    window: usize,
}

impl FeatureSet {
    /// Creates a feature set from explicit variable names.
    ///
    /// # Panics
    ///
    /// Panics if `variables` is empty, contains an unknown name, or
    /// `window == 0`.
    pub fn custom(name: impl Into<String>, variables: Vec<String>, window: usize) -> Self {
        assert!(!variables.is_empty(), "a feature set needs at least one variable");
        assert!(window > 0, "sliding window must be positive");
        for v in &variables {
            assert!(catalog::variable_index(v).is_some(), "unknown variable `{v}` in feature set");
        }
        FeatureSet { name: name.into(), variables, window }
    }

    /// The complete catalogue.
    pub fn full() -> Self {
        Self::custom("full", ALL_VARIABLES.iter().map(|s| s.to_string()).collect(), DEFAULT_WINDOW)
    }

    /// Experiment 4.1: everything except heap internals.
    pub fn exp41() -> Self {
        Self::custom(
            "exp4.1",
            ALL_VARIABLES
                .iter()
                .filter(|v| !catalog::is_heap_variable(v))
                .map(|s| s.to_string())
                .collect(),
            DEFAULT_WINDOW,
        )
    }

    /// Experiment 4.2: the full catalogue.
    pub fn exp42() -> Self {
        FeatureSet { name: "exp4.2".into(), ..Self::full() }
    }

    /// Sliding-window length for Experiment 4.3: the paper notes the window
    /// "must be set by considering the expected noise and the frequency of
    /// change in our scenario", and in 4.3 the 20-minute acquire/release
    /// waves *are* the noise — "M5P can manage the periodic pattern and
    /// extract from that, the real trend". One full cycle (2 × 20 min at
    /// 15 s checkpoints = 160) averages the waves out into the net leak
    /// rate; longer windows only add lag (verified by the window ablation).
    pub const EXP43_WINDOW: usize = 160;

    /// Experiment 4.3, first attempt: the full catalogue (long window, see
    /// [`FeatureSet::EXP43_WINDOW`]).
    pub fn exp43_full() -> Self {
        FeatureSet { name: "exp4.3-complete".into(), ..Self::full() }
            .with_window(Self::EXP43_WINDOW)
    }

    /// Experiment 4.3 after the paper's expert selection: heap variables
    /// only (long window, see [`FeatureSet::EXP43_WINDOW`]).
    pub fn exp43_heap() -> Self {
        Self::custom(
            "exp4.3-heap-selected",
            ALL_VARIABLES
                .iter()
                .filter(|v| catalog::is_heap_variable(v))
                .map(|s| s.to_string())
                .collect(),
            Self::EXP43_WINDOW,
        )
    }

    /// Experiment 4.4: the full catalogue.
    pub fn exp44() -> Self {
        FeatureSet { name: "exp4.4".into(), ..Self::full() }
    }

    /// The set's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The selected variable names, in catalogue order of selection.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Number of selected variables.
    pub fn len(&self) -> usize {
        self.variables.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.variables.is_empty()
    }

    /// The sliding-window length `X` used for the derived variables.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Returns a copy with a different sliding-window length (used by the
    /// window-length ablation bench).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "sliding window must be positive");
        self.window = window;
        self
    }

    /// Indices of the selected variables in the full catalogue, in
    /// selection order.
    pub fn catalogue_indices(&self) -> Vec<usize> {
        self.variables
            .iter()
            .map(|v| catalog::variable_index(v).expect("validated at construction"))
            .collect()
    }

    /// Projects a full catalogue row onto this feature set.
    ///
    /// # Panics
    ///
    /// Panics if `full_row` does not have catalogue length.
    pub fn project(&self, full_row: &[f64]) -> Vec<f64> {
        assert_eq!(full_row.len(), ALL_VARIABLES.len(), "expected a full catalogue row");
        self.catalogue_indices().iter().map(|&i| full_row[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_covers_catalogue() {
        let fs = FeatureSet::full();
        assert_eq!(fs.len(), ALL_VARIABLES.len());
        assert_eq!(fs.window(), DEFAULT_WINDOW);
    }

    #[test]
    fn exp41_has_no_heap_variables() {
        let fs = FeatureSet::exp41();
        assert!(fs.variables().iter().all(|v| !catalog::is_heap_variable(v)));
        assert!(fs.len() < ALL_VARIABLES.len());
        assert!(fs.variables().iter().any(|v| v == "tomcat_mem_used"));
    }

    #[test]
    fn exp43_heap_has_only_heap_variables() {
        let fs = FeatureSet::exp43_heap();
        assert!(fs.variables().iter().all(|v| catalog::is_heap_variable(v)));
        assert!(fs.len() >= 10, "heap block of Table 2 is substantial, got {}", fs.len());
    }

    #[test]
    fn exp41_and_exp43_heap_partition_catalogue() {
        let a = FeatureSet::exp41().len();
        let b = FeatureSet::exp43_heap().len();
        assert_eq!(a + b, ALL_VARIABLES.len());
    }

    #[test]
    fn projection_selects_right_values() {
        let fs = FeatureSet::custom("t", vec!["workload".into(), "throughput".into()], 4);
        let mut row = vec![0.0; ALL_VARIABLES.len()];
        row[catalog::variable_index("throughput").unwrap()] = 14.0;
        row[catalog::variable_index("workload").unwrap()] = 100.0;
        assert_eq!(fs.project(&row), vec![100.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_variable_panics() {
        let _ = FeatureSet::custom("bad", vec!["nope".into()], 4);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_set_panics() {
        let _ = FeatureSet::custom("bad", vec![], 4);
    }

    #[test]
    fn with_window_changes_only_window() {
        let fs = FeatureSet::exp42().with_window(24);
        assert_eq!(fs.window(), 24);
        assert_eq!(fs.len(), ALL_VARIABLES.len());
    }

    #[test]
    #[should_panic(expected = "full catalogue row")]
    fn project_rejects_short_rows() {
        let _ = FeatureSet::full().project(&[1.0, 2.0]);
    }
}
