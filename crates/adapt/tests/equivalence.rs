//! Bit-identical equivalence of the two retrainers on the unified
//! [`aging_adapt::AdaptationPipeline`].
//!
//! `AdaptiveService` (synchronous in-thread fit) and a single-class
//! `AdaptiveRouter` (pooled async refit) used to be two hand-maintained
//! copies of the same state machine; now they are two [`RetrainAction`]s
//! behind one pipeline. This suite pins the claim that the unification
//! changed **nothing observable** under the [`FixedThresholds`] policy:
//! fed the same batch sequence (paced so the pooled path never defers on
//! an in-flight job), both must count the same drift events, run the same
//! retrains at the same points, publish the same generations, and — since
//! both fit the same learner on the same sliding window — serve models
//! with **bit-identical** predictions.
//!
//! The deprecated `spawn` constructors are also exercised (under
//! `#[allow(deprecated)]`) to prove the migration shims are
//! behaviour-preserving, not just compiling.

use aging_adapt::{
    AdaptConfig, AdaptiveRouter, AdaptiveService, CheckpointBatch, ClassSpec, DriftConfig,
    LabelledCheckpoint, RouterConfig, ServiceClass, DEFAULT_BUS_CAPACITY,
};
use aging_dataset::Dataset;
use aging_ml::linreg::LinRegLearner;
use aging_ml::{DynLearner, Learner, Regressor};
use std::sync::Arc;
use std::time::Duration;

fn initial_model(slope: f64) -> Arc<dyn Regressor> {
    let mut ds = Dataset::new(vec!["x".into()], "y");
    for i in 0..40 {
        ds.push_row(vec![i as f64], slope * i as f64).unwrap();
    }
    Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
}

fn learner() -> Arc<dyn DynLearner> {
    Arc::new(LinRegLearner::default())
}

fn config(drift_enabled: bool, retrain_every: Option<usize>) -> AdaptConfig {
    let mut builder = AdaptConfig::builder()
        .drift(if drift_enabled {
            DriftConfig {
                enabled: true,
                ewma_alpha: 0.3,
                error_threshold_secs: 120.0,
                min_observations: 10,
                trend_window: 48,
                trend_tolerance_secs: 100.0,
                trend_slope_threshold: 5.0,
                cooldown_observations: 60,
            }
        } else {
            DriftConfig::disabled()
        })
        .buffer_capacity(256)
        .min_buffer_to_retrain(30);
    if let Some(every) = retrain_every {
        builder = builder.retrain_every(every);
    }
    builder.build()
}

fn batch(class: &ServiceClass, seq: usize, n: usize, truth: fn(f64) -> f64) -> CheckpointBatch {
    // The stale initial model is y = 2x; predictions are labelled with it
    // so both consumers see identical error streams.
    CheckpointBatch {
        source: "equiv".into(),
        class: class.clone(),
        checkpoints: (0..n)
            .map(|i| {
                let x = (seq * n + i) as f64 * 0.4;
                LabelledCheckpoint::new(vec![x], truth(x), Some(2.0 * x))
            })
            .collect(),
    }
}

/// Drives the same batch sequence through a service and a single-class
/// router, quiescing after every publish so the pooled path is never
/// mid-refit at a trigger (the one legitimate timing difference), then
/// asserts counter and model equivalence.
fn assert_equivalent(drift_enabled: bool, retrain_every: Option<usize>, truth: fn(f64) -> f64) {
    let class = ServiceClass::new("only");
    let service = AdaptiveService::builder(learner(), vec!["x".into()], initial_model(2.0))
        .config(config(drift_enabled, retrain_every))
        .spawn();
    let router = AdaptiveRouter::builder(vec!["x".into()])
        .class(
            class.clone(),
            ClassSpec::builder(learner(), initial_model(2.0))
                .config(config(drift_enabled, retrain_every))
                .build(),
        )
        .spawn();

    let (service_bus, router_bus) = (service.bus(), router.bus());
    for seq in 0..12 {
        let b = batch(&class, seq, 24, truth);
        assert!(service_bus.publish(b.clone()));
        assert!(router_bus.publish(b));
        // Lock-step pacing: both sides settle before the next batch, so
        // the async pool can never skip a trigger the sync path takes.
        assert!(service.quiesce(Duration::from_secs(30)), "service must settle");
        assert!(router.quiesce(Duration::from_secs(30)), "router must settle");

        let s = service.stats();
        let r = router.stats();
        let rc = r.class(&class).expect("registered");
        assert_eq!(s.drift_events, rc.drift_events, "batch {seq}: drift events diverged");
        assert_eq!(s.retrains, rc.retrains, "batch {seq}: retrains diverged");
        assert_eq!(
            s.generations_published, rc.generations_published,
            "batch {seq}: generations diverged"
        );
        assert_eq!(s.ingested_checkpoints, rc.ingested_checkpoints, "batch {seq}");
        assert_eq!(s.buffered, rc.buffered, "batch {seq}: sliding windows diverged");
        assert_eq!(s.failed_retrains, rc.failed_retrains, "batch {seq}");

        // Same learner, same sliding window ⇒ bit-identical models.
        let sm = service.model_service().snapshot();
        let rm = router.model_service(&class).expect("registered").snapshot();
        assert_eq!(sm.generation, rm.generation, "batch {seq}");
        for probe in [0.0, 7.5, 40.0, 123.0] {
            assert_eq!(
                sm.model.predict(&[probe]).to_bits(),
                rm.model.predict(&[probe]).to_bits(),
                "batch {seq}: generation {} models diverged at x = {probe}",
                sm.generation
            );
        }
    }

    let final_service = service.shutdown();
    let final_router = router.shutdown();
    let final_class = final_router.class(&class).expect("registered");
    assert_eq!(final_service.retrains, final_class.retrains);
    assert_eq!(final_service.generations_published, final_class.generations_published);
    assert!(
        (!drift_enabled && retrain_every.is_none()) || final_service.generations_published >= 1,
        "the scenario must actually exercise retraining: {final_service:?}"
    );
}

/// Drift-triggered retraining: a shifted regime (stale y = 2x serving
/// y = 600 − 3x) drives drift events and drift-gated retrains through
/// both actions identically.
#[test]
fn drift_triggered_paths_are_bit_identical() {
    assert_equivalent(true, None, |x| 600.0 - 3.0 * x);
}

/// Periodic retraining with drift disabled: the schedule alone drives both
/// actions through the same retrain points.
#[test]
fn scheduled_paths_are_bit_identical() {
    assert_equivalent(false, Some(48), |x| 5.0 * x + 50.0);
}

/// Drift and schedule together, on a stream whose errors stay quiet: only
/// the schedule fires, identically.
#[test]
fn combined_quiet_paths_are_bit_identical() {
    assert_equivalent(true, Some(72), |x| 2.0 * x);
}

/// Fully frozen (drift disabled, no schedule): both stay on generation 0
/// with identical counters.
#[test]
fn frozen_paths_are_bit_identical() {
    assert_equivalent(false, None, |x| 600.0 - 3.0 * x);
}

/// The deprecated constructors delegate to the builders without changing
/// behaviour: same scenario as the drift-triggered suite, spawned through
/// the old entry points.
#[test]
#[allow(deprecated)]
fn deprecated_spawn_constructors_still_reproduce_the_builder_paths() {
    let class = ServiceClass::new("only");
    let truth: fn(f64) -> f64 = |x| 600.0 - 3.0 * x;

    let via_builder = AdaptiveService::builder(learner(), vec!["x".into()], initial_model(2.0))
        .config(config(true, None))
        .spawn();
    let via_spawn =
        AdaptiveService::spawn(learner(), vec!["x".into()], initial_model(2.0), config(true, None));
    let router_via_spawn = AdaptiveRouter::spawn(
        vec![(
            class.clone(),
            ClassSpec::builder(learner(), initial_model(2.0)).config(config(true, None)).build(),
        )],
        vec!["x".into()],
        RouterConfig::default(),
    );

    for seq in 0..8 {
        let b = batch(&class, seq, 24, truth);
        assert!(via_builder.bus().publish(b.clone()));
        assert!(via_spawn.bus().publish(b.clone()));
        assert!(router_via_spawn.bus().publish(b));
        assert!(via_builder.quiesce(Duration::from_secs(30)));
        assert!(via_spawn.quiesce(Duration::from_secs(30)));
        assert!(router_via_spawn.quiesce(Duration::from_secs(30)));
    }
    let a = via_builder.shutdown();
    let b = via_spawn.shutdown();
    let r = router_via_spawn.shutdown();
    let rc = r.class(&class).expect("registered");
    assert!(a.retrains >= 1, "the scenario must retrain: {a:?}");
    assert_eq!(a.retrains, b.retrains);
    assert_eq!(a.drift_events, b.drift_events);
    assert_eq!(a.generations_published, b.generations_published);
    assert_eq!(a.retrains, rc.retrains);
    assert_eq!(a.drift_events, rc.drift_events);
}

/// The service path still honours the default bus capacity constant the
/// old API exposed (a config knob the builder must not have silently
/// changed).
#[test]
fn default_bus_capacity_is_preserved() {
    let service = AdaptiveService::builder(learner(), vec!["x".into()], initial_model(1.0)).spawn();
    assert_eq!(service.bus().capacity(), DEFAULT_BUS_CAPACITY);
    service.shutdown();
}
