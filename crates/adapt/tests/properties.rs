//! Property-based guarantees of the bounded checkpoint bus — the
//! back-pressure contract a 10k-instance fleet relies on:
//!
//! 1. **bounded memory**: with a stalled consumer (never draining), the
//!    ring never holds more than `capacity` batches, whatever the publish
//!    pattern;
//! 2. **drop-oldest ordering**: a single overflowing source keeps exactly
//!    its most recent `capacity` batches, in publish order;
//! 3. **per-source fairness**: a light producer's batches survive a heavy
//!    neighbour's flood — sheds always come out of the heaviest source;
//! 4. **drain-after-disconnect**: batches queued before the last producer
//!    hangs up are still delivered, then the receiver sees the disconnect;
//! 5. **per-class shed attribution**: every dropped checkpoint is booked
//!    against the class of its batch, and the per-class books always sum
//!    to the fleet-wide total —
//!
//! plus the self-tuning [`QuantileAdaptive`] threshold policy's contract:
//! derived thresholds are always finite, clamped, monotone in the quantile
//! and insensitive to NaN/inf lacing, for any error stream.

use aging_adapt::{
    BusDisconnected, CheckpointBatch, CheckpointBus, LabelledCheckpoint, QuantileAdaptive,
    ServiceClass, ThresholdPolicy, Thresholds,
};
use proptest::prelude::*;
use std::time::Duration;

/// A one-checkpoint batch whose `ttf_secs` encodes a publish sequence
/// number, so ordering survives the trip through the ring.
fn tagged(source: &str, seq: u64, n_checkpoints: usize) -> CheckpointBatch {
    CheckpointBatch {
        source: source.into(),
        class: ServiceClass::default(),
        checkpoints: (0..n_checkpoints.max(1))
            .map(|i| LabelledCheckpoint::new(vec![i as f64], seq as f64, None))
            .collect(),
    }
}

fn seq_of(batch: &CheckpointBatch) -> u64 {
    batch.checkpoints[0].ttf_secs as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 1: a stalled retrainer (the receiver exists but never
    // drains) can never make the ring exceed its capacity, and the
    // queued/accepted/dropped accounting always balances.
    #[test]
    fn capacity_never_exceeded_under_stalled_consumer(
        capacity in 1usize..24,
        publishes in prop::collection::vec((0u8..4, 1usize..5), 1..150),
    ) {
        let (bus, _stalled_rx) = CheckpointBus::bounded(capacity);
        for (seq, (source, n)) in publishes.iter().enumerate() {
            prop_assert!(bus.publish(tagged(&format!("s{source}"), seq as u64, *n)));
            prop_assert!(
                bus.queued_batches() <= capacity,
                "ring grew past capacity {} (now {})",
                capacity,
                bus.queued_batches()
            );
            prop_assert_eq!(
                bus.enqueued_checkpoints() - bus.dropped_checkpoints(),
                bus.queued_checkpoints(),
                "accepted − dropped must equal queued while nothing drains"
            );
        }
        prop_assert_eq!(bus.capacity(), capacity);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 2: one source overflowing the ring keeps exactly the
    // most recent `capacity` batches, still in publish order.
    #[test]
    fn drop_oldest_keeps_the_most_recent_in_order(
        capacity in 1usize..16,
        total in 1usize..60,
    ) {
        let (bus, rx) = CheckpointBus::bounded(capacity);
        for seq in 0..total {
            bus.publish(tagged("solo", seq as u64, 1));
        }
        let kept: Vec<u64> = rx.drain().iter().map(seq_of).collect();
        let expect: Vec<u64> =
            (total.saturating_sub(capacity)..total).map(|s| s as u64).collect();
        prop_assert_eq!(kept, expect);
        prop_assert_eq!(bus.dropped_batches() as usize, total.saturating_sub(capacity));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 3: a light producer whose queue share stays below the
    // heavy one's is never the shed victim — its whole history survives a
    // flood 3× the ring size, in order.
    #[test]
    fn light_producer_survives_a_skewed_flood(
        capacity in 4usize..24,
        light_raw in 1usize..32,
        flood_factor in 2usize..4,
    ) {
        // Strictly fewer light batches than half the ring: the heavy
        // source always holds the (strict) majority once the ring fills,
        // so every shed hits the heavy source.
        let light_total = 1 + light_raw % (capacity / 2).max(1);
        prop_assert!(light_total <= capacity / 2);
        let (bus, rx) = CheckpointBus::bounded(capacity);
        for seq in 0..light_total {
            bus.publish(tagged("light", seq as u64, 1));
        }
        for seq in 0..capacity * flood_factor {
            bus.publish(tagged("heavy", (1000 + seq) as u64, 1));
        }
        let got = rx.drain();
        let light_kept: Vec<u64> =
            got.iter().filter(|b| b.source == "light").map(seq_of).collect();
        let expect: Vec<u64> = (0..light_total as u64).collect();
        prop_assert_eq!(light_kept, expect, "the light source's history must survive");
        prop_assert_eq!(got.len(), capacity, "the ring was full when drained");
        // Everything shed was the heavy source's, and its survivors are
        // its most recent batches, in order.
        let heavy_kept: Vec<u64> =
            got.iter().filter(|b| b.source == "heavy").map(seq_of).collect();
        let heavy_total = capacity * flood_factor;
        let expect_heavy: Vec<u64> = (0..heavy_total)
            .skip(heavy_total - (capacity - light_total))
            .map(|s| (1000 + s) as u64)
            .collect();
        prop_assert_eq!(heavy_kept, expect_heavy);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 4: dropping every producer loses nothing that was
    // queued — the receiver drains all of it, then sees the disconnect.
    #[test]
    fn queued_batches_survive_producer_disconnect(
        capacity in 1usize..16,
        queued in 1usize..16,
    ) {
        let queued = queued.min(capacity);
        let (bus, rx) = CheckpointBus::bounded(capacity);
        let clone = bus.clone();
        for seq in 0..queued {
            clone.publish(tagged("s", seq as u64, 2));
        }
        drop(bus);
        drop(clone);
        for seq in 0..queued {
            let got = rx.recv_timeout(Duration::from_millis(10)).unwrap();
            let batch = got.expect("queued batch must still be delivered");
            prop_assert_eq!(seq_of(&batch), seq as u64);
        }
        prop_assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(BusDisconnected)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 5: whatever mix of classes and sources floods the ring,
    /// the per-class shed attribution books every dropped checkpoint
    /// against the class of the batch it rode in on, and the per-class
    /// books sum exactly to the fleet-wide total. (The `///` comments in
    /// this file also double as a live regression check for the vendored
    /// `proptest!` doc-comment fix.)
    #[test]
    fn per_class_shed_attribution_balances(
        capacity in 1usize..12,
        publishes in prop::collection::vec((0u8..3, 0u8..3, 1usize..4), 1..120),
    ) {
        let (bus, _stalled_rx) = CheckpointBus::bounded(capacity);
        let class_of = |c: u8| ServiceClass::new(format!("class-{c}"));
        for (seq, (class, source, n)) in publishes.iter().enumerate() {
            let mut batch = tagged(&format!("s{source}"), seq as u64, *n);
            batch.class = class_of(*class);
            prop_assert!(bus.publish(batch));
            let by_class = bus.dropped_checkpoints_by_class();
            prop_assert_eq!(
                by_class.iter().map(|(_, n)| n).sum::<u64>(),
                bus.dropped_checkpoints(),
                "per-class attribution must sum to the total at every step"
            );
        }
        for c in 0u8..3 {
            prop_assert_eq!(
                bus.dropped_checkpoints_for(&class_of(c)),
                bus.dropped_checkpoints_by_class()
                    .into_iter()
                    .find(|(class, _)| class == &class_of(c))
                    .map(|(_, n)| n)
                    .unwrap_or(0)
            );
        }
        // Nothing was invented: accepted − dropped == still queued.
        prop_assert_eq!(
            bus.enqueued_checkpoints() - bus.dropped_checkpoints(),
            bus.queued_checkpoints()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 6: the queued-checkpoint depth gauge conserves exactly
    /// under ANY interleaving of publishes (each of which may shed) and
    /// pops: `queued == Σ pushed − Σ popped − Σ shed` at every step, and
    /// lands on exactly zero after a final drain. (Regression for the raw
    /// `u64 -=` accounting that could wrap the gauge on a shed/pop
    /// interleaving.)
    #[test]
    fn queued_gauge_conserves_under_interleaved_shed_and_pop(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u8..5, 0u8..4, 1usize..5), 1..200),
    ) {
        let (bus, rx) = CheckpointBus::bounded(capacity);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for (seq, (op, source, n)) in ops.iter().enumerate() {
            if *op == 0 {
                // Pop one batch — may find the ring empty.
                if let Ok(Some(batch)) = rx.recv_timeout(Duration::from_millis(0)) {
                    popped += batch.checkpoints.len() as u64;
                }
            } else {
                prop_assert!(bus.publish(tagged(&format!("s{source}"), seq as u64, *n)));
                pushed += *n as u64;
            }
            let shed = bus.dropped_checkpoints();
            prop_assert!(popped + shed <= pushed, "books overdrawn: {popped}+{shed} > {pushed}");
            prop_assert_eq!(
                bus.queued_checkpoints(),
                pushed - popped - shed,
                "queued == Σ pushed − Σ popped − Σ shed must hold at every step"
            );
        }
        for batch in rx.drain() {
            popped += batch.checkpoints.len() as u64;
        }
        prop_assert_eq!(bus.queued_checkpoints(), 0, "a full drain must land the gauge on zero");
        prop_assert_eq!(pushed, popped + bus.dropped_checkpoints());
    }
}

fn current_thresholds() -> Thresholds {
    Thresholds { error_threshold_secs: 900.0, rejuvenation_threshold_secs: None }
}

/// Interleaves NaN/inf poison into a finite error stream at positions
/// chosen by the lacing mask.
fn lace(errors: &[f64], mask: &[u8]) -> Vec<f64> {
    let mut out = Vec::with_capacity(errors.len() * 2);
    for (i, &e) in errors.iter().enumerate() {
        out.push(e);
        match mask.get(i % mask.len().max(1)) {
            Some(1) => out.push(f64::NAN),
            Some(2) => out.push(f64::INFINITY),
            Some(3) => out.push(f64::NEG_INFINITY),
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the error stream — including NaN/inf lacing — a derived
    /// threshold pair is always finite and inside the clamp interval.
    #[test]
    fn quantile_thresholds_stay_finite_and_clamped(
        errors in prop::collection::vec(0.0f64..1e7, 1..80),
        mask in prop::collection::vec(0u8..4, 1..6),
        q in 0.0f64..1.0,
    ) {
        let policy = QuantileAdaptive {
            drift_quantile: q,
            min_samples: 1,
            ..Default::default()
        };
        let laced = lace(&errors, &mask);
        if let Some(t) = policy.on_publish(&laced, &current_thresholds()) {
            prop_assert!(t.error_threshold_secs.is_finite());
            prop_assert!(
                (policy.min_threshold_secs..=policy.max_threshold_secs)
                    .contains(&t.error_threshold_secs),
                "drift level {} escaped the clamp",
                t.error_threshold_secs
            );
            let r = t.rejuvenation_threshold_secs.expect("derived together");
            prop_assert!(
                (policy.min_threshold_secs..=policy.max_rejuvenation_threshold_secs)
                    .contains(&r),
                "rejuvenation trigger {} escaped its clamp",
                r
            );
        }
    }

    /// The derived drift level is monotone in the anchor quantile: a
    /// higher quantile of the same window never yields a smaller level.
    #[test]
    fn quantile_thresholds_are_monotone_in_the_quantile(
        errors in prop::collection::vec(0.0f64..1e6, 4..64),
        q_lo in 0.0f64..1.0,
        q_hi in 0.0f64..1.0,
    ) {
        let (q_lo, q_hi) = if q_lo <= q_hi { (q_lo, q_hi) } else { (q_hi, q_lo) };
        let at = |q: f64| {
            QuantileAdaptive { drift_quantile: q, min_samples: 1, ..Default::default() }
                .on_publish(&errors, &current_thresholds())
                .expect("enough finite samples")
                .error_threshold_secs
        };
        prop_assert!(
            at(q_lo) <= at(q_hi),
            "quantile {} gave a higher level than quantile {}",
            q_lo,
            q_hi
        );
    }

    /// On a constant error stream the derived thresholds are exactly the
    /// clamped closed form — NaN lacing changes nothing — and re-deriving
    /// from the already-derived state reports "no change" (idempotence:
    /// a constant regime never oscillates its thresholds).
    #[test]
    fn quantile_thresholds_are_idempotent_on_constant_streams(
        level in 1.0f64..1e6,
        n in 4usize..64,
        mask in prop::collection::vec(0u8..4, 1..6),
    ) {
        let policy = QuantileAdaptive { min_samples: 2, ..Default::default() };
        let stream = lace(&vec![level; n], &mask);
        let t = policy
            .on_publish(&stream, &current_thresholds())
            .expect("enough finite samples");
        let clamp = |x: f64| x.clamp(policy.min_threshold_secs, policy.max_threshold_secs);
        let clamp_rejuvenation =
            |x: f64| x.clamp(policy.min_threshold_secs, policy.max_rejuvenation_threshold_secs);
        prop_assert_eq!(t.error_threshold_secs, clamp(policy.drift_margin * level));
        prop_assert_eq!(
            t.rejuvenation_threshold_secs,
            Some(clamp_rejuvenation(policy.rejuvenation_slack_secs + level))
        );
        prop_assert_eq!(policy.on_publish(&stream, &t), None, "must be idempotent");
    }
}

/// The acceptance scenario spelled out: a retrainer that stalls forever
/// while 8 shards keep publishing for a long time leaves the bus holding
/// only `capacity` batches — memory stays bounded, the newest data per
/// source is what survives.
#[test]
fn stalled_retrainer_cannot_grow_memory() {
    let capacity = 32;
    let (bus, _stalled_rx) = CheckpointBus::bounded(capacity);
    for round in 0..500u64 {
        for shard in 0..8 {
            bus.publish(tagged(&format!("shard-{shard}"), round, 3));
        }
        assert!(bus.queued_batches() <= capacity);
    }
    assert_eq!(bus.queued_batches(), capacity);
    assert_eq!(bus.enqueued_checkpoints(), 500 * 8 * 3);
    assert_eq!(bus.dropped_checkpoints(), (500 * 8 - capacity as u64) * 3);
    // Fairness at equilibrium: no shard monopolises the ring — each holds
    // exactly its share.
    let queued = bus.queued_checkpoints();
    assert_eq!(queued, capacity as u64 * 3);
}

/// Class-discovery signatures: whatever garbage the labelled stream
/// carries — NaN labels, ±inf predictions, ragged or poisoned feature
/// rows — a produced aging-signature vector is always fully finite, and
/// identical to the signature of the same stream with the garbage
/// removed. (ISSUE 5: NaN/edge-case hardening across the stats and
/// learner layers.)
mod signature_properties {
    use aging_adapt::discovery::{SignatureAccumulator, SignatureConfig, SIGNATURE_DIM};
    use aging_adapt::LabelledCheckpoint;
    use proptest::prelude::*;

    fn feature_names() -> Vec<String> {
        vec!["sys_mem_used".into(), "num_threads".into(), "throughput".into()]
    }

    fn poison(kind: u8) -> f64 {
        match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Signatures are finite under arbitrary NaN/inf lacing.
        #[test]
        fn signatures_are_finite_under_nan_laced_streams(
            errors in prop::collection::vec((0.0..20_000.0f64, 0u8..2, 0u8..3), 12..120),
            poison_rows in 0u8..2,
        ) {
            let config = SignatureConfig::default();
            let mut acc = SignatureAccumulator::new(config, &feature_names());
            let mut clean = SignatureAccumulator::new(config, &feature_names());
            let poison_rows = poison_rows == 1;
            let mut base = 1_000.0;
            for (i, &(err, poisoned, kind)) in errors.iter().enumerate() {
                let poisoned = poisoned == 1;
                base += 7.0;
                let row = vec![base, 40.0, 900.0];
                let mut cp = LabelledCheckpoint::new(row.clone(), 600.0, Some(600.0 + err));
                if poisoned {
                    // Poison the label, the prediction or a feature.
                    match kind {
                        0 => cp.ttf_secs = poison(kind),
                        1 => cp.predicted_ttf_secs = Some(poison(kind)),
                        _ => {
                            if poison_rows {
                                cp.features[i % 3] = poison(kind);
                            }
                        }
                    }
                }
                acc.observe(&cp);
                if !poisoned || (kind == 2 && !poison_rows) {
                    clean.observe(&LabelledCheckpoint::new(row, 600.0, Some(600.0 + err)));
                }
                if i % 16 == 15 {
                    acc.epoch_boundary();
                    clean.epoch_boundary();
                }
            }
            if let Some(sig) = acc.signature() {
                prop_assert_eq!(sig.len(), SIGNATURE_DIM);
                for (i, v) in sig.iter().enumerate() {
                    prop_assert!(v.is_finite(), "component {i} not finite: {v}");
                }
            }
        }

        /// An entirely poisoned stream never produces a signature at all
        /// (no finite errors ⇒ below the readiness gate), and never
        /// panics.
        #[test]
        fn fully_poisoned_stream_yields_no_signature(
            kinds in prop::collection::vec(0u8..3, 1..200),
        ) {
            let mut acc = SignatureAccumulator::new(SignatureConfig::default(), &feature_names());
            for &kind in &kinds {
                let cp = LabelledCheckpoint::new(
                    vec![poison(kind); 3],
                    poison(kind),
                    Some(poison(kind.wrapping_add(1) % 3)),
                );
                acc.observe(&cp);
            }
            prop_assert_eq!(acc.observed_errors(), 0);
            prop_assert!(acc.signature().is_none());
        }
    }
}
