//! Property-based guarantees of the bounded checkpoint bus — the
//! back-pressure contract a 10k-instance fleet relies on:
//!
//! 1. **bounded memory**: with a stalled consumer (never draining), the
//!    ring never holds more than `capacity` batches, whatever the publish
//!    pattern;
//! 2. **drop-oldest ordering**: a single overflowing source keeps exactly
//!    its most recent `capacity` batches, in publish order;
//! 3. **per-source fairness**: a light producer's batches survive a heavy
//!    neighbour's flood — sheds always come out of the heaviest source;
//! 4. **drain-after-disconnect**: batches queued before the last producer
//!    hangs up are still delivered, then the receiver sees the disconnect.

use aging_adapt::{
    BusDisconnected, CheckpointBatch, CheckpointBus, LabelledCheckpoint, ServiceClass,
};
use proptest::prelude::*;
use std::time::Duration;

/// A one-checkpoint batch whose `ttf_secs` encodes a publish sequence
/// number, so ordering survives the trip through the ring.
fn tagged(source: &str, seq: u64, n_checkpoints: usize) -> CheckpointBatch {
    CheckpointBatch {
        source: source.into(),
        class: ServiceClass::default(),
        checkpoints: (0..n_checkpoints.max(1))
            .map(|i| LabelledCheckpoint {
                features: vec![i as f64],
                ttf_secs: seq as f64,
                predicted_ttf_secs: None,
            })
            .collect(),
    }
}

fn seq_of(batch: &CheckpointBatch) -> u64 {
    batch.checkpoints[0].ttf_secs as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 1: a stalled retrainer (the receiver exists but never
    // drains) can never make the ring exceed its capacity, and the
    // queued/accepted/dropped accounting always balances.
    #[test]
    fn capacity_never_exceeded_under_stalled_consumer(
        capacity in 1usize..24,
        publishes in prop::collection::vec((0u8..4, 1usize..5), 1..150),
    ) {
        let (bus, _stalled_rx) = CheckpointBus::bounded(capacity);
        for (seq, (source, n)) in publishes.iter().enumerate() {
            prop_assert!(bus.publish(tagged(&format!("s{source}"), seq as u64, *n)));
            prop_assert!(
                bus.queued_batches() <= capacity,
                "ring grew past capacity {} (now {})",
                capacity,
                bus.queued_batches()
            );
            prop_assert_eq!(
                bus.enqueued_checkpoints() - bus.dropped_checkpoints(),
                bus.queued_checkpoints(),
                "accepted − dropped must equal queued while nothing drains"
            );
        }
        prop_assert_eq!(bus.capacity(), capacity);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 2: one source overflowing the ring keeps exactly the
    // most recent `capacity` batches, still in publish order.
    #[test]
    fn drop_oldest_keeps_the_most_recent_in_order(
        capacity in 1usize..16,
        total in 1usize..60,
    ) {
        let (bus, rx) = CheckpointBus::bounded(capacity);
        for seq in 0..total {
            bus.publish(tagged("solo", seq as u64, 1));
        }
        let kept: Vec<u64> = rx.drain().iter().map(seq_of).collect();
        let expect: Vec<u64> =
            (total.saturating_sub(capacity)..total).map(|s| s as u64).collect();
        prop_assert_eq!(kept, expect);
        prop_assert_eq!(bus.dropped_batches() as usize, total.saturating_sub(capacity));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 3: a light producer whose queue share stays below the
    // heavy one's is never the shed victim — its whole history survives a
    // flood 3× the ring size, in order.
    #[test]
    fn light_producer_survives_a_skewed_flood(
        capacity in 4usize..24,
        light_raw in 1usize..32,
        flood_factor in 2usize..4,
    ) {
        // Strictly fewer light batches than half the ring: the heavy
        // source always holds the (strict) majority once the ring fills,
        // so every shed hits the heavy source.
        let light_total = 1 + light_raw % (capacity / 2).max(1);
        prop_assert!(light_total <= capacity / 2);
        let (bus, rx) = CheckpointBus::bounded(capacity);
        for seq in 0..light_total {
            bus.publish(tagged("light", seq as u64, 1));
        }
        for seq in 0..capacity * flood_factor {
            bus.publish(tagged("heavy", (1000 + seq) as u64, 1));
        }
        let got = rx.drain();
        let light_kept: Vec<u64> =
            got.iter().filter(|b| b.source == "light").map(seq_of).collect();
        let expect: Vec<u64> = (0..light_total as u64).collect();
        prop_assert_eq!(light_kept, expect, "the light source's history must survive");
        prop_assert_eq!(got.len(), capacity, "the ring was full when drained");
        // Everything shed was the heavy source's, and its survivors are
        // its most recent batches, in order.
        let heavy_kept: Vec<u64> =
            got.iter().filter(|b| b.source == "heavy").map(seq_of).collect();
        let heavy_total = capacity * flood_factor;
        let expect_heavy: Vec<u64> = (0..heavy_total)
            .skip(heavy_total - (capacity - light_total))
            .map(|s| (1000 + s) as u64)
            .collect();
        prop_assert_eq!(heavy_kept, expect_heavy);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 4: dropping every producer loses nothing that was
    // queued — the receiver drains all of it, then sees the disconnect.
    #[test]
    fn queued_batches_survive_producer_disconnect(
        capacity in 1usize..16,
        queued in 1usize..16,
    ) {
        let queued = queued.min(capacity);
        let (bus, rx) = CheckpointBus::bounded(capacity);
        let clone = bus.clone();
        for seq in 0..queued {
            clone.publish(tagged("s", seq as u64, 2));
        }
        drop(bus);
        drop(clone);
        for seq in 0..queued {
            let got = rx.recv_timeout(Duration::from_millis(10)).unwrap();
            let batch = got.expect("queued batch must still be delivered");
            prop_assert_eq!(seq_of(&batch), seq as u64);
        }
        prop_assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(BusDisconnected)
        );
    }
}

/// The acceptance scenario spelled out: a retrainer that stalls forever
/// while 8 shards keep publishing for a long time leaves the bus holding
/// only `capacity` batches — memory stays bounded, the newest data per
/// source is what survives.
#[test]
fn stalled_retrainer_cannot_grow_memory() {
    let capacity = 32;
    let (bus, _stalled_rx) = CheckpointBus::bounded(capacity);
    for round in 0..500u64 {
        for shard in 0..8 {
            bus.publish(tagged(&format!("shard-{shard}"), round, 3));
        }
        assert!(bus.queued_batches() <= capacity);
    }
    assert_eq!(bus.queued_batches(), capacity);
    assert_eq!(bus.enqueued_checkpoints(), 500 * 8 * 3);
    assert_eq!(bus.dropped_checkpoints(), (500 * 8 - capacity as u64) * 3);
    // Fairness at equilibrium: no shard monopolises the ring — each holds
    // exactly its share.
    let queued = bus.queued_checkpoints();
    assert_eq!(queued, capacity as u64 * 3);
}
