//! The model service: generation-counted hot model swap, and the
//! background retrainer that feeds it.

use crate::bus::{BusReceiver, CheckpointBatch, CheckpointBus};
use crate::drift::{DriftConfig, DriftMonitor};
use aging_ml::online::OnlineRegressor;
use aging_ml::{DynLearner, Regressor};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A pinned view of the serving model: the model `Arc` plus the generation
/// it belongs to. Consumers pin one snapshot per unit of work (the fleet
/// pins per epoch) so a mid-batch publish can never mix two models inside
/// one batch.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Generation number; the initial model is generation 0.
    pub generation: u64,
    /// The serving model.
    pub model: Arc<dyn Regressor>,
}

/// Owns successive model generations behind an `Arc<dyn Regressor>`.
///
/// Readers poll [`ModelService::generation`] (one atomic load) and only
/// take the read lock to re-[`snapshot`](ModelService::snapshot) when the
/// number moved — [`ModelService::refresh`] packages that pattern as one
/// call. Publishing is wait-free for readers holding an old snapshot: the
/// swap replaces the `Arc`, it never blocks in-flight predictions.
///
/// # Consistency
///
/// The `(generation, model)` pair lives in **one** lock-protected slot and
/// every read of it happens under a single lock acquisition
/// ([`ModelService::snapshot`]) — a reader can never observe generation
/// `n` paired with the model of generation `m ≠ n`. The separate atomic
/// counter is a fast-path *hint* only; it is updated while the write lock
/// is still held, so it never runs ahead of what `snapshot` can return.
/// The publish/snapshot stress tests hammer exactly this pairing from
/// concurrent threads.
#[derive(Debug)]
pub struct ModelService {
    slot: RwLock<ModelSnapshot>,
    generation: AtomicU64,
}

impl ModelService {
    /// Creates a service serving `initial` as generation 0.
    pub fn new(initial: Arc<dyn Regressor>) -> Self {
        ModelService {
            slot: RwLock::new(ModelSnapshot { generation: 0, model: initial }),
            generation: AtomicU64::new(0),
        }
    }

    /// The current generation number (cheap: one atomic load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A consistent `(generation, model)` pair, read under one lock
    /// acquisition.
    pub fn snapshot(&self) -> ModelSnapshot {
        self.slot.read().expect("model slot poisoned").clone()
    }

    /// Re-pins `pin` when a newer generation has been published; returns
    /// whether the pin moved. The epoch-boundary idiom of the fleet
    /// workers: one atomic load when nothing changed, one consistent
    /// snapshot when something did.
    pub fn refresh(&self, pin: &mut ModelSnapshot) -> bool {
        if self.generation() == pin.generation {
            return false;
        }
        *pin = self.snapshot();
        true
    }

    /// Publishes a new model generation; returns its number.
    pub fn publish(&self, model: Arc<dyn Regressor>) -> u64 {
        let mut slot = self.slot.write().expect("model slot poisoned");
        let generation = slot.generation + 1;
        *slot = ModelSnapshot { generation, model };
        // Publish the hint while still holding the write lock: a reader
        // that sees the new number is guaranteed to find (at least) the
        // matching pair in the slot.
        self.generation.store(generation, Ordering::Release);
        generation
    }
}

/// Configuration of the adaptation service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Drift detection tuning (see [`DriftConfig`]); `enabled: false`
    /// freezes the service at generation 0.
    pub drift: DriftConfig,
    /// Capacity of the sliding training buffer (labelled checkpoints;
    /// oldest evicted first).
    pub buffer_capacity: usize,
    /// A drift trigger is only *honoured* once at least this many labelled
    /// checkpoints are buffered — retraining on a handful of rows would
    /// publish a worse model than the one that drifted. A trigger that
    /// arrives earlier stays pending and fires as soon as the buffer
    /// reaches this size. Must not exceed `buffer_capacity` (the FIFO
    /// could never satisfy it).
    pub min_buffer_to_retrain: usize,
    /// Optionally also retrain every `n` ingested checkpoints regardless of
    /// drift (the paper's plain periodic adaptation); `None` retrains on
    /// drift only.
    pub retrain_every: Option<usize>,
    /// Capacity (in batches) of the bounded ingestion ring the service
    /// creates — the back-pressure bound under a stalled retrainer. See
    /// [`crate::CheckpointBus::bounded`] for the drop-oldest semantics.
    pub bus_capacity: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            drift: DriftConfig::default(),
            buffer_capacity: 4096,
            min_buffer_to_retrain: 200,
            retrain_every: None,
            bus_capacity: crate::DEFAULT_BUS_CAPACITY,
        }
    }
}

impl AdaptConfig {
    /// Panics with a message when an adaptation parameter (drift tuning,
    /// buffer sizing) is degenerate. `bus_capacity` is deliberately *not*
    /// checked here: the per-class router ignores it (its ring is shared),
    /// so only consumers that actually build a ring from this config
    /// validate it.
    pub(crate) fn validate_adaptation(&self) {
        assert!(self.buffer_capacity > 0, "buffer capacity must be positive");
        assert!(
            self.min_buffer_to_retrain <= self.buffer_capacity,
            "min_buffer_to_retrain ({}) exceeds buffer_capacity ({}): the sliding buffer \
             could never reach the retrain gate and every drift trigger would be swallowed",
            self.min_buffer_to_retrain,
            self.buffer_capacity
        );
        self.drift.validate();
    }

    /// Full validation for consumers that also size their ingestion ring
    /// from this config ([`AdaptiveService::spawn`]).
    pub(crate) fn validate(&self) {
        self.validate_adaptation();
        assert!(self.bus_capacity > 0, "bus capacity must be positive");
    }
}

/// Counters describing what the adaptation service has done so far.
///
/// All fields are monotone except `error_ewma_secs` and `buffered`; the
/// struct is safe to snapshot at any time while the service runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationStats {
    /// Labelled checkpoints ingested from the bus.
    pub ingested_checkpoints: u64,
    /// Drift events the monitor fired.
    pub drift_events: u64,
    /// Successful retrains.
    pub retrains: u64,
    /// Retrains that failed (e.g. a degenerate buffer); the previous
    /// generation keeps serving.
    pub failed_retrains: u64,
    /// Model generations published (== successful retrains).
    pub generations_published: u64,
    /// Current serving generation.
    pub generation: u64,
    /// Labelled checkpoints currently in the sliding buffer.
    pub buffered: u64,
    /// Checkpoints shed by the bounded ingestion ring's drop-oldest policy
    /// (a stalled or slow retrainer sheds history instead of growing
    /// memory). For class-routed runs the drop happens before routing, so
    /// the total lives on `RouterStats` and this stays 0 per class.
    pub dropped_checkpoints: u64,
    /// Current smoothed absolute TTF error, seconds (0 before the first
    /// labelled prediction arrives).
    pub error_ewma_secs: f64,
}

#[derive(Debug, Default)]
struct SharedCounters {
    ingested: AtomicU64,
    drift_events: AtomicU64,
    retrains: AtomicU64,
    failed_retrains: AtomicU64,
    buffered: AtomicU64,
    error_ewma_bits: AtomicU64,
}

/// The drift-triggered online retraining service.
///
/// Owns a [`ModelService`] (the serving side) and a background retrainer
/// thread (the learning side), connected to producers by a
/// [`CheckpointBus`]. Labelled checkpoints stream in; the retrainer feeds
/// them to an [`OnlineRegressor`] sliding buffer and a [`DriftMonitor`];
/// when drift fires (or a periodic schedule comes due) it refits the
/// learner on the buffer and publishes the result as a new generation —
/// all without ever blocking the threads that serve predictions.
///
/// # Example
///
/// ```
/// use aging_adapt::{AdaptConfig, AdaptiveService, CheckpointBatch, LabelledCheckpoint};
/// use aging_ml::linreg::LinRegLearner;
/// use aging_ml::{DynLearner, Learner, Regressor};
/// use std::sync::Arc;
///
/// // Initial model: y = x fitted on a tiny dataset.
/// let mut ds = aging_dataset::Dataset::new(vec!["x".into()], "y");
/// for i in 0..20 {
///     ds.push_row(vec![i as f64], i as f64)?;
/// }
/// let initial: Arc<dyn Regressor> = Arc::from(LinRegLearner::default().fit_boxed(&ds)?);
/// let learner: Arc<dyn DynLearner> = Arc::new(LinRegLearner::default());
/// let service = AdaptiveService::spawn(
///     learner,
///     vec!["x".into()],
///     initial,
///     AdaptConfig::default(),
/// );
/// assert_eq!(service.model_service().generation(), 0);
/// let stats = service.shutdown();
/// assert_eq!(stats.generations_published, 0);
/// # Ok::<(), aging_ml::MlError>(())
/// ```
#[derive(Debug)]
pub struct AdaptiveService {
    models: Arc<ModelService>,
    bus: CheckpointBus,
    counters: Arc<SharedCounters>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl AdaptiveService {
    /// Spawns the retrainer thread and returns the running service.
    ///
    /// `feature_names` are the attribute names of the rows producers will
    /// publish (the feature set's variables, in order); `initial` serves as
    /// generation 0 until the first retrain.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (zero buffer capacity, bad drift
    /// parameters).
    pub fn spawn(
        learner: Arc<dyn DynLearner>,
        feature_names: Vec<String>,
        initial: Arc<dyn Regressor>,
        config: AdaptConfig,
    ) -> Self {
        config.validate();
        let models = Arc::new(ModelService::new(initial));
        let (bus, rx) = CheckpointBus::bounded(config.bus_capacity);
        let counters = Arc::new(SharedCounters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let models = Arc::clone(&models);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                retrainer(learner, feature_names, config, rx, models, counters, stop)
            })
        };
        AdaptiveService { models, bus, counters, stop, worker: Some(worker) }
    }

    /// The serving side: snapshot/pin models, poll generations.
    pub fn model_service(&self) -> &ModelService {
        &self.models
    }

    /// A shared handle to the serving side (for consumers that outlive the
    /// service's borrow).
    pub fn model_service_arc(&self) -> Arc<ModelService> {
        Arc::clone(&self.models)
    }

    /// A producer handle on the ingestion bus (clone freely).
    pub fn bus(&self) -> CheckpointBus {
        self.bus.clone()
    }

    /// Current counters; safe to call at any time.
    pub fn stats(&self) -> AdaptationStats {
        AdaptationStats {
            ingested_checkpoints: self.counters.ingested.load(Ordering::Relaxed),
            drift_events: self.counters.drift_events.load(Ordering::Relaxed),
            retrains: self.counters.retrains.load(Ordering::Relaxed),
            failed_retrains: self.counters.failed_retrains.load(Ordering::Relaxed),
            generations_published: self.models.generation(),
            generation: self.models.generation(),
            buffered: self.counters.buffered.load(Ordering::Relaxed),
            dropped_checkpoints: self.bus.dropped_checkpoints(),
            error_ewma_secs: f64::from_bits(self.counters.error_ewma_bits.load(Ordering::Relaxed)),
        }
    }

    /// Waits for the retrainer to drain the bus: blocks until every
    /// checkpoint published *before* this call has been ingested or shed
    /// by the bounded ring (bounded by `timeout`). Returns `true` when the
    /// bus drained in time.
    ///
    /// Only meant for deterministic tests and examples — production
    /// callers never need to wait on the learning side.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Shed checkpoints will never be ingested; the ring keeps
            // counting them, so re-resolve the target every pass. `dropped`
            // is read BEFORE `enqueued` so a drop racing in between makes
            // the target conservative (wait longer), never premature.
            let dropped = self.bus.dropped_checkpoints();
            let target = self.bus.enqueued_checkpoints().saturating_sub(dropped);
            if self.counters.ingested.load(Ordering::Relaxed) >= target {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the retrainer, joins it and returns the final stats.
    ///
    /// Every batch queued on the bus before the call is still ingested
    /// before the retrainer exits; batches published afterwards (by
    /// surviving producer clones) go nowhere, which those producers see as
    /// `publish` returning `false`.
    pub fn shutdown(mut self) -> AdaptationStats {
        self.join_worker()
    }

    fn join_worker(&mut self) -> AdaptationStats {
        self.stop.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for AdaptiveService {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.join_worker();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn retrainer(
    learner: Arc<dyn DynLearner>,
    feature_names: Vec<String>,
    config: AdaptConfig,
    rx: BusReceiver,
    models: Arc<ModelService>,
    counters: Arc<SharedCounters>,
    stop: Arc<AtomicBool>,
) {
    let mut online = OnlineRegressor::new(
        learner,
        feature_names,
        "time_to_failure",
        config.buffer_capacity,
        // Periodic retraining is handled explicitly below so drift and
        // schedule can share the min-buffer gate; the wrapper's own
        // trigger is parked out of reach.
        usize::MAX,
    )
    .expect("positive capacity and interval validated above");
    let mut monitor = DriftMonitor::new(config.drift);
    let mut since_scheduled: usize = 0;
    // Sticky across batches: a drift event that fires while the buffer is
    // still below the retrain gate must not be forgotten — it stays
    // pending and the retrain happens as soon as enough labelled data has
    // accumulated.
    let mut retrain_due = false;

    let mut process = |batch: CheckpointBatch| {
        for cp in batch.checkpoints {
            if let Some(err) = cp.abs_error_secs() {
                if monitor.observe(err).is_some() {
                    counters.drift_events.fetch_add(1, Ordering::Relaxed);
                    retrain_due = true;
                }
                if let Some(ewma) = monitor.error_ewma_secs() {
                    counters.error_ewma_bits.store(ewma.to_bits(), Ordering::Relaxed);
                }
            }
            if online.observe(cp.features, cp.ttf_secs).is_ok() {
                counters.buffered.store(online.buffered() as u64, Ordering::Relaxed);
            }
            counters.ingested.fetch_add(1, Ordering::Relaxed);
            since_scheduled += 1;
            // The periodic schedule is independent of the drift switch:
            // `retrain_every` with drift disabled is plain periodic
            // adaptation, drift without a schedule is event-driven only.
            if config.retrain_every.is_some_and(|every| since_scheduled >= every) {
                retrain_due = true;
            }
        }
        if retrain_due && online.buffered() >= config.min_buffer_to_retrain {
            retrain_due = false;
            since_scheduled = 0;
            match online.retrain() {
                Ok(()) => {
                    let model = online.model().expect("retrain just fitted a model").clone();
                    models.publish(model);
                    counters.retrains.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    counters.failed_retrains.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    };

    loop {
        if stop.load(Ordering::Acquire) {
            // Shutdown: drain whatever was queued before the flag, then
            // exit — queued work is never thrown away.
            for batch in rx.drain() {
                process(batch);
            }
            return;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(batch)) => process(batch),
            Ok(None) => {}
            // All producers hung up and the queue is drained.
            Err(crate::BusDisconnected) => return,
        }
    }
}
