//! The model service: generation-counted hot model swap, and the
//! background retrainer that feeds it — a thin wrapper around the shared
//! [`AdaptationPipeline`] with a synchronous in-thread
//! [`RetrainAction`](crate::RetrainAction).

use crate::bus::{BusReceiver, CheckpointBus, ServiceClass};
use crate::drift::DriftConfig;
use crate::pipeline::{
    AdaptationPipeline, PipelineCounters, PipelineInstruments, RetrainAction, RetrainDisposition,
};
use crate::policy::{FixedThresholds, ThresholdPolicy, Thresholds};
use aging_journal::{Digest64, Journal};
use aging_ml::online::OnlineRegressor;
use aging_ml::{DynLearner, Regressor};
use aging_obs::{
    trace_of, EventId, EventKind, EventScope, FlightRecorder, HistogramHandle, Recorder, Registry,
    TraceHandle, Unit,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pinned view of the serving model: the model `Arc` plus the generation
/// it belongs to. Consumers pin one snapshot per unit of work (the fleet
/// pins per epoch) so a mid-batch publish can never mix two models inside
/// one batch.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Generation number; the initial model is generation 0.
    pub generation: u64,
    /// The serving model.
    pub model: Arc<dyn Regressor>,
}

/// Owns successive model generations behind an `Arc<dyn Regressor>`.
///
/// Readers poll [`ModelService::generation`] (one atomic load) and only
/// take the read lock to re-[`snapshot`](ModelService::snapshot) when the
/// number moved — [`ModelService::refresh`] packages that pattern as one
/// call. Publishing is wait-free for readers holding an old snapshot: the
/// swap replaces the `Arc`, it never blocks in-flight predictions.
///
/// Besides models, the service carries the **effective rejuvenation
/// threshold** ([`ModelService::rejuvenation_threshold_secs`]): a
/// self-tuning [`ThresholdPolicy`] publishes its derived predictive
/// threshold here alongside the generations, and the fleet engine re-reads
/// it at every epoch boundary — `None` (the fixed-policy state) leaves
/// each instance's configured threshold untouched.
///
/// # Consistency
///
/// The `(generation, model)` pair lives in **one** lock-protected slot and
/// every read of it happens under a single lock acquisition
/// ([`ModelService::snapshot`]) — a reader can never observe generation
/// `n` paired with the model of generation `m ≠ n`. The separate atomic
/// counter is a fast-path *hint* only; it is updated while the write lock
/// is still held, so it never runs ahead of what `snapshot` can return.
/// The publish/snapshot stress tests hammer exactly this pairing from
/// concurrent threads.
#[derive(Debug)]
pub struct ModelService {
    slot: RwLock<ModelSnapshot>,
    generation: AtomicU64,
    /// Bits of the effective rejuvenation threshold; NaN bits mean "no
    /// override" (readers see `None`).
    rejuvenation_threshold_bits: AtomicU64,
    /// Clock origin for the swap-latency instrumentation below; all
    /// publish/observe timestamps are nanoseconds since this instant.
    created: Instant,
    /// Nanoseconds-since-`created` of the most recent [`publish`]; 0 means
    /// no generation has been published yet.
    ///
    /// [`publish`]: ModelService::publish
    published_at_nanos: AtomicU64,
    /// Highest generation some consumer has already pinned via
    /// [`refresh`](ModelService::refresh) — `fetch_max` ensures only the
    /// *first* worker to observe a new generation records its swap latency.
    swap_observed_generation: AtomicU64,
    /// `adapt_swap_latency_seconds{class}` — publish → first-worker-pin
    /// latency. Unset (and therefore free) until telemetry is attached.
    swap_latency: OnceLock<HistogramHandle>,
    /// Trace sink plus the class label stamped on publish events. Unset
    /// until [`attach_trace`](ModelService::attach_trace), so untraced
    /// services pay one `OnceLock` load per publish and nothing else.
    trace: OnceLock<(TraceHandle, String)>,
    /// Newest publish entries — the lookup table that lets swap-apply and
    /// threshold events parent on the publish that caused them. Bounded;
    /// only populated while tracing is live.
    publish_log: Mutex<PublishLog>,
    /// Parent lookups that found neither the publish entry nor the
    /// one-slot eviction fallback: the caller's event goes out with
    /// `parent: None`, and this counter is the audit trail for why the
    /// causal chain has the gap.
    publish_parent_drops: AtomicU64,
}

/// Publish events retained for causal parenting — generations older than
/// this many publishes ago fall back to the refit-finish parent of the
/// most recently evicted entry, or to parentless (drop-accounted) beyond
/// that.
const PUBLISH_LOG_CAP: usize = 256;

/// The bounded publish lookup table plus its eviction memory.
///
/// Entries are `(generation, publish event id, refit-finish parent)`.
/// Eviction does not forget outright: the newest evicted entry's
/// generation and refit-finish parent stay in a one-slot fallback, so a
/// late `SwapApplied` for a just-evicted generation still parents into
/// the causal chain (on the refit finish rather than the publish) instead
/// of silently detaching.
#[derive(Debug)]
struct PublishLog {
    entries: VecDeque<(u64, EventId, Option<EventId>)>,
    /// `(generation, refit-finish parent)` of the newest evicted entry.
    last_evicted: Option<(u64, Option<EventId>)>,
    /// Injectable for tests; `PUBLISH_LOG_CAP` in production.
    cap: usize,
}

impl ModelService {
    /// Creates a service serving `initial` as generation 0, with no
    /// rejuvenation-threshold override.
    pub fn new(initial: Arc<dyn Regressor>) -> Self {
        ModelService {
            slot: RwLock::new(ModelSnapshot { generation: 0, model: initial }),
            generation: AtomicU64::new(0),
            rejuvenation_threshold_bits: AtomicU64::new(f64::NAN.to_bits()),
            created: Instant::now(),
            published_at_nanos: AtomicU64::new(0),
            swap_observed_generation: AtomicU64::new(0),
            swap_latency: OnceLock::new(),
            trace: OnceLock::new(),
            publish_log: Mutex::new(PublishLog {
                entries: VecDeque::new(),
                last_evicted: None,
                cap: PUBLISH_LOG_CAP,
            }),
            publish_parent_drops: AtomicU64::new(0),
        }
    }

    /// Shrinks the publish log's retention for eviction tests.
    #[cfg(test)]
    pub(crate) fn set_publish_log_cap(&self, cap: usize) {
        self.publish_log.lock().expect("publish log poisoned").cap = cap.max(1);
    }

    /// Attaches the publish→first-pin swap-latency histogram
    /// (`adapt_swap_latency_seconds{class}`) from `registry`. First call
    /// wins; before any call the instrumentation costs one relaxed load per
    /// *changed* generation and nothing on the unchanged fast path.
    pub fn attach_swap_telemetry(&self, registry: &Registry, class: &ServiceClass) {
        let handle = registry.histogram_with(
            "adapt_swap_latency_seconds",
            "Latency from a model generation being published to the first worker pinning it",
            Unit::Seconds,
            "class",
            class.as_str(),
        );
        let _ = self.swap_latency.set(handle);
    }

    /// Attaches a trace sink: every publish from now on emits a
    /// [`EventKind::GenerationPublished`] event labelled `class` and is
    /// remembered in a bounded publish log so downstream swap-apply and
    /// threshold-rederivation events can parent on it. First call wins; a
    /// disabled handle is ignored (the service stays trace-free).
    pub fn attach_trace(&self, trace: TraceHandle, class: &str) {
        if trace.enabled() {
            let _ = self.trace.set((trace, class.to_string()));
        }
    }

    /// The event id to parent `generation`'s downstream events (swap
    /// applies, threshold re-derivations) on: the `GenerationPublished`
    /// event while the entry is still in the bounded publish log, or —
    /// for the most recently evicted generation — the refit-finish event
    /// that produced it, so a late swap still attaches to the causal
    /// chain instead of silently detaching. `None` with tracing off, for
    /// generation 0 (never published), or for generations evicted deeper
    /// than the one-slot fallback; the last case is counted in
    /// [`ModelService::publish_parent_drops`].
    pub fn publish_event_for(&self, generation: u64) -> Option<EventId> {
        self.trace.get()?;
        let log = self.publish_log.lock().expect("publish log poisoned");
        if let Some(id) =
            log.entries.iter().rev().find(|(gen, _, _)| *gen == generation).map(|(_, id, _)| *id)
        {
            return Some(id);
        }
        match log.last_evicted {
            Some((evicted, parent)) if evicted == generation => parent,
            // An evicted generation older than the fallback slot (or one
            // the eviction memory has already moved past): the chain gap
            // is real, so account for it rather than hide it.
            Some((evicted, _)) if generation >= 1 && generation < evicted => {
                self.publish_parent_drops.fetch_add(1, Ordering::Relaxed);
                None
            }
            _ => None,
        }
    }

    /// Parent lookups that fell past both the publish log and its
    /// one-slot eviction fallback — each one is a `SwapApplied` (or
    /// threshold) event that went out parentless.
    pub fn publish_parent_drops(&self) -> u64 {
        self.publish_parent_drops.load(Ordering::Relaxed)
    }

    /// The current generation number (cheap: one atomic load).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A consistent `(generation, model)` pair, read under one lock
    /// acquisition.
    pub fn snapshot(&self) -> ModelSnapshot {
        self.slot.read().expect("model slot poisoned").clone()
    }

    /// Re-pins `pin` when a newer generation has been published; returns
    /// whether the pin moved. The epoch-boundary idiom of the fleet
    /// workers: one atomic load when nothing changed, one consistent
    /// snapshot when something did.
    pub fn refresh(&self, pin: &mut ModelSnapshot) -> bool {
        if self.generation() == pin.generation {
            return false;
        }
        *pin = self.snapshot();
        self.record_swap_observed(pin.generation);
        true
    }

    /// Records publish→first-pin latency for `generation`, at most once per
    /// generation (the `fetch_max` race decides who was first). Latency is
    /// measured against the *latest* publish timestamp, so when several
    /// generations land between two pins the recorded value covers the
    /// newest of them — the one actually being pinned.
    fn record_swap_observed(&self, generation: u64) {
        let Some(hist) = self.swap_latency.get() else { return };
        let prev = self.swap_observed_generation.fetch_max(generation, Ordering::Relaxed);
        if prev >= generation {
            return;
        }
        let published = self.published_at_nanos.load(Ordering::Relaxed);
        if published == 0 {
            return;
        }
        let now = self.created.elapsed().as_nanos() as u64;
        hist.record(now.saturating_sub(published));
    }

    /// Publishes a new model generation; returns its number.
    pub fn publish(&self, model: Arc<dyn Regressor>) -> u64 {
        self.publish_traced(model, None)
    }

    /// Like [`publish`](ModelService::publish), but parents the emitted
    /// `GenerationPublished` trace event on `parent` (typically the
    /// `RefitFinished` event of the refit that produced `model`). With no
    /// trace attached this is exactly `publish`.
    pub fn publish_traced(&self, model: Arc<dyn Regressor>, parent: Option<EventId>) -> u64 {
        // Timestamp outside the write lock; only taken when the swap
        // histogram is live, so untelemetered services never read the clock
        // here.
        if self.swap_latency.get().is_some() {
            let nanos = (self.created.elapsed().as_nanos() as u64).max(1);
            self.published_at_nanos.store(nanos, Ordering::Relaxed);
        }
        let generation = {
            let mut slot = self.slot.write().expect("model slot poisoned");
            let generation = slot.generation + 1;
            *slot = ModelSnapshot { generation, model };
            // Publish the hint while still holding the write lock: a reader
            // that sees the new number is guaranteed to find (at least) the
            // matching pair in the slot.
            self.generation.store(generation, Ordering::Release);
            generation
        };
        if let Some((trace, class)) = self.trace.get() {
            let event = trace.emit(
                EventScope::root().class(class).generation(generation).parent(parent),
                EventKind::GenerationPublished,
            );
            if let Some(id) = event {
                let mut log = self.publish_log.lock().expect("publish log poisoned");
                while log.entries.len() >= log.cap {
                    // Remember the newest eviction (generation + its
                    // refit-finish parent) so a straggling swap can still
                    // parent on the refit instead of detaching.
                    log.last_evicted = log.entries.pop_front().map(|(gen, _, p)| (gen, p));
                }
                log.entries.push_back((generation, id, parent));
            }
        }
        generation
    }

    /// The effective predictive-rejuvenation threshold (seconds of
    /// predicted TTF), or `None` while no self-tuning policy has published
    /// one. Fleet workers read this once per epoch per class.
    pub fn rejuvenation_threshold_secs(&self) -> Option<f64> {
        let secs = f64::from_bits(self.rejuvenation_threshold_bits.load(Ordering::Relaxed));
        secs.is_finite().then_some(secs)
    }

    /// Publishes a rejuvenation-threshold override (policy side; consumers
    /// pick it up at their next epoch boundary). Non-finite or
    /// non-positive values are ignored.
    pub fn set_rejuvenation_threshold_secs(&self, secs: f64) {
        if secs.is_finite() && secs > 0.0 {
            self.rejuvenation_threshold_bits.store(secs.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Configuration of the adaptation pipeline. Build with
/// [`AdaptConfig::builder`]; the struct is `#[non_exhaustive]` so fields
/// can grow without breaking call sites (read fields freely, construct
/// through the builder).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct AdaptConfig {
    /// Drift detection tuning (see [`DriftConfig`]); `enabled: false`
    /// freezes the service at generation 0.
    pub drift: DriftConfig,
    /// Capacity of the sliding training buffer (labelled checkpoints;
    /// oldest evicted first).
    pub buffer_capacity: usize,
    /// A drift trigger is only *honoured* once at least this many labelled
    /// checkpoints are buffered — retraining on a handful of rows would
    /// publish a worse model than the one that drifted. A trigger that
    /// arrives earlier stays pending and fires as soon as the buffer
    /// reaches this size. Must not exceed `buffer_capacity` (the FIFO
    /// could never satisfy it).
    pub min_buffer_to_retrain: usize,
    /// Optionally also retrain every `n` ingested checkpoints regardless of
    /// drift (the paper's plain periodic adaptation); `None` retrains on
    /// drift only.
    pub retrain_every: Option<usize>,
    /// Capacity (in batches) of the bounded ingestion ring the service
    /// creates — the back-pressure bound under a stalled retrainer. See
    /// [`crate::CheckpointBus::bounded`] for the drop-oldest semantics.
    pub bus_capacity: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            drift: DriftConfig::default(),
            buffer_capacity: 4096,
            min_buffer_to_retrain: 200,
            retrain_every: None,
            bus_capacity: crate::DEFAULT_BUS_CAPACITY,
        }
    }
}

impl AdaptConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> AdaptConfigBuilder {
        AdaptConfigBuilder { config: AdaptConfig::default() }
    }

    /// Panics with a message when an adaptation parameter (drift tuning,
    /// buffer sizing) is degenerate. `bus_capacity` is deliberately *not*
    /// checked here: the per-class router ignores it (its ring is shared),
    /// so only consumers that actually build a ring from this config
    /// validate it.
    pub(crate) fn validate_adaptation(&self) {
        assert!(self.buffer_capacity > 0, "buffer capacity must be positive");
        assert!(
            self.min_buffer_to_retrain <= self.buffer_capacity,
            "min_buffer_to_retrain ({}) exceeds buffer_capacity ({}): the sliding buffer \
             could never reach the retrain gate and every drift trigger would be swallowed",
            self.min_buffer_to_retrain,
            self.buffer_capacity
        );
        self.drift.validate();
    }

    /// Full validation for consumers that also size their ingestion ring
    /// from this config ([`AdaptiveServiceBuilder::spawn`]).
    pub(crate) fn validate(&self) {
        self.validate_adaptation();
        assert!(self.bus_capacity > 0, "bus capacity must be positive");
    }
}

/// Builder for [`AdaptConfig`] — the one way to construct a non-default
/// configuration.
#[derive(Debug, Clone)]
pub struct AdaptConfigBuilder {
    config: AdaptConfig,
}

impl AdaptConfigBuilder {
    /// Sets the drift detection tuning.
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = drift;
        self
    }

    /// Sets the sliding training buffer capacity.
    pub fn buffer_capacity(mut self, capacity: usize) -> Self {
        self.config.buffer_capacity = capacity;
        self
    }

    /// Sets the minimum buffered checkpoints before a trigger is honoured.
    pub fn min_buffer_to_retrain(mut self, min: usize) -> Self {
        self.config.min_buffer_to_retrain = min;
        self
    }

    /// Also retrain every `n` ingested checkpoints regardless of drift.
    pub fn retrain_every(mut self, every: usize) -> Self {
        self.config.retrain_every = Some(every);
        self
    }

    /// Retrain on drift (or never, with drift disabled) — clears any
    /// periodic schedule.
    pub fn drift_only(mut self) -> Self {
        self.config.retrain_every = None;
        self
    }

    /// Sets the bounded ingestion ring capacity, in batches.
    pub fn bus_capacity(mut self, capacity: usize) -> Self {
        self.config.bus_capacity = capacity;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are degenerate (zero capacities, a
    /// retrain gate above the buffer capacity, bad drift tuning).
    pub fn build(self) -> AdaptConfig {
        self.config.validate();
        self.config
    }
}

/// Counters describing what an adaptation pipeline has done so far.
///
/// All fields are monotone except `buffered`, `error_ewma_secs` and the
/// effective thresholds; the struct is safe to snapshot at any time while
/// the service runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationStats {
    /// Labelled checkpoints ingested from the bus.
    pub ingested_checkpoints: u64,
    /// Drift events the monitor fired.
    pub drift_events: u64,
    /// Successful retrains.
    pub retrains: u64,
    /// Retrains that failed (e.g. a degenerate buffer); the previous
    /// generation keeps serving.
    pub failed_retrains: u64,
    /// Model generations published (== successful retrains).
    pub generations_published: u64,
    /// Current serving generation.
    pub generation: u64,
    /// Labelled checkpoints currently in the sliding buffer.
    pub buffered: u64,
    /// Checkpoints shed by the bounded ingestion ring's drop-oldest policy
    /// (a stalled or slow retrainer sheds history instead of growing
    /// memory). Class-routed runs attribute each shed to the class of the
    /// dropped batch; `RouterStats`' fleet-wide total additionally counts
    /// shed batches naming *unregistered* classes, so it can exceed the
    /// sum over the registered classes' rows.
    pub dropped_checkpoints: u64,
    /// Current smoothed absolute TTF error in seconds — the drift
    /// monitor's EWMA, promoted here so per-class drift level is visible in
    /// `RouterStats` and fleet reports. `None` until the first labelled
    /// prediction arrives (distinguishing "no signal yet" from a genuinely
    /// zero error).
    #[serde(default)]
    pub error_ewma_secs: Option<f64>,
    /// Drift error-level threshold in force when snapshotted, seconds —
    /// the configured constant under [`FixedThresholds`], self-tuned under
    /// an adaptive [`ThresholdPolicy`].
    pub effective_error_threshold_secs: f64,
    /// Rejuvenation-threshold override in force, seconds (`None` until a
    /// self-tuning policy publishes one).
    pub effective_rejuvenation_threshold_secs: Option<f64>,
}

impl AdaptationStats {
    /// Builds the stats snapshot shared by the service and the per-class
    /// router entries.
    pub(crate) fn from_counters(
        counters: &PipelineCounters,
        generation: u64,
        dropped_checkpoints: u64,
    ) -> Self {
        AdaptationStats {
            ingested_checkpoints: counters.ingested(),
            drift_events: counters.drift_events(),
            retrains: counters.retrains(),
            failed_retrains: counters.failed_retrains(),
            generations_published: generation,
            generation,
            buffered: counters.buffered(),
            dropped_checkpoints,
            error_ewma_secs: counters.error_ewma_secs(),
            effective_error_threshold_secs: counters.effective_error_threshold_secs(),
            effective_rejuvenation_threshold_secs: counters.effective_rejuvenation_threshold_secs(),
        }
    }
}

/// The synchronous [`RetrainAction`]: buffer into an [`OnlineRegressor`],
/// fit in-thread, publish straight into the [`ModelService`].
///
/// Crate-visible because offline journal replay
/// ([`crate::replay::replay`]) re-runs recorded streams through the exact
/// same action the live service uses — what-if runs diverge only where
/// the configuration diverges, never from a second implementation.
#[derive(Debug)]
pub(crate) struct InThreadRetrain {
    online: OnlineRegressor<Arc<dyn DynLearner>>,
    models: Arc<ModelService>,
    /// `adapt_refit_duration_seconds{class}` — wall time of each refit
    /// attempt (successful or failed); disabled handle when telemetry is
    /// off.
    refit_duration: HistogramHandle,
    /// Trace sink for refit start/finish events; disabled when tracing is
    /// off.
    trace: TraceHandle,
    /// Class label stamped on refit events.
    trace_class: String,
    /// The `TriggerFired` event this refit answers to — set by the
    /// pipeline via [`RetrainAction::set_trace_parent`] just before
    /// `retrain`.
    trace_parent: Option<EventId>,
}

impl InThreadRetrain {
    /// Builds the action over a fresh [`OnlineRegressor`] with the
    /// wrapper's own periodic trigger parked at `usize::MAX` — periodic
    /// retraining is the pipeline's job so drift and schedule share the
    /// min-buffer gate.
    pub(crate) fn new(
        learner: Arc<dyn DynLearner>,
        feature_names: Vec<String>,
        buffer_capacity: usize,
        models: Arc<ModelService>,
        refit_duration: HistogramHandle,
        trace: TraceHandle,
        trace_class: String,
    ) -> Self {
        let online = OnlineRegressor::new(
            learner,
            feature_names,
            "time_to_failure",
            buffer_capacity,
            usize::MAX,
        )
        .expect("positive capacity and interval validated by AdaptConfig");
        InThreadRetrain { online, models, refit_duration, trace, trace_class, trace_parent: None }
    }
}

impl RetrainAction for InThreadRetrain {
    fn buffer(&mut self, features: Vec<f64>, ttf_secs: f64) -> Option<usize> {
        self.online.observe(features, ttf_secs).ok().map(|_| self.online.buffered())
    }

    fn buffered(&self) -> usize {
        self.online.buffered()
    }

    fn retrain(&mut self) -> RetrainDisposition {
        let started = self.trace.emit(
            EventScope::root().class(&self.trace_class).parent(self.trace_parent),
            EventKind::RefitStarted { rows: self.online.buffered() as u64 },
        );
        let span = self.refit_duration.span();
        let outcome = self.online.retrain();
        span.finish();
        match outcome {
            Ok(()) => {
                let finished = self.trace.emit(
                    EventScope::root().class(&self.trace_class).parent(started),
                    EventKind::RefitFinished { ok: true },
                );
                let model = self.online.model().expect("retrain just fitted a model").clone();
                self.models.publish_traced(model, finished);
                RetrainDisposition::Published
            }
            Err(_) => {
                let _ = self.trace.emit(
                    EventScope::root().class(&self.trace_class).parent(started),
                    EventKind::RefitFinished { ok: false },
                );
                RetrainDisposition::Failed
            }
        }
    }

    fn set_trace_parent(&mut self, parent: Option<EventId>) {
        self.trace_parent = parent;
    }

    fn last_publish_event(&self) -> Option<EventId> {
        self.models.publish_event_for(self.models.generation())
    }

    fn generation(&self) -> u64 {
        self.models.generation()
    }

    fn apply_thresholds(&mut self, thresholds: &Thresholds) {
        if let Some(secs) = thresholds.rejuvenation_threshold_secs {
            self.models.set_rejuvenation_threshold_secs(secs);
        }
    }

    fn state_digest(&self) -> u64 {
        // Format shared with the router's pooled action: generation, row
        // count, then every buffered row (arity, feature bits, label
        // bits). Keep the two in lock-step — recovery tests compare live
        // digests against replay digests across the two actions.
        let mut digest = Digest64::new();
        digest.write_u64(self.models.generation());
        digest.write_u64(self.online.buffered() as u64);
        for (features, ttf_secs) in self.online.rows() {
            digest.write_u64(features.len() as u64);
            for value in features {
                digest.write_f64(*value);
            }
            digest.write_f64(ttf_secs);
        }
        digest.finish()
    }
}

/// The drift-triggered online retraining service.
///
/// Owns a [`ModelService`] (the serving side) and a background retrainer
/// thread running an [`AdaptationPipeline`] with a synchronous in-thread
/// retrain action (the learning side), connected to producers by a
/// [`CheckpointBus`]. Labelled checkpoints stream in; the pipeline feeds
/// them to an [`OnlineRegressor`] sliding buffer and a
/// [`crate::DriftMonitor`]; when drift fires (or a periodic schedule comes
/// due) it refits the learner on the buffer and publishes the result as a
/// new generation — all without ever blocking the threads that serve
/// predictions. An optional self-tuning [`ThresholdPolicy`] re-derives the
/// operating thresholds on every publish.
///
/// # Example
///
/// ```
/// use aging_adapt::{AdaptiveService, CheckpointBatch, LabelledCheckpoint};
/// use aging_ml::linreg::LinRegLearner;
/// use aging_ml::{DynLearner, Learner, Regressor};
/// use std::sync::Arc;
///
/// // Initial model: y = x fitted on a tiny dataset.
/// let mut ds = aging_dataset::Dataset::new(vec!["x".into()], "y");
/// for i in 0..20 {
///     ds.push_row(vec![i as f64], i as f64)?;
/// }
/// let initial: Arc<dyn Regressor> = Arc::from(LinRegLearner::default().fit_boxed(&ds)?);
/// let learner: Arc<dyn DynLearner> = Arc::new(LinRegLearner::default());
/// let service =
///     AdaptiveService::builder(learner, vec!["x".into()], initial).spawn();
/// assert_eq!(service.model_service().generation(), 0);
/// let stats = service.shutdown();
/// assert_eq!(stats.generations_published, 0);
/// # Ok::<(), aging_ml::MlError>(())
/// ```
#[derive(Debug)]
pub struct AdaptiveService {
    models: Arc<ModelService>,
    bus: CheckpointBus,
    counters: Arc<PipelineCounters>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
    /// Final pipeline state digest, written by the retrainer as it exits.
    digest: Arc<Mutex<Option<u64>>>,
    /// Rows restored by journal replay before the retrainer started.
    /// `counters.ingested` includes them; the bus's enqueued count never
    /// will, so [`quiesce`](AdaptiveService::quiesce) must subtract this
    /// baseline or a replayed service would report the bus drained while
    /// live batches are still queued.
    replay_baseline: u64,
}

/// Builder for [`AdaptiveService`] — learner, feature names and initial
/// model are mandatory (the constructor arguments); configuration and
/// threshold policy are optional.
#[derive(Debug)]
pub struct AdaptiveServiceBuilder {
    learner: Arc<dyn DynLearner>,
    feature_names: Vec<String>,
    initial: Arc<dyn Regressor>,
    config: AdaptConfig,
    policy: Arc<dyn ThresholdPolicy>,
    telemetry: Option<Arc<Registry>>,
    trace: Option<Arc<FlightRecorder>>,
    journal: Option<Arc<Journal>>,
    replay: bool,
}

impl AdaptiveServiceBuilder {
    /// Sets the adaptation configuration (defaults to
    /// [`AdaptConfig::default`]).
    pub fn config(mut self, config: AdaptConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the self-tuning threshold policy (defaults to
    /// [`FixedThresholds`], which reproduces the configured constants
    /// exactly).
    pub fn policy(mut self, policy: Arc<dyn ThresholdPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a telemetry registry: bus depth/shed, drift and buffer
    /// gauges, refit-duration and publish→first-pin swap-latency
    /// histograms, all labelled with the default service class. Without
    /// this call every instrument stays a no-op (one untaken branch per
    /// update site).
    pub fn telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Attaches a causal trace sink: drift/trigger/refit/publish and bus
    /// shed events are recorded into `recorder`, labelled with the default
    /// service class. Independent of [`telemetry`]; without this call no
    /// event is built and no clock is read on any trace site.
    ///
    /// [`telemetry`]: AdaptiveServiceBuilder::telemetry
    pub fn trace(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Attaches a durable checkpoint journal: every ingested batch is
    /// appended (and fsync-batched) *before* it is buffered, and every
    /// generation publish and threshold re-derivation is recorded
    /// alongside — enough to reconstruct the learning side's state after
    /// a crash. Append failures never stall ingestion; they are counted
    /// in the pipeline's `journal_errors`.
    pub fn journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Replays the attached journal synchronously before the retrainer
    /// starts: recorded checkpoint batches re-ingest through the same
    /// pipeline the live stream feeds, restoring the sliding buffer,
    /// model generations and derived thresholds. Replayed batches are
    /// not re-journaled. No effect unless
    /// [`journal`](AdaptiveServiceBuilder::journal) is also set.
    pub fn replay(mut self) -> Self {
        self.replay = true;
        self
    }

    /// Spawns the retrainer thread and returns the running service.
    ///
    /// When a journal is attached with replay requested, the recorded
    /// stream is re-ingested on the *caller's* thread before the
    /// retrainer spawns — by the time this returns, the restored
    /// generations and thresholds are visible through the model service.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (zero buffer capacity, bad
    /// drift parameters), and on a requested replay whose journal cannot
    /// be read (mid-log corruption; a torn tail is tolerated and
    /// truncated).
    pub fn spawn(self) -> AdaptiveService {
        let AdaptiveServiceBuilder {
            learner,
            feature_names,
            initial,
            config,
            policy,
            telemetry,
            trace,
            journal,
            replay,
        } = self;
        config.validate();
        // Validate on the caller's thread: the pipeline re-validates when
        // it is built, but a panic should name the caller's call site.
        policy.validate();
        let models = Arc::new(ModelService::new(initial));
        let trace_handle = trace_of(&trace);
        let (bus, rx) = CheckpointBus::bounded_instrumented(
            config.bus_capacity,
            telemetry.clone(),
            trace_handle.clone(),
        );
        let class = ServiceClass::default();
        if let Some(registry) = &telemetry {
            models.attach_swap_telemetry(registry, &class);
        }
        models.attach_trace(trace_handle.clone(), class.as_str());
        let counters = Arc::new(PipelineCounters::new(config.drift.error_threshold_secs));
        let stop = Arc::new(AtomicBool::new(false));

        // The pipeline is built here, on the caller's thread, rather than
        // inside the retrainer: a journal replay must complete before any
        // live batch can interleave, and doing it synchronously makes the
        // restored state deterministic and visible when `spawn` returns.
        let refit_duration = match &telemetry {
            Some(registry) => registry.histogram_with(
                "adapt_refit_duration_seconds",
                "Wall time of each model refit attempt",
                Unit::Seconds,
                "class",
                class.as_str(),
            ),
            None => HistogramHandle::disabled(),
        };
        let action = InThreadRetrain::new(
            Arc::clone(&learner),
            feature_names,
            config.buffer_capacity,
            Arc::clone(&models),
            refit_duration,
            trace_handle.clone(),
            class.as_str().to_string(),
        );
        let mut pipeline =
            AdaptationPipeline::with_counters(&config, policy, Arc::clone(&counters), action);
        if let Some(registry) = &telemetry {
            pipeline
                .set_instruments(PipelineInstruments::resolve(registry.as_ref(), class.as_str()));
        }
        pipeline.set_trace(trace_handle.clone(), class.as_str());

        let mut replay_baseline = 0;
        if let Some(journal) = journal {
            if replay {
                let outcome = Journal::read(journal.dir())
                    .expect("journal replay: journal directory unreadable or corrupt mid-log");
                let (applied, _rows) = crate::replay::replay_class_into(
                    &outcome.records,
                    &mut pipeline,
                    class.as_str(),
                );
                // Replayed rows were never enqueued on this bus — remember
                // how many so `quiesce` compares like with like.
                replay_baseline = counters.ingested();
                trace_handle.emit(
                    EventScope::root().class(class.as_str()),
                    EventKind::JournalReplayed { records: applied },
                );
            }
            // Attached only after the replay so restored batches are not
            // journaled a second time.
            pipeline.set_journal(journal, class.as_str());
        }

        let digest = Arc::new(Mutex::new(None));
        let worker = {
            let stop = Arc::clone(&stop);
            let digest = Arc::clone(&digest);
            std::thread::spawn(move || retrainer_loop(pipeline, rx, stop, digest))
        };
        AdaptiveService {
            models,
            bus,
            counters,
            stop,
            worker: Some(worker),
            digest,
            replay_baseline,
        }
    }
}

impl AdaptiveService {
    /// Starts building a service: `feature_names` are the attribute names
    /// of the rows producers will publish (the feature set's variables, in
    /// order); `initial` serves as generation 0 until the first retrain.
    pub fn builder(
        learner: Arc<dyn DynLearner>,
        feature_names: Vec<String>,
        initial: Arc<dyn Regressor>,
    ) -> AdaptiveServiceBuilder {
        AdaptiveServiceBuilder {
            learner,
            feature_names,
            initial,
            config: AdaptConfig::default(),
            policy: Arc::new(FixedThresholds),
            telemetry: None,
            trace: None,
            journal: None,
            replay: false,
        }
    }

    /// Spawns the retrainer thread and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration (zero buffer capacity, bad drift
    /// parameters).
    #[deprecated(
        since = "0.1.0",
        note = "use AdaptiveService::builder(learner, feature_names, initial)\
                .config(config).spawn()"
    )]
    pub fn spawn(
        learner: Arc<dyn DynLearner>,
        feature_names: Vec<String>,
        initial: Arc<dyn Regressor>,
        config: AdaptConfig,
    ) -> Self {
        AdaptiveService::builder(learner, feature_names, initial).config(config).spawn()
    }

    /// The serving side: snapshot/pin models, poll generations, read the
    /// effective rejuvenation threshold.
    pub fn model_service(&self) -> &ModelService {
        &self.models
    }

    /// A shared handle to the serving side (for consumers that outlive the
    /// service's borrow).
    pub fn model_service_arc(&self) -> Arc<ModelService> {
        Arc::clone(&self.models)
    }

    /// A producer handle on the ingestion bus (clone freely).
    pub fn bus(&self) -> CheckpointBus {
        self.bus.clone()
    }

    /// Current counters; safe to call at any time.
    pub fn stats(&self) -> AdaptationStats {
        AdaptationStats::from_counters(
            &self.counters,
            self.models.generation(),
            self.bus.dropped_checkpoints(),
        )
    }

    /// Waits for the retrainer to drain the bus: blocks until every
    /// checkpoint published *before* this call has been ingested or shed
    /// by the bounded ring (bounded by `timeout`). Returns `true` when the
    /// bus drained in time.
    ///
    /// Because the pipeline counts a batch as ingested only *after* its
    /// retrain gate ran, a `true` return also means every retrain those
    /// checkpoints triggered has completed and published.
    ///
    /// Only meant for deterministic tests and examples — production
    /// callers never need to wait on the learning side.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Shed checkpoints will never be ingested; the ring keeps
            // counting them, so re-resolve the target every pass. `dropped`
            // is read BEFORE `enqueued` so a drop racing in between makes
            // the target conservative (wait longer), never premature.
            let dropped = self.bus.dropped_checkpoints();
            let target = self.bus.enqueued_checkpoints().saturating_sub(dropped);
            // Journal-replayed rows count as ingested but never crossed
            // the bus; subtract them or a restored service would declare
            // the bus drained before touching a single live batch.
            if self.counters.ingested().saturating_sub(self.replay_baseline) >= target {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the retrainer, joins it and returns the final stats.
    ///
    /// Every batch queued on the bus before the call is still ingested
    /// before the retrainer exits; batches published afterwards (by
    /// surviving producer clones) go nowhere, which those producers see as
    /// `publish` returning `false`.
    pub fn shutdown(mut self) -> AdaptationStats {
        self.join_worker()
    }

    /// [`shutdown`](AdaptiveService::shutdown), plus the retrainer's final
    /// [`state digest`](AdaptiveService::state_digest) — which only exists
    /// once the retrainer has exited, i.e. exactly when `self` is gone.
    pub fn shutdown_with_digest(mut self) -> (AdaptationStats, Option<u64>) {
        let stats = self.join_worker();
        let digest = self.state_digest();
        (stats, digest)
    }

    /// The retrainer's final pipeline state digest — generation, buffered
    /// rows (bit patterns included) and effective thresholds folded into
    /// one `u64`. `None` while the retrainer is still running; `Some`
    /// after [`shutdown`](AdaptiveService::shutdown) (or any join). Two
    /// runs that report equal digests ended in bit-identical adaptation
    /// state, which is how the crash-recovery tests assert that a journal
    /// replay restored a run exactly.
    pub fn state_digest(&self) -> Option<u64> {
        *self.digest.lock().expect("state digest slot poisoned")
    }

    fn join_worker(&mut self) -> AdaptationStats {
        self.stop.store(true, Ordering::Release);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for AdaptiveService {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.join_worker();
        }
    }
}

fn retrainer_loop(
    mut pipeline: AdaptationPipeline<InThreadRetrain>,
    rx: BusReceiver,
    stop: Arc<AtomicBool>,
    digest: Arc<Mutex<Option<u64>>>,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            // Shutdown: drain whatever was queued before the flag, then
            // exit — queued work is never thrown away.
            for batch in rx.drain() {
                pipeline.ingest(batch.checkpoints);
            }
            break;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(batch)) => pipeline.ingest(batch.checkpoints),
            Ok(None) => {}
            // All producers hung up and the queue is drained.
            Err(crate::BusDisconnected) => break,
        }
    }
    // Published after the last ingest so recovery tests can compare a
    // live run's end state against a journal replay, bit for bit.
    *digest.lock().expect("state digest slot poisoned") = Some(pipeline.state_digest());
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_ml::linreg::LinRegLearner;
    use aging_ml::Learner;
    use aging_obs::FlightRecorder;

    fn line_model() -> Arc<dyn Regressor> {
        let mut ds = aging_dataset::Dataset::new(vec!["x".into()], "y");
        for i in 0..10 {
            ds.push_row(vec![i as f64], i as f64).unwrap();
        }
        Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
    }

    /// Regression: with the publish log capped at 1, a late parent lookup
    /// for a just-evicted generation must fall back to that publish's
    /// refit-finish parent instead of silently detaching — and only
    /// generations older than the eviction slot are drop-accounted.
    #[test]
    fn evicted_publish_parent_falls_back_to_refit_finish() {
        let recorder = Arc::new(FlightRecorder::with_capacity(64));
        let trace = recorder.handle();
        let service = ModelService::new(line_model());
        service.attach_trace(trace.clone(), "web");
        service.set_publish_log_cap(1);

        let finish1 =
            trace.emit(EventScope::root().class("web"), EventKind::RefitFinished { ok: true });
        let finish2 =
            trace.emit(EventScope::root().class("web"), EventKind::RefitFinished { ok: true });
        assert_eq!(service.publish_traced(line_model(), finish1), 1);
        assert_eq!(service.publish_traced(line_model(), finish2), 2);

        // Generation 2 is still in the log; generation 1 was evicted but
        // its refit-finish parent survives in the one-slot fallback.
        assert!(service.publish_event_for(2).is_some());
        assert_eq!(service.publish_event_for(1), finish1);
        assert_eq!(service.publish_parent_drops(), 0);

        // A third publish moves the eviction slot to generation 2;
        // generation 1 is now beyond recall and must be drop-accounted.
        let finish3 =
            trace.emit(EventScope::root().class("web"), EventKind::RefitFinished { ok: true });
        assert_eq!(service.publish_traced(line_model(), finish3), 3);
        assert_eq!(service.publish_event_for(2), finish2);
        assert_eq!(service.publish_event_for(1), None);
        assert_eq!(service.publish_parent_drops(), 1);

        // Generation 0 (the initial model) was never published; asking
        // for it is not a drop.
        assert_eq!(service.publish_event_for(0), None);
        assert_eq!(service.publish_parent_drops(), 1);
    }
}
