//! Offline journal replay: crash recovery and what-if re-execution.
//!
//! A checkpoint journal records the learning side's *inputs* (every
//! ingested batch) plus an audit trail of its *outputs* (generation
//! publishes, threshold re-derivations, discovery partitions). Replay
//! restores state by re-executing the inputs through the exact pipeline
//! the live stream fed — deterministic learners make the outputs land
//! bit-identically, which the recovery tests assert via state digests.
//!
//! The same entry point doubles as **what-if mode**: replay the recorded
//! stream under a *different* [`ClassSpec`] — another
//! [`ThresholdPolicy`](crate::ThresholdPolicy), another learner — and
//! compare the counterfactual outcome against what actually happened.
//! Because replay is synchronous and single-threaded, a what-if run is
//! exactly reproducible.

use crate::bus::{LabelledCheckpoint, ServiceClass};
use crate::pipeline::{AdaptationPipeline, RetrainAction};
use crate::policy::Thresholds;
use crate::router::ClassSpec;
use crate::service::{InThreadRetrain, ModelService};
use aging_journal::{Journal, JournalRecord};
use aging_obs::{HistogramHandle, TraceHandle};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Final adaptation state of one replayed class.
#[derive(Debug, Clone)]
pub struct ClassReplay {
    /// The replayed service class.
    pub class: ServiceClass,
    /// Model generation after the last replayed batch.
    pub generation: u64,
    /// Operating thresholds in force after the last replayed batch.
    pub thresholds: Thresholds,
    /// Rows held in the sliding buffer at the end of the replay.
    pub buffered: u64,
    /// Successful refits during the replay.
    pub retrains: u64,
    /// Drift triggers observed during the replay.
    pub drift_events: u64,
    /// Pipeline state digest — generation, buffered rows and thresholds
    /// folded into one `u64`, comparable against a live run's
    /// [`state digest`](crate::AdaptiveRouter::state_digests).
    pub digest: u64,
    /// Mean `|predicted − observed|` TTF error over the replay, in
    /// seconds, where predictions come from the replayed pipeline's *own*
    /// model generations (not the recorded live predictions). Only
    /// populated by [`replay_scored`]; `None` from [`replay`] and when no
    /// row carried a finite label.
    pub mean_abs_error_secs: Option<f64>,
    /// Rows that contributed to `mean_abs_error_secs`. Always 0 from
    /// [`replay`].
    pub scored_rows: u64,
}

/// The last fleet partition the journal recorded, if any.
#[derive(Debug, Clone)]
pub struct ReplayPartition {
    /// Monotone discovery round counter.
    pub version: u64,
    /// `(instance, class)` assignment pairs, in spec order.
    pub assignment: Vec<(String, String)>,
}

/// What a journal replay reconstructed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Per-class end states, in the caller's class order.
    pub classes: Vec<ClassReplay>,
    /// Journal records read (including audit records that replay does not
    /// re-execute).
    pub records: u64,
    /// Checkpoint rows re-ingested.
    pub rows: u64,
    /// Checkpoint records skipped because their class was not in the
    /// caller's class set.
    pub skipped_records: u64,
    /// Bytes of torn tail truncated when the journal was opened.
    pub truncated_bytes: u64,
    /// The newest recorded fleet partition, when discovery ran.
    pub partition: Option<ReplayPartition>,
}

/// Replays the journal at `dir` through fresh per-class pipelines.
///
/// Each `(class, spec)` pair gets its own [`AdaptationPipeline`] with the
/// same synchronous in-thread action the [`AdaptiveService`] retrainer
/// uses; recorded checkpoint batches are re-ingested in journal order.
/// Passing the specs of the original run makes this **crash recovery**;
/// passing altered specs makes it a **what-if run** over the same
/// recorded stream.
///
/// Checkpoint records for classes outside the given set are skipped and
/// counted in [`ReplayOutcome::skipped_records`]. Audit records
/// (publishes, threshold re-derivations, registrations) are not
/// re-executed — re-running the inputs regenerates them — but the newest
/// `PartitionAssigned` record is surfaced in
/// [`ReplayOutcome::partition`].
///
/// [`AdaptiveService`]: crate::AdaptiveService
///
/// # Errors
///
/// Propagates journal read failures: I/O errors and mid-log corruption
/// (a torn tail on the final segment is tolerated and reported via
/// [`ReplayOutcome::truncated_bytes`]).
pub fn replay(
    dir: impl AsRef<Path>,
    feature_names: Vec<String>,
    classes: Vec<(ServiceClass, ClassSpec)>,
) -> io::Result<ReplayOutcome> {
    replay_impl(dir, feature_names, classes, false)
}

/// Like [`replay`], but **scores** each class while it replays: every
/// checkpoint row is re-predicted from the replayed pipeline's *current*
/// model generation before ingestion, the recorded live prediction is
/// replaced with that counterfactual one (so the drift monitor and
/// threshold policies react to the candidate spec's own errors, not the
/// incumbent's), and the mean absolute TTF error lands in
/// [`ClassReplay::mean_abs_error_secs`]. Monitor-only observations carry
/// no feature vector, so they cannot be re-predicted: they keep their
/// recorded live prediction and do not contribute to the score.
///
/// This is the evaluation backend for policy search: replaying the same
/// journal under two specs yields directly comparable error/retrain
/// numbers. Single-threaded and deterministic — identical inputs give
/// bit-identical digests.
///
/// # Errors
///
/// Same failure modes as [`replay`].
pub fn replay_scored(
    dir: impl AsRef<Path>,
    feature_names: Vec<String>,
    classes: Vec<(ServiceClass, ClassSpec)>,
) -> io::Result<ReplayOutcome> {
    replay_impl(dir, feature_names, classes, true)
}

/// One replayed class's in-flight state: the pipeline, the model service
/// it publishes into (kept for counterfactual prediction), and the
/// scoring accumulators.
struct ClassState {
    class: ServiceClass,
    pipeline: AdaptationPipeline<InThreadRetrain>,
    models: Arc<ModelService>,
    abs_error_sum_secs: f64,
    scored_rows: u64,
}

fn replay_impl(
    dir: impl AsRef<Path>,
    feature_names: Vec<String>,
    classes: Vec<(ServiceClass, ClassSpec)>,
    scored: bool,
) -> io::Result<ReplayOutcome> {
    let read = Journal::read(dir)?;
    let mut pipelines: Vec<ClassState> = classes
        .into_iter()
        .map(|(class, spec)| {
            spec.config.validate();
            spec.policy.validate();
            let models = Arc::new(ModelService::new(spec.initial));
            let action = InThreadRetrain::new(
                spec.learner,
                feature_names.clone(),
                spec.config.buffer_capacity,
                Arc::clone(&models),
                HistogramHandle::disabled(),
                TraceHandle::disabled(),
                class.as_str().to_string(),
            );
            let pipeline = AdaptationPipeline::new(&spec.config, spec.policy, action);
            ClassState { class, pipeline, models, abs_error_sum_secs: 0.0, scored_rows: 0 }
        })
        .collect();

    let mut records = 0u64;
    let mut rows = 0u64;
    let mut skipped_records = 0u64;
    let mut partition = None;
    for (_seq, record) in &read.records {
        records += 1;
        match record {
            JournalRecord::Checkpoints { class, rows: batch } => {
                let Some(state) = pipelines.iter_mut().find(|s| s.class.as_str() == class) else {
                    skipped_records += 1;
                    continue;
                };
                rows += batch.len() as u64;
                let mut ingested: Vec<LabelledCheckpoint> =
                    batch.iter().cloned().map(LabelledCheckpoint::from).collect();
                if scored {
                    // One snapshot per batch: generations only move at
                    // ingest boundaries, so every row in this batch was
                    // (counterfactually) predicted by the same model.
                    let snapshot = state.models.snapshot();
                    for row in &mut ingested {
                        // Monitor-only observations record no feature
                        // vector — nothing to re-predict from. They keep
                        // their live prediction (still feeding the drift
                        // monitor) and stay out of the score.
                        if row.features.is_empty() {
                            continue;
                        }
                        let predicted = snapshot.model.predict(&row.features);
                        if row.ttf_secs.is_finite() && predicted.is_finite() {
                            state.abs_error_sum_secs += (predicted - row.ttf_secs).abs();
                            state.scored_rows += 1;
                        }
                        row.predicted_ttf_secs = Some(predicted);
                        row.predicted_generation = Some(snapshot.generation);
                    }
                }
                // Batch granularity is load-bearing: the retrain gate
                // fires once per ingested batch, exactly as it did live.
                state.pipeline.ingest(ingested);
            }
            JournalRecord::PartitionAssigned { version, assignment } => {
                partition =
                    Some(ReplayPartition { version: *version, assignment: assignment.clone() });
            }
            // Audit records: regenerated by re-execution, not re-applied.
            // Membership records fold into a roster via
            // `aging_journal::MembershipFold` — they carry no checkpoint
            // rows, so the adaptation replay passes over them.
            JournalRecord::GenerationPublished { .. }
            | JournalRecord::ThresholdsRederived { .. }
            | JournalRecord::ClassRegistered { .. }
            | JournalRecord::ClassRetired { .. }
            | JournalRecord::InstanceJoined { .. }
            | JournalRecord::InstanceRetired { .. } => {}
        }
    }

    let classes = pipelines
        .into_iter()
        .map(|state| {
            let counters = state.pipeline.counters();
            ClassReplay {
                class: state.class,
                generation: state.pipeline.action().generation(),
                thresholds: state.pipeline.thresholds(),
                buffered: counters.buffered(),
                retrains: counters.retrains(),
                drift_events: counters.drift_events(),
                digest: state.pipeline.state_digest(),
                mean_abs_error_secs: (state.scored_rows > 0)
                    .then(|| state.abs_error_sum_secs / state.scored_rows as f64),
                scored_rows: state.scored_rows,
            }
        })
        .collect();

    Ok(ReplayOutcome {
        classes,
        records,
        rows,
        skipped_records,
        truncated_bytes: read.truncated_bytes,
        partition,
    })
}

/// Feeds every journalled checkpoint batch for `class` through
/// `pipeline`, in recorded order. Shared by [`replay`] consumers that
/// already own a pipeline — the [`AdaptiveService`] and
/// [`AdaptiveRouter`] spawn paths replay into their live pipelines with
/// this before attaching the journal for new appends.
///
/// Returns `(batches_applied, rows_applied)`.
///
/// [`AdaptiveService`]: crate::AdaptiveService
/// [`AdaptiveRouter`]: crate::AdaptiveRouter
pub(crate) fn replay_class_into<A: RetrainAction>(
    records: &[(u64, JournalRecord)],
    pipeline: &mut AdaptationPipeline<A>,
    class: &str,
) -> (u64, u64) {
    let mut applied = 0u64;
    let mut rows = 0u64;
    for (_seq, record) in records {
        if let JournalRecord::Checkpoints { class: recorded, rows: batch } = record {
            if recorded == class {
                applied += 1;
                rows += batch.len() as u64;
                pipeline.ingest(batch.iter().cloned().map(LabelledCheckpoint::from).collect());
            }
        }
    }
    (applied, rows)
}
