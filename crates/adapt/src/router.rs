//! Class-routed adaptation for heterogeneous fleets.
//!
//! One [`crate::AdaptiveService`] fits one model for the *whole* fleet —
//! fine while every deployment ages the same way, wrong the moment a
//! memory-leak class and a swap-thrash class share a training buffer: each
//! class's labelled epochs drag the other's model towards the average of
//! two regimes. The [`AdaptiveRouter`] is the heterogeneous counterpart:
//!
//! ```text
//!  shards / monitor streams          (CheckpointBatch tagged with class)
//!        │
//!        ▼
//!  [CheckpointBus] — bounded ring, drop-oldest, per-source fair,
//!        │            sheds attributed to the dropped batch's class
//!        ▼
//!  ingest thread ── routes by ServiceClass ──┬─► class A: AdaptationPipeline
//!        │                                   ├─► class B: AdaptationPipeline
//!        │ refit jobs (class, buffer snapshot)└─► …
//!        ▼
//!  shared retrainer pool (fixed worker threads — N classes ≠ N threads)
//!        │ fitted model
//!        ▼
//!  per-class [ModelService] — consumers pin per-class snapshots per epoch
//! ```
//!
//! Every class runs the **same** [`AdaptationPipeline`] state machine as
//! the single-service retrainer — drift-observe, sticky trigger, buffer
//! gate, threshold policy — parameterised with the pooled
//! [`RetrainAction`](crate::RetrainAction): the trigger snapshots the
//! class's sliding buffer into a [`RefitJob`] for the shared worker pool,
//! with at most one job per class in flight. A slow learner never piles up
//! stale jobs; it just leaves the class's sticky trigger pending. The
//! ingest thread owns every per-class pipeline, so routing needs no locks;
//! only the *fitting* — the expensive part — fans out to the pool.

use crate::bus::{BusReceiver, CheckpointBatch, CheckpointBus, ServiceClass};
use crate::pipeline::{
    AdaptationPipeline, PipelineCounters, PipelineInstruments, RetrainAction, RetrainDisposition,
};
use crate::policy::{FixedThresholds, ThresholdPolicy, Thresholds};
use crate::service::{AdaptConfig, AdaptationStats, ModelService};
use aging_dataset::Dataset;
use aging_journal::{Digest64, Journal, JournalRecord};
use aging_ml::{DynLearner, Regressor};
use aging_obs::{
    trace_of, EventId, EventKind, EventScope, FlightRecorder, HistogramHandle, Recorder, Registry,
    TraceHandle, Unit,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything one service class needs from the router: how to train, what
/// to serve first, how to decide the model has drifted, and how its
/// thresholds self-tune. Build with [`ClassSpec::builder`]; the struct is
/// `#[non_exhaustive]` (read fields freely, construct through the
/// builder).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClassSpec {
    /// Training algorithm for this class's refits (learners are stateless;
    /// classes may share one `Arc`).
    pub learner: Arc<dyn DynLearner>,
    /// The model served as generation 0 until the first refit.
    pub initial: Arc<dyn Regressor>,
    /// Per-class adaptation tuning. `bus_capacity` is ignored here — the
    /// ring is shared and sized by [`RouterConfig::bus_capacity`].
    pub config: AdaptConfig,
    /// Threshold policy for this class (defaults to [`FixedThresholds`]).
    /// Classes may share one `Arc` — each class's pipeline consults it
    /// with its own error window, so a shared policy still tunes every
    /// class independently.
    pub policy: Arc<dyn ThresholdPolicy>,
}

impl ClassSpec {
    /// Starts building a spec from its two mandatory parts; config
    /// defaults to [`AdaptConfig::default`], policy to
    /// [`FixedThresholds`].
    pub fn builder(learner: Arc<dyn DynLearner>, initial: Arc<dyn Regressor>) -> ClassSpecBuilder {
        ClassSpecBuilder {
            spec: ClassSpec {
                learner,
                initial,
                config: AdaptConfig::default(),
                policy: Arc::new(FixedThresholds),
            },
        }
    }
}

/// Builder for [`ClassSpec`].
#[derive(Debug, Clone)]
pub struct ClassSpecBuilder {
    spec: ClassSpec,
}

impl ClassSpecBuilder {
    /// Sets the per-class adaptation tuning.
    pub fn config(mut self, config: AdaptConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Sets the self-tuning threshold policy.
    pub fn policy(mut self, policy: Arc<dyn ThresholdPolicy>) -> Self {
        self.spec.policy = policy;
        self
    }

    /// Finishes the spec, validating the adaptation config and threshold
    /// policy so an invalid spec — a hand-written one or a generated
    /// search candidate — fails fast at construction rather than
    /// mid-replay or mid-ingest.
    ///
    /// # Panics
    ///
    /// Panics when [`AdaptConfig`] or the policy's invariants are violated
    /// (zero buffer capacity, non-finite thresholds, inverted quantiles…).
    pub fn build(self) -> ClassSpec {
        self.spec.config.validate_adaptation();
        self.spec.policy.validate();
        self.spec
    }
}

/// Router-wide tuning. Build with [`RouterConfig::builder`]; the struct is
/// `#[non_exhaustive]` (read fields freely, construct through the
/// builder).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Fixed size of the shared retrainer pool. Refit jobs from every
    /// class queue onto these workers, so a fleet with 50 classes still
    /// runs 2 training threads.
    pub retrainer_threads: usize,
    /// Capacity (in batches) of the shared bounded ingestion ring.
    pub bus_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { retrainer_threads: 2, bus_capacity: crate::DEFAULT_BUS_CAPACITY }
    }
}

impl RouterConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder { config: RouterConfig::default() }
    }
}

/// Builder for [`RouterConfig`].
#[derive(Debug, Clone)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Sets the shared retrainer pool size.
    pub fn retrainer_threads(mut self, threads: usize) -> Self {
        self.config.retrainer_threads = threads;
        self
    }

    /// Sets the shared bounded ring capacity, in batches.
    pub fn bus_capacity(mut self, capacity: usize) -> Self {
        self.config.bus_capacity = capacity;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized pool or ring.
    pub fn build(self) -> RouterConfig {
        assert!(self.config.retrainer_threads > 0, "retrainer pool must have at least one thread");
        assert!(self.config.bus_capacity > 0, "bus capacity must be positive");
        self.config
    }
}

/// An error from the router's dynamic class registry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouterError {
    /// The class is already registered (names must be unique for the whole
    /// router lifetime, retired classes included).
    DuplicateClass(ServiceClass),
    /// The named class has never been registered.
    UnknownClass(ServiceClass),
    /// The operation needs a live class but the named one is retired.
    RetiredClass(ServiceClass),
    /// A class cannot be retired into itself.
    SelfMerge(ServiceClass),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::DuplicateClass(c) => write!(f, "service class `{c}` registered twice"),
            RouterError::UnknownClass(c) => write!(f, "service class `{c}` is not registered"),
            RouterError::RetiredClass(c) => write!(f, "service class `{c}` is retired"),
            RouterError::SelfMerge(c) => write!(f, "cannot retire class `{c}` into itself"),
        }
    }
}

impl std::error::Error for RouterError {}

/// One class's adaptation counters inside a [`RouterStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAdaptation {
    /// The service class.
    pub class: ServiceClass,
    /// Whether the class has been retired (its buffer was drained into a
    /// merge target and new batches naming it route there). Counters stay
    /// frozen at their retirement values.
    pub retired: bool,
    /// Its counters, shaped exactly like the single-service stats.
    pub stats: AdaptationStats,
}

/// Counters describing what the router has done so far, per class and in
/// aggregate. Safe to snapshot at any time while the router runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterStats {
    /// Per-class counters, in registration order (retired classes stay
    /// listed, flagged). Each class's `dropped_checkpoints` attributes the
    /// bounded ring's sheds to the class of the dropped batch.
    pub classes: Vec<ClassAdaptation>,
    /// Classes registered after spawn through
    /// [`AdaptiveRouter::register_class`] (class discovery's dynamic
    /// registrations; build-time classes are not counted).
    pub dynamic_registrations: u64,
    /// Classes retired through [`AdaptiveRouter::retire_class`].
    pub retired_classes: u64,
    /// Labelled checkpoints ingested across all classes.
    pub ingested_checkpoints: u64,
    /// Checkpoints shed by the bounded ring across *all* classes —
    /// including batches naming classes no service is registered for, so
    /// this can exceed the per-class sum.
    pub dropped_checkpoints: u64,
    /// Checkpoints whose batch named a class no service is registered for;
    /// counted and discarded.
    pub unrouted_checkpoints: u64,
    /// Model generations published across all classes.
    pub generations_published: u64,
    /// Checkpoint-journal append failures across the router — registry
    /// records (class registration/retirement) plus every class's batch,
    /// publish and threshold records. Zero when no journal is attached.
    #[serde(default)]
    pub journal_errors: u64,
    /// Per-class spec swaps applied through
    /// [`AdaptiveRouter::apply_spec`] (policy-search promotions).
    #[serde(default)]
    pub applied_specs: u64,
}

impl RouterStats {
    /// The counters of one class, if registered.
    pub fn class(&self, class: &ServiceClass) -> Option<&AdaptationStats> {
        self.classes.iter().find(|c| &c.class == class).map(|c| &c.stats)
    }
}

/// Per-class state shared between the ingest thread, the worker pool and
/// stats readers.
#[derive(Debug)]
struct ClassShared {
    class: ServiceClass,
    service: Arc<ModelService>,
    /// The learner pool workers fit with. Behind a lock so
    /// [`AdaptiveRouter::apply_spec`] can hot-swap it; workers clone the
    /// `Arc` out and fit unlocked.
    learner: RwLock<Arc<dyn DynLearner>>,
    counters: Arc<PipelineCounters>,
    /// The full spec, kept so the ingest thread can build the class's
    /// pipeline when it discovers a dynamically registered entry — and
    /// rebuild it after a spec swap.
    spec: RwLock<ClassSpec>,
    /// At most one refit job per class in flight on the pool.
    inflight: AtomicBool,
    /// Set by [`AdaptiveRouter::retire_class`]; the ingest thread drains
    /// the class's buffer into its merge target and drops its pipeline.
    retired: AtomicBool,
    /// `adapt_refit_duration_seconds{class}` — wall time of each pooled
    /// refit; disabled handle when no telemetry is attached.
    refit_duration: HistogramHandle,
    /// Trace sink for this class's refit start/finish events (pool-side);
    /// disabled when tracing is off.
    trace: TraceHandle,
}

/// The class registry: slots are append-only (a retired class keeps its
/// index so in-flight refit jobs and consumer pins stay valid), and the
/// name index always points at the slot batches should *route to* — a
/// retirement re-points the retired name at its merge target.
#[derive(Debug, Default)]
struct ClassTable {
    classes: Vec<Arc<ClassShared>>,
    index: HashMap<ServiceClass, usize>,
}

#[derive(Debug)]
struct RouterShared {
    table: RwLock<ClassTable>,
    unrouted: AtomicU64,
    jobs_enqueued: AtomicU64,
    jobs_done: AtomicU64,
    dynamic_registrations: AtomicU64,
    retirements: AtomicU64,
    /// Spec swaps applied through [`AdaptiveRouter::apply_spec`].
    spec_swaps: AtomicU64,
    /// Registry classes resolve their instruments from; `None` leaves
    /// every instrument disabled.
    telemetry: Option<Arc<Registry>>,
    /// Trace sink dynamically registered classes and their pipelines
    /// inherit; disabled when tracing is off.
    trace: TraceHandle,
    /// The attached checkpoint journal; registry changes (class
    /// registration/retirement) append here, per-class batch records go
    /// through each pipeline's own handle on the ingest thread.
    journal: Option<Arc<Journal>>,
    /// The flight recorder behind `trace`, kept so a panicking pool
    /// worker can dump it once — the handle alone cannot dump.
    recorder: Option<Arc<FlightRecorder>>,
    /// Append failures for registry records (per-class failures are
    /// counted in each pipeline's own counters).
    journal_errors: AtomicU64,
    /// Rows restored by journal replay before the ingest thread started;
    /// `quiesce` subtracts them since they never crossed the bus.
    replay_baseline: AtomicU64,
    /// Per-class pipeline state digests, written by the ingest thread as
    /// it exits — the bit-exactness witness for crash-recovery tests.
    digests: Mutex<Option<Vec<(ServiceClass, u64)>>>,
}

impl RouterShared {
    fn class(&self, idx: usize) -> Arc<ClassShared> {
        Arc::clone(&self.table.read().expect("class table poisoned").classes[idx])
    }
}

/// Control messages from the router handle to the ingest thread (class
/// *registration* needs none — the ingest thread notices new table entries
/// by length and builds their pipelines itself).
#[derive(Debug)]
enum RouterCtrl {
    /// Drain class `from`'s training buffer into class `into` and drop
    /// `from`'s pipeline.
    Retire { from: usize, into: usize },
    /// Rebuild class `idx`'s pipeline from its (just swapped) table spec,
    /// carrying the sliding training buffer across.
    ApplySpec { idx: usize },
}

/// A snapshot of one class's sliding buffer, ready for a pool worker to
/// fit. Snapshotting at enqueue time keeps the live buffer on the ingest
/// thread — the worker trains on a consistent regime even while new
/// checkpoints keep streaming in.
struct RefitJob {
    class_idx: usize,
    dataset: Dataset,
    /// The `TriggerFired` event that caused this job; the worker's
    /// `RefitStarted` parents on it so the causal chain survives the hop
    /// from the ingest thread to the pool.
    parent: Option<EventId>,
}

/// The pooled [`RetrainAction`](crate::RetrainAction): a plain sliding
/// buffer on the ingest thread; the retrain snapshots it into a
/// [`RefitJob`] for the shared worker pool, gated on the class's
/// one-in-flight flag. The publish (and the retrain counters) happen on
/// the worker when the fit completes.
struct PooledRetrain {
    class_idx: usize,
    capacity: usize,
    arity: usize,
    buffer: VecDeque<(Vec<f64>, f64)>,
    feature_names: Arc<Vec<String>>,
    shared: Arc<RouterShared>,
    job_tx: Sender<RefitJob>,
    /// Set by the pipeline via [`RetrainAction::set_trace_parent`] just
    /// before `retrain`; threaded into the next [`RefitJob`].
    trace_parent: Option<EventId>,
}

impl std::fmt::Debug for PooledRetrain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledRetrain")
            .field("class_idx", &self.class_idx)
            .field("buffered", &self.buffer.len())
            .finish_non_exhaustive()
    }
}

impl RetrainAction for PooledRetrain {
    fn buffer(&mut self, features: Vec<f64>, ttf_secs: f64) -> Option<usize> {
        if features.len() != self.arity {
            return None;
        }
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back((features, ttf_secs));
        Some(self.buffer.len())
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn retrain(&mut self) -> RetrainDisposition {
        let class = self.shared.class(self.class_idx);
        if class.inflight.swap(true, Ordering::AcqRel) {
            // A refit for this class is already running; the sticky
            // trigger stays pending and the next batch retries.
            return RetrainDisposition::Deferred;
        }
        let mut dataset = Dataset::new(self.feature_names.as_ref().clone(), "time_to_failure");
        for (row, ttf) in &self.buffer {
            dataset.push_row(row.clone(), *ttf).expect("arity checked on buffering");
        }
        let job = RefitJob { class_idx: self.class_idx, dataset, parent: self.trace_parent };
        if self.job_tx.send(job).is_ok() {
            self.shared.jobs_enqueued.fetch_add(1, Ordering::Relaxed);
            RetrainDisposition::Enqueued
        } else {
            // Pool gone (shutdown mid-drain): nothing to retrain on.
            class.inflight.store(false, Ordering::Release);
            RetrainDisposition::Deferred
        }
    }

    fn generation(&self) -> u64 {
        self.shared.class(self.class_idx).service.generation()
    }

    fn set_trace_parent(&mut self, parent: Option<EventId>) {
        self.trace_parent = parent;
    }

    fn last_publish_event(&self) -> Option<EventId> {
        let service = &self.shared.class(self.class_idx).service;
        service.publish_event_for(service.generation())
    }

    fn apply_thresholds(&mut self, thresholds: &Thresholds) {
        if let Some(secs) = thresholds.rejuvenation_threshold_secs {
            self.shared.class(self.class_idx).service.set_rejuvenation_threshold_secs(secs);
        }
    }

    fn state_digest(&self) -> u64 {
        // Format shared with the single-service in-thread action:
        // generation, row count, then every buffered row (arity, feature
        // bits, label bits). Recovery tests compare these digests against
        // an offline replay, which runs the in-thread action.
        let mut digest = Digest64::new();
        digest.write_u64(self.generation());
        digest.write_u64(self.buffer.len() as u64);
        for (features, ttf_secs) in &self.buffer {
            digest.write_u64(features.len() as u64);
            for value in features {
                digest.write_f64(*value);
            }
            digest.write_f64(*ttf_secs);
        }
        digest.finish()
    }
}

/// The class-routed adaptation service: one [`ModelService`] +
/// [`AdaptationPipeline`] per [`ServiceClass`], fed from one bounded
/// [`CheckpointBus`] and retrained on a fixed shared worker pool.
///
/// # Example
///
/// ```
/// use aging_adapt::{AdaptiveRouter, ClassSpec, ServiceClass};
/// use aging_ml::linreg::LinRegLearner;
/// use aging_ml::{DynLearner, Learner, Regressor};
/// use std::sync::Arc;
///
/// let mut ds = aging_dataset::Dataset::new(vec!["x".into()], "y");
/// for i in 0..20 {
///     ds.push_row(vec![i as f64], i as f64)?;
/// }
/// let initial: Arc<dyn Regressor> = Arc::from(LinRegLearner::default().fit_boxed(&ds)?);
/// let learner: Arc<dyn DynLearner> = Arc::new(LinRegLearner::default());
/// let spec = ClassSpec::builder(learner, initial).build();
/// let router = AdaptiveRouter::builder(vec!["x".into()])
///     .class(ServiceClass::new("web"), spec.clone())
///     .class(ServiceClass::new("db"), spec)
///     .spawn();
/// assert_eq!(router.model_service(&ServiceClass::new("db")).unwrap().generation(), 0);
/// let stats = router.shutdown();
/// assert_eq!(stats.generations_published, 0);
/// # Ok::<(), aging_ml::MlError>(())
/// ```
#[derive(Debug)]
pub struct AdaptiveRouter {
    bus: CheckpointBus,
    shared: Arc<RouterShared>,
    ctrl_tx: Sender<RouterCtrl>,
    stop: Arc<AtomicBool>,
    ingest: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Builder for [`AdaptiveRouter`] — classes are registered one by one (or
/// in bulk) and the router spawns with its ingest thread and worker pool
/// running.
#[derive(Debug)]
pub struct AdaptiveRouterBuilder {
    feature_names: Vec<String>,
    config: RouterConfig,
    classes: Vec<(ServiceClass, ClassSpec)>,
    telemetry: Option<Arc<Registry>>,
    trace: Option<Arc<FlightRecorder>>,
    journal: Option<Arc<Journal>>,
    replay: bool,
}

impl AdaptiveRouterBuilder {
    /// Sets the router-wide tuning (defaults to
    /// [`RouterConfig::default`]).
    pub fn config(mut self, config: RouterConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a telemetry registry: shared-ring depth and per-class shed
    /// counters, routing latency per ingested batch, per-class drift
    /// observation/event counters and buffer gauges, refit-duration and
    /// publish→first-pin swap-latency histograms. Dynamically registered
    /// classes pick up the same registry. Without this call every
    /// instrument stays a no-op.
    pub fn telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Attaches a causal trace sink: per-class drift/trigger/refit/publish
    /// events plus shared-ring shed events are recorded into `recorder`,
    /// each labelled with its class. Dynamically registered classes pick
    /// up the same sink. Independent of [`telemetry`]; without this call
    /// no event is built and no clock is read on any trace site.
    ///
    /// [`telemetry`]: AdaptiveRouterBuilder::telemetry
    pub fn trace(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Attaches a durable checkpoint journal: every routed batch is
    /// appended (class-tagged, fsync-batched) *before* it is buffered,
    /// generation publishes and threshold re-derivations are recorded
    /// per class, and class registrations/retirements land as registry
    /// records. The ingest thread compacts the journal past the sliding
    /// buffers' horizon as it runs. Append failures never stall
    /// ingestion; they are counted in [`RouterStats::journal_errors`].
    pub fn journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Replays the attached journal before the ingest thread starts:
    /// recorded batches re-ingest through the same per-class pipelines
    /// the live stream feeds, restoring sliding buffers, generations and
    /// derived thresholds for every class registered at build time.
    /// Replayed batches are not re-journaled. No effect unless
    /// [`journal`](AdaptiveRouterBuilder::journal) is also set.
    pub fn replay(mut self) -> Self {
        self.replay = true;
        self
    }

    /// Registers one service class.
    pub fn class(mut self, class: ServiceClass, spec: ClassSpec) -> Self {
        self.classes.push((class, spec));
        self
    }

    /// Registers several service classes at once (registration order is
    /// preserved — it is the order `RouterStats.classes` reports in).
    pub fn classes(mut self, classes: impl IntoIterator<Item = (ServiceClass, ClassSpec)>) -> Self {
        self.classes.extend(classes);
        self
    }

    /// Spawns the ingest thread and the shared retrainer pool and returns
    /// the running router.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicated class list, a zero-sized pool or
    /// ring, and any degenerate per-class [`AdaptConfig`].
    pub fn spawn(self) -> AdaptiveRouter {
        let AdaptiveRouterBuilder {
            feature_names,
            config,
            classes,
            telemetry,
            trace,
            journal,
            replay,
        } = self;
        assert!(!classes.is_empty(), "router needs at least one service class");
        assert!(config.retrainer_threads > 0, "retrainer pool must have at least one thread");
        assert!(config.bus_capacity > 0, "bus capacity must be positive");

        let trace_handle = trace_of(&trace);
        let mut table = ClassTable::default();
        for (class, spec) in classes {
            assert!(!table.index.contains_key(&class), "service class `{class}` registered twice");
            // On the caller's thread — the ingest thread builds the
            // per-class pipelines, where a validation panic would be
            // silent.
            table.push(make_class_shared(class, spec, telemetry.as_deref(), &trace_handle));
        }
        let shared = Arc::new(RouterShared {
            table: RwLock::new(table),
            unrouted: AtomicU64::new(0),
            jobs_enqueued: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            dynamic_registrations: AtomicU64::new(0),
            retirements: AtomicU64::new(0),
            spec_swaps: AtomicU64::new(0),
            telemetry: telemetry.clone(),
            trace: trace_handle.clone(),
            journal: journal.clone(),
            recorder: trace,
            journal_errors: AtomicU64::new(0),
            replay_baseline: AtomicU64::new(0),
            digests: Mutex::new(None),
        });

        let (bus, rx) =
            CheckpointBus::bounded_instrumented(config.bus_capacity, telemetry, trace_handle);
        let (job_tx, job_rx) = std::sync::mpsc::channel::<RefitJob>();
        let (ctrl_tx, ctrl_rx) = std::sync::mpsc::channel::<RouterCtrl>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let stop = Arc::new(AtomicBool::new(false));

        // Workers come up before any replay: replayed batches enqueue
        // refit jobs exactly like live ones, and those must complete for
        // the restored generations to be visible when `spawn` returns.
        let workers: Vec<JoinHandle<()>> = (0..config.retrainer_threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || refit_worker(shared, job_rx))
            })
            .collect();

        // The per-class pipelines are built here, on the caller's thread,
        // rather than inside the ingest loop: a journal replay must
        // complete before any live batch can interleave.
        let ingest_latency = match &shared.telemetry {
            Some(registry) => registry.histogram(
                "adapt_ingest_batch_seconds",
                "Routing latency per ingested checkpoint batch",
                Unit::Seconds,
            ),
            None => HistogramHandle::disabled(),
        };
        let mut pipelines = IngestPipelines {
            pipelines: Vec::new(),
            feature_names: Arc::new(feature_names),
            shared: Arc::clone(&shared),
            job_tx,
            journal: None,
            since_compaction: 0,
        };
        pipelines.sync();

        if let Some(journal) = journal {
            if replay {
                let read = Journal::read(journal.dir())
                    .expect("journal replay: journal directory unreadable or corrupt mid-log");
                let mut applied = 0u64;
                for (_seq, record) in &read.records {
                    if let JournalRecord::Checkpoints { class, rows } = record {
                        applied += 1;
                        // Batch granularity is load-bearing: the retrain
                        // gate fires once per routed batch, as it did live.
                        pipelines.process(CheckpointBatch {
                            source: "journal".to_string(),
                            class: ServiceClass::new(class.clone()),
                            checkpoints: rows.iter().cloned().map(Into::into).collect(),
                        });
                    }
                }
                // Wait for the refit jobs the replay enqueued — bounded,
                // so a wedged learner degrades to a cold start rather
                // than hanging the restart forever.
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                while shared.jobs_done.load(Ordering::Relaxed)
                    < shared.jobs_enqueued.load(Ordering::Relaxed)
                    && std::time::Instant::now() < deadline
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Replayed rows were never enqueued on this bus — record
                // the offset so `quiesce` compares like with like.
                let restored: u64 = {
                    let table = shared.table.read().expect("class table poisoned");
                    table.classes.iter().map(|c| c.counters.ingested()).sum::<u64>()
                        + shared.unrouted.load(Ordering::Relaxed)
                };
                shared.replay_baseline.store(restored, Ordering::Relaxed);
                shared
                    .trace
                    .emit(EventScope::root(), EventKind::JournalReplayed { records: applied });
            }
            // Attached only after the replay so restored batches are not
            // journaled a second time.
            pipelines.attach_journal(journal);
        }

        let ingest = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || ingest(rx, ctrl_rx, pipelines, ingest_latency, stop))
        };

        AdaptiveRouter { bus, shared, ctrl_tx, stop, ingest: Some(ingest), workers }
    }
}

/// Validates a spec and builds its shared per-class state (service,
/// counters, flags). Used by both build-time registration and
/// [`AdaptiveRouter::register_class`].
///
/// # Panics
///
/// Panics on a degenerate per-class [`AdaptConfig`] or threshold policy.
fn make_class_shared(
    class: ServiceClass,
    spec: ClassSpec,
    telemetry: Option<&Registry>,
    trace: &TraceHandle,
) -> Arc<ClassShared> {
    // Not `validate()`: the per-class `bus_capacity` really is ignored
    // (the ring is shared), as the `ClassSpec` docs say.
    spec.config.validate_adaptation();
    spec.policy.validate();
    let service = Arc::new(ModelService::new(Arc::clone(&spec.initial)));
    let refit_duration = match telemetry {
        Some(registry) => {
            service.attach_swap_telemetry(registry, &class);
            registry.histogram_with(
                "adapt_refit_duration_seconds",
                "Wall time of each model refit attempt",
                Unit::Seconds,
                "class",
                class.as_str(),
            )
        }
        None => HistogramHandle::disabled(),
    };
    service.attach_trace(trace.clone(), class.as_str());
    Arc::new(ClassShared {
        class,
        service,
        learner: RwLock::new(Arc::clone(&spec.learner)),
        counters: Arc::new(PipelineCounters::new(spec.config.drift.error_threshold_secs)),
        spec: RwLock::new(spec),
        inflight: AtomicBool::new(false),
        retired: AtomicBool::new(false),
        refit_duration,
        trace: trace.clone(),
    })
}

impl ClassTable {
    fn push(&mut self, shared: Arc<ClassShared>) {
        let idx = self.classes.len();
        self.index.insert(shared.class.clone(), idx);
        self.classes.push(shared);
    }
}

impl AdaptiveRouter {
    /// Starts building a router. `feature_names` are the attribute names
    /// of the rows producers will publish (the feature set's variables, in
    /// order) — shared by every class, since a fleet extracts one feature
    /// catalogue.
    pub fn builder(feature_names: Vec<String>) -> AdaptiveRouterBuilder {
        AdaptiveRouterBuilder {
            feature_names,
            config: RouterConfig::default(),
            classes: Vec::new(),
            telemetry: None,
            trace: None,
            journal: None,
            replay: false,
        }
    }

    /// Spawns the ingest thread and the shared retrainer pool and returns
    /// the running router.
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicated class list, a zero-sized pool or
    /// ring, and any degenerate per-class [`AdaptConfig`].
    #[deprecated(
        since = "0.1.0",
        note = "use AdaptiveRouter::builder(feature_names).classes(classes)\
                .config(config).spawn()"
    )]
    pub fn spawn(
        classes: Vec<(ServiceClass, ClassSpec)>,
        feature_names: Vec<String>,
        config: RouterConfig,
    ) -> Self {
        AdaptiveRouter::builder(feature_names).classes(classes).config(config).spawn()
    }

    /// A producer handle on the shared ingestion ring (clone freely).
    pub fn bus(&self) -> CheckpointBus {
        self.bus.clone()
    }

    /// Registers a new service class **while the router runs** — the
    /// dynamic side of automatic class discovery. The class serves
    /// `spec.initial` as generation 0 immediately (the returned
    /// [`ModelService`] is live before this call returns); the ingest
    /// thread builds the class's adaptation pipeline before it routes the
    /// first batch naming the class.
    ///
    /// # Errors
    ///
    /// [`RouterError::DuplicateClass`] when the name was ever registered
    /// (including retired classes — names are unique for the router's
    /// lifetime).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate per-class [`AdaptConfig`] or threshold
    /// policy, exactly like build-time registration.
    pub fn register_class(
        &self,
        class: ServiceClass,
        spec: ClassSpec,
    ) -> Result<Arc<ModelService>, RouterError> {
        let shared = make_class_shared(
            class.clone(),
            spec,
            self.shared.telemetry.as_deref(),
            &self.shared.trace,
        );
        let service = Arc::clone(&shared.service);
        let mut table = self.shared.table.write().expect("class table poisoned");
        // Names stay unique across retirements: the index re-points a
        // retired name at its merge target, so a containment check alone
        // would miss collisions with retired slots.
        if table.classes.iter().any(|c| c.class == class) {
            return Err(RouterError::DuplicateClass(class));
        }
        table.push(shared);
        drop(table);
        self.shared.dynamic_registrations.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.shared.journal {
            if journal
                .append(&JournalRecord::ClassRegistered { class: class.as_str().to_string() })
                .is_err()
            {
                self.shared.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(service)
    }

    /// Retires a class, merging it into `into`: the class's sliding
    /// training buffer is drained into the merge target's (on the ingest
    /// thread, preserving single-threaded pipeline ownership), its
    /// pipeline is dropped, and batches naming the retired class route to
    /// the target from now on. Counters freeze at their retirement
    /// values; the retired class's [`ModelService`] keeps serving its
    /// last generation so consumers holding pins stay valid while they
    /// re-route.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownClass`] when either name was never
    /// registered, [`RouterError::RetiredClass`] when either side is
    /// already retired, [`RouterError::SelfMerge`] when `class == into`.
    pub fn retire_class(
        &self,
        class: &ServiceClass,
        into: &ServiceClass,
    ) -> Result<(), RouterError> {
        if class == into {
            return Err(RouterError::SelfMerge(class.clone()));
        }
        let mut table = self.shared.table.write().expect("class table poisoned");
        let from_idx = table
            .classes
            .iter()
            .position(|c| &c.class == class)
            .ok_or_else(|| RouterError::UnknownClass(class.clone()))?;
        let into_idx = table
            .classes
            .iter()
            .position(|c| &c.class == into)
            .ok_or_else(|| RouterError::UnknownClass(into.clone()))?;
        if table.classes[from_idx].retired.load(Ordering::Acquire) {
            return Err(RouterError::RetiredClass(class.clone()));
        }
        if table.classes[into_idx].retired.load(Ordering::Acquire) {
            return Err(RouterError::RetiredClass(into.clone()));
        }
        table.classes[from_idx].retired.store(true, Ordering::Release);
        // Future batches naming the retired class route to the target.
        table.index.insert(class.clone(), into_idx);
        drop(table);
        self.shared.retirements.fetch_add(1, Ordering::Relaxed);
        if let Some(journal) = &self.shared.journal {
            if journal
                .append(&JournalRecord::ClassRetired {
                    class: class.as_str().to_string(),
                    into: into.as_str().to_string(),
                })
                .is_err()
            {
                self.shared.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The drain itself runs on the ingest thread; a hung-up channel
        // means the router is shutting down and the buffer dies with it.
        let _ = self.ctrl_tx.send(RouterCtrl::Retire { from: from_idx, into: into_idx });
        Ok(())
    }

    /// Swaps a live class onto a new [`ClassSpec`] **while the router
    /// runs** — the promotion path of policy search. The class's learner,
    /// adaptation config and threshold policy are replaced; the ingest
    /// thread rebuilds the class's pipeline from the new spec before it
    /// routes the next batch, carrying the sliding training buffer across
    /// (oldest rows dropped if the new capacity is smaller).
    ///
    /// Semantics worth knowing:
    ///
    /// - `spec.initial` is **ignored**: the class's [`ModelService`]
    ///   keeps serving its current generation, and the swap lands like
    ///   any other publish — the next refit (under the new learner)
    ///   produces the next generation. A promotion changes *how* the
    ///   class adapts, never rolls back *what* it serves.
    /// - Drift-monitor state and self-tuned thresholds restart from the
    ///   new spec's configuration; cumulative counters (ingested,
    ///   retrains, drift events) carry over.
    /// - A refit already in flight under the old learner may still
    ///   publish one generation after this call returns.
    /// - Spec swaps are not journalled: replay takes the caller's specs,
    ///   so a recovery replays under whatever spec the caller passes —
    ///   exactly the counterfactual the tuner scored.
    ///
    /// # Errors
    ///
    /// [`RouterError::UnknownClass`] when the class was never registered,
    /// [`RouterError::RetiredClass`] when it has been retired.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate per-class [`AdaptConfig`] or threshold
    /// policy, exactly like registration.
    pub fn apply_spec(&self, class: &ServiceClass, spec: ClassSpec) -> Result<(), RouterError> {
        spec.config.validate_adaptation();
        spec.policy.validate();
        let table = self.shared.table.read().expect("class table poisoned");
        // By slot, not the name index: a retired name re-points at its
        // merge target, and silently re-configuring the target is not
        // what the caller asked for.
        let idx = table
            .classes
            .iter()
            .position(|c| &c.class == class)
            .ok_or_else(|| RouterError::UnknownClass(class.clone()))?;
        let entry = &table.classes[idx];
        if entry.retired.load(Ordering::Acquire) {
            return Err(RouterError::RetiredClass(class.clone()));
        }
        *entry.learner.write().expect("learner lock poisoned") = Arc::clone(&spec.learner);
        *entry.spec.write().expect("spec lock poisoned") = spec;
        drop(table);
        self.shared.spec_swaps.fetch_add(1, Ordering::Relaxed);
        // The pipeline rebuild runs on the ingest thread; a hung-up
        // channel means the router is shutting down.
        let _ = self.ctrl_tx.send(RouterCtrl::ApplySpec { idx });
        Ok(())
    }

    /// The serving side of one class, or `None` when the class is not
    /// registered. For a retired class this returns its **merge target's**
    /// service — the model that now serves the retired class's traffic.
    pub fn model_service(&self, class: &ServiceClass) -> Option<Arc<ModelService>> {
        let table = self.shared.table.read().expect("class table poisoned");
        table.index.get(class).map(|&i| Arc::clone(&table.classes[i].service))
    }

    /// The registered classes, in registration order (retired included).
    pub fn classes(&self) -> Vec<ServiceClass> {
        let table = self.shared.table.read().expect("class table poisoned");
        table.classes.iter().map(|c| c.class.clone()).collect()
    }

    /// Current counters, per class and aggregate; safe to call at any
    /// time. Each class's `dropped_checkpoints` attributes the shared
    /// ring's sheds to the class of the dropped batch.
    pub fn stats(&self) -> RouterStats {
        // One lock acquisition for the whole per-class shed attribution —
        // a 50-class fleet must not take the producers' bus mutex 50
        // times per stats call.
        let dropped_by_class: HashMap<ServiceClass, u64> =
            self.bus.dropped_checkpoints_by_class().into_iter().collect();
        let table = self.shared.table.read().expect("class table poisoned");
        let classes: Vec<ClassAdaptation> = table
            .classes
            .iter()
            .map(|c| ClassAdaptation {
                class: c.class.clone(),
                retired: c.retired.load(Ordering::Acquire),
                stats: AdaptationStats::from_counters(
                    &c.counters,
                    c.service.generation(),
                    dropped_by_class.get(&c.class).copied().unwrap_or(0),
                ),
            })
            .collect();
        let journal_errors = self.shared.journal_errors.load(Ordering::Relaxed)
            + table.classes.iter().map(|c| c.counters.journal_errors()).sum::<u64>();
        drop(table);
        RouterStats {
            ingested_checkpoints: classes.iter().map(|c| c.stats.ingested_checkpoints).sum(),
            generations_published: classes.iter().map(|c| c.stats.generations_published).sum(),
            dropped_checkpoints: self.bus.dropped_checkpoints(),
            unrouted_checkpoints: self.shared.unrouted.load(Ordering::Relaxed),
            dynamic_registrations: self.shared.dynamic_registrations.load(Ordering::Relaxed),
            retired_classes: self.shared.retirements.load(Ordering::Relaxed),
            journal_errors,
            applied_specs: self.shared.spec_swaps.load(Ordering::Relaxed),
            classes,
        }
    }

    /// The per-class pipeline state digests the ingest thread left behind
    /// as it exited — `None` while the router is running, `Some` after
    /// [`shutdown`](AdaptiveRouter::shutdown) (or any join). Two quiesced
    /// runs reporting equal digests for a class ended with bit-identical
    /// adaptation state (generation, sliding buffer, thresholds); the
    /// crash-recovery tests compare these against an offline
    /// [`replay`](crate::replay::replay) of the journal.
    pub fn state_digests(&self) -> Option<Vec<(ServiceClass, u64)>> {
        self.shared.digests.lock().expect("digest slot poisoned").clone()
    }

    /// Waits until every checkpoint published *before* this call has been
    /// ingested (or shed by the ring) **and** the retrainer pool has
    /// finished every job that ingestion enqueued — so generation counters
    /// are settled. Returns `true` when both happened within `timeout`.
    ///
    /// Only meant for deterministic tests and examples.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            // Read `dropped` BEFORE `enqueued`: drops racing in between
            // then inflate the target (wait a little longer) instead of
            // deflating it (return before pre-call checkpoints drained).
            let dropped = self.bus.dropped_checkpoints();
            let target = self.bus.enqueued_checkpoints().saturating_sub(dropped);
            let ingested: u64 = {
                let table = self.shared.table.read().expect("class table poisoned");
                table.classes.iter().map(|c| c.counters.ingested()).sum()
            };
            // Journal-replayed rows count as ingested but never crossed
            // the bus; subtract the replay baseline or a restored router
            // would declare the bus drained before touching a live batch.
            let routed: u64 = (ingested + self.shared.unrouted.load(Ordering::Relaxed))
                .saturating_sub(self.shared.replay_baseline.load(Ordering::Relaxed));
            // Order matters: the bus must be drained before the job
            // counters can be final for everything published so far.
            if routed >= target
                && self.shared.jobs_done.load(Ordering::Relaxed)
                    >= self.shared.jobs_enqueued.load(Ordering::Relaxed)
            {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops ingestion and the pool, joins every thread and returns the
    /// final stats. Batches queued on the ring before the call are still
    /// ingested, and every refit job they trigger still completes.
    pub fn shutdown(mut self) -> RouterStats {
        self.join_all()
    }

    /// [`shutdown`](AdaptiveRouter::shutdown), plus the per-class
    /// [`state digests`](AdaptiveRouter::state_digests) — which only exist
    /// once the ingest thread has exited, i.e. exactly when `self` is
    /// gone.
    pub fn shutdown_with_digests(mut self) -> (RouterStats, Option<Vec<(ServiceClass, u64)>>) {
        let stats = self.join_all();
        let digests = self.state_digests();
        (stats, digests)
    }

    fn join_all(&mut self) -> RouterStats {
        self.stop.store(true, Ordering::Release);
        if let Some(ingest) = self.ingest.take() {
            let _ = ingest.join();
        }
        // The ingest thread owned the only job sender; its exit hangs up
        // the queue and the workers drain what is left, then stop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

impl Drop for AdaptiveRouter {
    fn drop(&mut self) {
        if self.ingest.is_some() || !self.workers.is_empty() {
            self.join_all();
        }
    }
}

/// The per-class pipelines the ingest thread owns, indexed like the shared
/// class table. `None` marks a retired-and-drained slot.
struct IngestPipelines {
    pipelines: Vec<Option<AdaptationPipeline<PooledRetrain>>>,
    feature_names: Arc<Vec<String>>,
    shared: Arc<RouterShared>,
    job_tx: Sender<RefitJob>,
    /// The attached checkpoint journal; `None` until
    /// [`attach_journal`](IngestPipelines::attach_journal) (which is
    /// after any replay, so restored batches are not re-journaled).
    journal: Option<Arc<Journal>>,
    /// Batches processed since the last compaction pass.
    since_compaction: u64,
}

/// Compact the journal every this many processed batches. The pass drops
/// checkpoint batches past every class's sliding-buffer horizon, so the
/// journal's footprint tracks the buffers instead of the full history.
const COMPACT_EVERY_BATCHES: u64 = 256;

impl IngestPipelines {
    /// Builds pipelines for every class table entry this thread has not
    /// seen yet — how dynamically registered classes come alive. The
    /// table is append-only, so a length check suffices.
    fn sync(&mut self) {
        let table = self.shared.table.read().expect("class table poisoned");
        while self.pipelines.len() < table.classes.len() {
            let class_idx = self.pipelines.len();
            let spec = table.classes[class_idx].spec.read().expect("spec lock poisoned").clone();
            let action = PooledRetrain {
                class_idx,
                capacity: spec.config.buffer_capacity,
                arity: self.feature_names.len(),
                buffer: VecDeque::with_capacity(spec.config.buffer_capacity),
                feature_names: Arc::clone(&self.feature_names),
                shared: Arc::clone(&self.shared),
                job_tx: self.job_tx.clone(),
                trace_parent: None,
            };
            let mut pipeline = AdaptationPipeline::with_counters(
                &spec.config,
                Arc::clone(&spec.policy),
                Arc::clone(&table.classes[class_idx].counters),
                action,
            );
            if let Some(registry) = &self.shared.telemetry {
                pipeline.set_instruments(PipelineInstruments::resolve(
                    registry.as_ref(),
                    table.classes[class_idx].class.as_str(),
                ));
            }
            pipeline.set_trace(self.shared.trace.clone(), table.classes[class_idx].class.as_str());
            if let Some(journal) = &self.journal {
                // Dynamically registered classes journal from their first
                // batch, like build-time classes.
                pipeline.set_journal(Arc::clone(journal), table.classes[class_idx].class.as_str());
            }
            self.pipelines.push(Some(pipeline));
        }
    }

    /// Attaches the journal to every live pipeline (and, via
    /// [`sync`](IngestPipelines::sync), to every pipeline built later).
    /// Called after any replay so restored batches are not re-journaled.
    fn attach_journal(&mut self, journal: Arc<Journal>) {
        let table = self.shared.table.read().expect("class table poisoned");
        for (class_idx, slot) in self.pipelines.iter_mut().enumerate() {
            if let Some(pipeline) = slot {
                pipeline.set_journal(Arc::clone(&journal), table.classes[class_idx].class.as_str());
            }
        }
        drop(table);
        self.journal = Some(journal);
    }

    /// Compacts the journal past the sliding-buffer horizon once enough
    /// batches have gone through. Failures are counted, never fatal —
    /// compaction is an optimisation, the uncompacted journal stays
    /// replayable.
    fn maybe_compact(&mut self) {
        let Some(journal) = &self.journal else {
            return;
        };
        self.since_compaction += 1;
        if self.since_compaction < COMPACT_EVERY_BATCHES {
            return;
        }
        self.since_compaction = 0;
        // Keep the *largest* class buffer worth of rows per class: a
        // shared horizon is conservative for smaller buffers, and replay
        // correctness only needs at least the buffered window.
        let keep_rows = {
            let table = self.shared.table.read().expect("class table poisoned");
            table
                .classes
                .iter()
                .map(|c| c.spec.read().expect("spec lock poisoned").config.buffer_capacity)
                .max()
                .unwrap_or(0)
        };
        match journal.compact(keep_rows) {
            Ok(stats) => {
                self.shared.trace.emit(
                    EventScope::root(),
                    EventKind::JournalCompacted {
                        kept_records: stats.kept_records,
                        dropped_records: stats.dropped_records,
                    },
                );
            }
            Err(_) => {
                self.shared.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Routes one batch into its class's pipeline (building pipelines for
    /// freshly registered classes on demand).
    fn process(&mut self, batch: CheckpointBatch) {
        let class_idx = {
            let table = self.shared.table.read().expect("class table poisoned");
            table.index.get(&batch.class).copied()
        };
        let Some(class_idx) = class_idx else {
            self.shared.unrouted.fetch_add(batch.checkpoints.len() as u64, Ordering::Relaxed);
            return;
        };
        if class_idx >= self.pipelines.len() {
            self.sync();
        }
        match self.pipelines.get_mut(class_idx).and_then(Option::as_mut) {
            Some(pipeline) => pipeline.ingest(batch.checkpoints),
            // A drained slot the index still pointed at for one racing
            // batch; the retirement re-pointed the index, so this cannot
            // recur — count rather than lose silently.
            None => {
                self.shared.unrouted.fetch_add(batch.checkpoints.len() as u64, Ordering::Relaxed);
            }
        }
        self.maybe_compact();
    }

    /// Publishes every live class's pipeline state digest into the shared
    /// slot — called by the ingest thread as it exits, after the final
    /// drain, so `shutdown` leaves a bit-exactness witness behind.
    fn publish_digests(&self) {
        let table = self.shared.table.read().expect("class table poisoned");
        let digests: Vec<(ServiceClass, u64)> = self
            .pipelines
            .iter()
            .enumerate()
            .filter_map(|(class_idx, slot)| {
                slot.as_ref().map(|pipeline| {
                    (table.classes[class_idx].class.clone(), pipeline.state_digest())
                })
            })
            .collect();
        drop(table);
        *self.shared.digests.lock().expect("digest slot poisoned") = Some(digests);
    }

    /// Applies a retirement: drain `from`'s sliding buffer into `into`'s
    /// and drop `from`'s pipeline. Drift state and counters of the target
    /// are untouched — merged rows are training history, not fresh error
    /// observations.
    fn retire(&mut self, from: usize, into: usize) {
        self.sync();
        let Some(retired) = self.pipelines.get_mut(from).and_then(Option::take) else {
            return;
        };
        let rows = retired.into_action().buffer;
        if let Some(target) = self.pipelines.get_mut(into).and_then(Option::as_mut) {
            for (row, ttf) in rows {
                target.action_mut().buffer(row, ttf);
            }
            let buffered = target.action().buffered() as u64;
            self.shared.class(into).counters.buffered.store(buffered, Ordering::Relaxed);
        }
    }

    /// Applies a spec swap: rebuild the class's pipeline from the (already
    /// updated) shared spec, carrying the sliding training buffer across.
    /// The shared counters `Arc` is reused, so cumulative stats survive
    /// the swap; drift-monitor state and self-tuned thresholds restart
    /// from the new spec — that reset is the point of the promotion.
    fn apply_spec(&mut self, class_idx: usize) {
        self.sync();
        let Some(old) = self.pipelines.get_mut(class_idx).and_then(Option::take) else {
            return;
        };
        let rows = old.into_action().buffer;
        let (spec, class_str, counters) = {
            let table = self.shared.table.read().expect("class table poisoned");
            let entry = &table.classes[class_idx];
            let spec = entry.spec.read().expect("spec lock poisoned").clone();
            (spec, entry.class.as_str().to_string(), Arc::clone(&entry.counters))
        };
        let action = PooledRetrain {
            class_idx,
            capacity: spec.config.buffer_capacity,
            arity: self.feature_names.len(),
            buffer: VecDeque::with_capacity(spec.config.buffer_capacity),
            feature_names: Arc::clone(&self.feature_names),
            shared: Arc::clone(&self.shared),
            job_tx: self.job_tx.clone(),
            trace_parent: None,
        };
        let mut pipeline = AdaptationPipeline::with_counters(
            &spec.config,
            Arc::clone(&spec.policy),
            counters,
            action,
        );
        if let Some(registry) = &self.shared.telemetry {
            pipeline.set_instruments(PipelineInstruments::resolve(registry.as_ref(), &class_str));
        }
        pipeline.set_trace(self.shared.trace.clone(), &class_str);
        if let Some(journal) = &self.journal {
            pipeline.set_journal(Arc::clone(journal), &class_str);
        }
        // Carry the training window across; if the new capacity is
        // smaller, the pooled buffer drops the oldest rows itself.
        for (row, ttf) in rows {
            pipeline.action_mut().buffer(row, ttf);
        }
        let buffered = pipeline.action().buffered() as u64;
        self.shared.class(class_idx).counters.buffered.store(buffered, Ordering::Relaxed);
        self.pipelines[class_idx] = Some(pipeline);
    }
}

/// The ingest loop: drain the ring and route every batch into its class's
/// [`AdaptationPipeline`]; the pipelines' pooled retrain actions snapshot
/// and enqueue refit jobs when a class's trigger and gate line up. Control
/// messages (retirements) and new class table entries are picked up
/// between batches.
fn ingest(
    rx: BusReceiver,
    ctrl_rx: Receiver<RouterCtrl>,
    mut pipelines: IngestPipelines,
    ingest_latency: HistogramHandle,
    stop: Arc<AtomicBool>,
) {
    // `IngestPipelines` owns the only long-lived job sender (the actions
    // hold clones), so worker shutdown still hinges on the ingest thread
    // exiting and dropping it. The pipelines themselves were built on the
    // caller's thread (spawn), where a journal replay may already have
    // run through them.
    let drain_ctrl = |pipelines: &mut IngestPipelines| {
        while let Ok(ctrl) = ctrl_rx.try_recv() {
            match ctrl {
                RouterCtrl::Retire { from, into } => pipelines.retire(from, into),
                RouterCtrl::ApplySpec { idx } => pipelines.apply_spec(idx),
            }
        }
    };

    loop {
        drain_ctrl(&mut pipelines);
        if stop.load(Ordering::Acquire) {
            for batch in rx.drain() {
                let span = ingest_latency.span();
                pipelines.process(batch);
                span.finish();
            }
            drain_ctrl(&mut pipelines);
            break;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(batch)) => {
                let span = ingest_latency.span();
                pipelines.process(batch);
                span.finish();
            }
            Ok(None) => {}
            Err(crate::BusDisconnected) => break,
        }
    }
    // After the final drain, so recovery tests can compare a live run's
    // end state against a journal replay, class by class and bit by bit.
    pipelines.publish_digests();
}

/// One pool worker: pull refit jobs, fit, publish into the class's model
/// service and bump its pipeline counters.
///
/// A panicking learner takes down neither the worker nor the router: the
/// fit/publish path runs under `catch_unwind`, a panic dumps the flight
/// recorder (once per process — the same gate the fleet's panic paths
/// use) and counts as a failed retrain, and the class's in-flight flag is
/// released either way so the class can retrain again.
fn refit_worker(shared: Arc<RouterShared>, job_rx: Arc<Mutex<Receiver<RefitJob>>>) {
    loop {
        // Hold the lock only for the blocking receive — fitting runs
        // unlocked so the pool really works jobs in parallel.
        let job = match job_rx.lock().expect("job queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let class = shared.class(job.class_idx);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let started = class.trace.emit(
                EventScope::root().class(class.class.as_str()).parent(job.parent),
                EventKind::RefitStarted { rows: job.dataset.len() as u64 },
            );
            // Snapshot the learner up front: a concurrent spec swap must
            // not change which learner fits *this* job half-way through.
            let learner = Arc::clone(&*class.learner.read().expect("learner lock poisoned"));
            let span = class.refit_duration.span();
            let fitted = learner.fit_dyn(&job.dataset);
            span.finish();
            match fitted {
                Ok(model) => {
                    let finished = class.trace.emit(
                        EventScope::root().class(class.class.as_str()).parent(started),
                        EventKind::RefitFinished { ok: true },
                    );
                    class.service.publish_traced(Arc::from(model), finished);
                    class.counters.retrains.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let _ = class.trace.emit(
                        EventScope::root().class(class.class.as_str()).parent(started),
                        EventKind::RefitFinished { ok: false },
                    );
                    class.counters.failed_retrains.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
        if outcome.is_err() {
            if let Some(recorder) = &shared.recorder {
                recorder
                    .dump_once(&format!("refit worker panicked fitting class `{}`", class.class));
            }
            class.counters.failed_retrains.fetch_add(1, Ordering::Relaxed);
        }
        // Outside the unwind guard: released on success AND panic, or the
        // class would never retrain again and `quiesce` would hang on the
        // job accounting.
        class.inflight.store(false, Ordering::Release);
        shared.jobs_done.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DriftConfig, LabelledCheckpoint, QuantileAdaptive};
    use aging_ml::linreg::LinRegLearner;
    use aging_ml::Learner;

    fn line_model(slope: f64) -> Arc<dyn Regressor> {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..30 {
            ds.push_row(vec![i as f64], slope * i as f64).unwrap();
        }
        Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
    }

    fn quick_adapt(threshold: f64) -> AdaptConfig {
        AdaptConfig::builder()
            .drift(DriftConfig {
                enabled: true,
                ewma_alpha: 0.4,
                error_threshold_secs: threshold,
                min_observations: 8,
                trend_window: 64,
                trend_tolerance_secs: 100.0,
                trend_slope_threshold: 5.0,
                cooldown_observations: 40,
            })
            .buffer_capacity(512)
            .min_buffer_to_retrain(40)
            .bus_capacity(256)
            .build()
    }

    fn spec(slope: f64, threshold: f64) -> ClassSpec {
        ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(slope))
            .config(quick_adapt(threshold))
            .build()
    }

    fn batch(
        class: &ServiceClass,
        xs: impl IntoIterator<Item = (f64, f64, Option<f64>)>,
    ) -> CheckpointBatch {
        CheckpointBatch {
            source: format!("src-{class}"),
            class: class.clone(),
            checkpoints: xs
                .into_iter()
                .map(|(x, y, pred)| LabelledCheckpoint::new(vec![x], y, pred))
                .collect(),
        }
    }

    /// The isolation claim in miniature: class A's regime shifts and only
    /// class A retrains; class B's buffer, drift monitor and generation
    /// counter never notice.
    #[test]
    fn shifted_class_retrains_without_touching_the_other() {
        let a = ServiceClass::new("leaky");
        let b = ServiceClass::new("stable");
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(a.clone(), spec(2.0, 150.0))
            .class(b.clone(), spec(1.0, 150.0))
            .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(128).build())
            .spawn();
        let bus = router.bus();
        // Class A: truth shifts to y = -2x + 500, served by stale y = 2x.
        let truth_a = |x: f64| 500.0 - 2.0 * x;
        for chunk in 0..6 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, truth_a(x), Some(2.0 * x))
            });
            assert!(bus.publish(batch(&a, xs)));
        }
        // Class B: the model is exact, errors are zero.
        for chunk in 0..6 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, x, Some(x))
            });
            assert!(bus.publish(batch(&b, xs)));
        }
        assert!(router.quiesce(Duration::from_secs(30)), "bus + pool must settle");
        let stats = router.shutdown();
        let sa = stats.class(&a).unwrap();
        let sb = stats.class(&b).unwrap();
        assert!(sa.drift_events >= 1, "class A must drift: {sa:?}");
        assert!(sa.retrains >= 1, "class A must retrain: {sa:?}");
        assert!(sa.generations_published >= 1);
        assert_eq!(sb.drift_events, 0, "class B must stay quiet: {sb:?}");
        assert_eq!(sb.generations_published, 0);
        assert_eq!(sa.ingested_checkpoints, 192);
        assert_eq!(sb.ingested_checkpoints, 192);
        assert_eq!(stats.unrouted_checkpoints, 0);
    }

    #[test]
    fn per_class_models_track_their_own_regime() {
        let a = ServiceClass::new("a");
        let b = ServiceClass::new("b");
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(a.clone(), spec(1.0, 100.0))
            .class(b.clone(), spec(1.0, 100.0))
            .spawn();
        let bus = router.bus();
        // Different ground truths per class, both far from the initial fit.
        let truth_a = |x: f64| 5.0 * x + 100.0;
        let truth_b = |x: f64| -4.0 * x + 900.0;
        for chunk in 0..5 {
            bus.publish(batch(
                &a,
                (0..40).map(|i| {
                    let x = (chunk * 40 + i) as f64 * 0.2;
                    (x, truth_a(x), Some(x))
                }),
            ));
            bus.publish(batch(
                &b,
                (0..40).map(|i| {
                    let x = (chunk * 40 + i) as f64 * 0.2;
                    (x, truth_b(x), Some(x))
                }),
            ));
        }
        assert!(router.quiesce(Duration::from_secs(30)));
        let model_a = router.model_service(&a).unwrap().snapshot();
        let model_b = router.model_service(&b).unwrap().snapshot();
        assert!(model_a.generation >= 1 && model_b.generation >= 1);
        let (pa, pb) = (model_a.model.predict(&[10.0]), model_b.model.predict(&[10.0]));
        assert!((pa - truth_a(10.0)).abs() < 40.0, "class A tracks its regime: {pa}");
        assert!((pb - truth_b(10.0)).abs() < 40.0, "class B tracks its regime: {pb}");
        router.shutdown();
    }

    #[test]
    fn unrouted_classes_are_counted_and_discarded() {
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(ServiceClass::new("known"), spec(1.0, 100.0))
            .spawn();
        let bus = router.bus();
        bus.publish(batch(&ServiceClass::new("unknown"), (0..7).map(|i| (i as f64, 1.0, None))));
        assert!(router.quiesce(Duration::from_secs(10)));
        let stats = router.shutdown();
        assert_eq!(stats.unrouted_checkpoints, 7);
        assert_eq!(stats.ingested_checkpoints, 0);
    }

    #[test]
    fn many_classes_share_a_bounded_pool() {
        // 8 classes, 2 workers: every class still gets its refit — the
        // pool serialises, nothing deadlocks, nothing is lost.
        let classes: Vec<(ServiceClass, ClassSpec)> = (0..8)
            .map(|i| {
                let config = AdaptConfig::builder()
                    .drift(DriftConfig::disabled())
                    .buffer_capacity(512)
                    .min_buffer_to_retrain(40)
                    .retrain_every(50)
                    .bus_capacity(256)
                    .build();
                (
                    ServiceClass::new(format!("c{i}")),
                    ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(1.0))
                        .config(config)
                        .build(),
                )
            })
            .collect();
        let names: Vec<ServiceClass> = classes.iter().map(|(c, _)| c.clone()).collect();
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .classes(classes)
            .config(RouterConfig::builder().retrainer_threads(2).bus_capacity(512).build())
            .spawn();
        let bus = router.bus();
        for class in &names {
            bus.publish(batch(class, (0..60).map(|i| (i as f64, 3.0 * i as f64, None))));
        }
        assert!(router.quiesce(Duration::from_secs(60)));
        let stats = router.shutdown();
        for class in &names {
            let s = stats.class(class).unwrap();
            assert!(s.retrains >= 1, "class {class} must have retrained: {s:?}");
        }
        assert_eq!(
            stats.generations_published,
            stats.classes.iter().map(|c| c.stats.retrains).sum::<u64>()
        );
    }

    /// A quantile policy on the router: after the first publish, the
    /// class's effective thresholds must reflect its own error window and
    /// the rejuvenation override must surface on its model service.
    #[test]
    fn quantile_policy_surfaces_per_class_thresholds() {
        let a = ServiceClass::new("tuned");
        let policy = Arc::new(QuantileAdaptive { min_samples: 8, ..Default::default() });
        // One-shot drift (the cooldown outlasts the test): exactly one
        // publish, so the policy's post-publish derivation is never reset
        // by a second generation landing mid-stabilisation.
        let mut config = quick_adapt(150.0);
        config.drift.cooldown_observations = 10_000;
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(
                a.clone(),
                ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(2.0))
                    .config(config)
                    .policy(policy)
                    .build(),
            )
            .spawn();
        let bus = router.bus();
        // Stale model y = 2x, truth shifted: large errors → drift →
        // enqueue → refit lands. Quiescing between chunks makes the
        // landing deterministic; the chunks that follow it provide the
        // fresh post-publish error window the policy derives from.
        let truth = |x: f64| 500.0 - 2.0 * x;
        for chunk in 0..8 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, truth(x), Some(2.0 * x))
            });
            bus.publish(batch(&a, xs));
            assert!(router.quiesce(Duration::from_secs(30)));
        }
        let stats = router.shutdown();
        let sa = stats.class(&a).unwrap();
        assert!(sa.retrains >= 1, "{sa:?}");
        assert_ne!(
            sa.effective_error_threshold_secs, 150.0,
            "the drift level must have been re-derived from the error window: {sa:?}"
        );
        assert!(sa.effective_error_threshold_secs.is_finite());
        assert!(
            sa.effective_rejuvenation_threshold_secs.is_some(),
            "the rejuvenation override must surface in the stats: {sa:?}"
        );
    }

    /// Dynamic registration: a class added while the router runs serves
    /// its initial model immediately and adapts like a built-in class.
    #[test]
    fn dynamically_registered_class_adapts() {
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(ServiceClass::new("seed"), spec(1.0, 150.0))
            .spawn();
        let discovered = ServiceClass::new("discovered-1");
        let service = router.register_class(discovered.clone(), spec(2.0, 150.0)).unwrap();
        assert_eq!(service.generation(), 0);
        assert!(
            matches!(
                router.register_class(discovered.clone(), spec(2.0, 150.0)),
                Err(RouterError::DuplicateClass(_))
            ),
            "names must stay unique"
        );
        let bus = router.bus();
        // Shifted truth against the stale y = 2x initial: drift → refit.
        let truth = |x: f64| 500.0 - 2.0 * x;
        for chunk in 0..6 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, truth(x), Some(2.0 * x))
            });
            assert!(bus.publish(batch(&discovered, xs)));
        }
        assert!(router.quiesce(Duration::from_secs(30)));
        let stats = router.shutdown();
        assert_eq!(stats.dynamic_registrations, 1);
        let sd = stats.class(&discovered).unwrap();
        assert!(sd.retrains >= 1, "the dynamic class must retrain: {sd:?}");
        assert_eq!(sd.ingested_checkpoints, 192);
        assert_eq!(stats.unrouted_checkpoints, 0);
    }

    /// Retirement: the retired class's buffer drains into the merge
    /// target, future batches naming it route there, and the stats flag
    /// it.
    #[test]
    fn retired_class_drains_into_the_merge_target() {
        let a = ServiceClass::new("a");
        let b = ServiceClass::new("b");
        // Drift disabled: only buffers move, no refits muddy the counts.
        let quiet = AdaptConfig::builder()
            .drift(DriftConfig::disabled())
            .buffer_capacity(512)
            .min_buffer_to_retrain(40)
            .build();
        let make_spec = || {
            ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(1.0))
                .config(quiet)
                .build()
        };
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(a.clone(), make_spec())
            .class(b.clone(), make_spec())
            .spawn();
        let bus = router.bus();
        bus.publish(batch(&a, (0..30).map(|i| (i as f64, i as f64, None))));
        bus.publish(batch(&b, (0..10).map(|i| (i as f64, i as f64, None))));
        assert!(router.quiesce(Duration::from_secs(10)));

        assert!(matches!(router.retire_class(&a, &a), Err(RouterError::SelfMerge(_))));
        assert!(matches!(
            router.retire_class(&ServiceClass::new("nope"), &b),
            Err(RouterError::UnknownClass(_))
        ));
        router.retire_class(&a, &b).unwrap();
        assert!(matches!(router.retire_class(&a, &b), Err(RouterError::RetiredClass(_))));
        // Batches still naming the retired class must land in the target.
        bus.publish(batch(&a, (0..5).map(|i| (i as f64, i as f64, None))));
        assert!(router.quiesce(Duration::from_secs(10)));
        let stats = router.shutdown();
        assert_eq!(stats.retired_classes, 1);
        let sa = stats.classes.iter().find(|c| c.class == a).unwrap();
        let sb = stats.classes.iter().find(|c| c.class == b).unwrap();
        assert!(sa.retired && !sb.retired);
        assert_eq!(sa.stats.ingested_checkpoints, 30, "counters freeze at retirement");
        assert_eq!(sb.stats.ingested_checkpoints, 15, "post-retirement batches route to b");
        assert_eq!(sb.stats.buffered, 45, "a's 30 drained rows + b's own 15: {sb:?}");
        assert_eq!(stats.unrouted_checkpoints, 0);
    }

    /// Live spec swap: a class frozen under a drift-disabled spec starts
    /// retraining once a drift-enabled spec is applied, because the swap
    /// carries the buffered training window across. Cumulative counters
    /// survive the swap; the stats record it.
    #[test]
    fn applied_spec_swaps_policy_and_carries_the_buffer() {
        let a = ServiceClass::new("a");
        let frozen = ClassSpec::builder(Arc::new(LinRegLearner::default()), line_model(2.0))
            .config(
                AdaptConfig::builder()
                    .drift(DriftConfig::disabled())
                    .buffer_capacity(512)
                    .min_buffer_to_retrain(40)
                    .build(),
            )
            .build();
        let router = AdaptiveRouter::builder(vec!["x".into()]).class(a.clone(), frozen).spawn();
        let bus = router.bus();
        // Truth shifts to y = 500 − 2x while the served model says y = 2x.
        let truth = |x: f64| 500.0 - 2.0 * x;
        let shifted = |chunk: usize| {
            (0..32).map(move |i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, truth(x), Some(2.0 * x))
            })
        };
        for chunk in 0..3 {
            assert!(bus.publish(batch(&a, shifted(chunk))));
        }
        assert!(router.quiesce(Duration::from_secs(10)));
        // Frozen spec: huge errors, but drift is off — no retrain.
        assert_eq!(router.stats().class(&a).unwrap().retrains, 0);

        assert!(matches!(
            router.apply_spec(&ServiceClass::new("nope"), spec(1.0, 150.0)),
            Err(RouterError::UnknownClass(_))
        ));
        router.apply_spec(&a, spec(1.0, 150.0)).unwrap();
        for chunk in 3..6 {
            assert!(bus.publish(batch(&a, shifted(chunk))));
        }
        assert!(router.quiesce(Duration::from_secs(30)));
        let stats = router.shutdown();
        assert_eq!(stats.applied_specs, 1);
        let sa = stats.class(&a).unwrap();
        assert!(sa.drift_events >= 1, "the swapped-in drift detector must fire: {sa:?}");
        assert!(sa.retrains >= 1, "the swapped-in spec must retrain: {sa:?}");
        assert_eq!(sa.ingested_checkpoints, 192, "counters survive the swap");
    }

    /// A retired class rejects spec swaps.
    #[test]
    fn applied_spec_rejects_retired_classes() {
        let a = ServiceClass::new("a");
        let b = ServiceClass::new("b");
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(a.clone(), spec(1.0, 1e9))
            .class(b.clone(), spec(1.0, 1e9))
            .spawn();
        router.retire_class(&a, &b).unwrap();
        assert!(matches!(
            router.apply_spec(&a, spec(1.0, 150.0)),
            Err(RouterError::RetiredClass(_))
        ));
        router.shutdown();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_class_rejected() {
        let _ = AdaptiveRouter::builder(vec!["x".into()])
            .class(ServiceClass::new("x"), spec(1.0, 100.0))
            .class(ServiceClass::new("x"), spec(1.0, 100.0))
            .spawn();
    }

    #[test]
    #[should_panic(expected = "at least one service class")]
    fn empty_router_rejected() {
        let _ = AdaptiveRouter::builder(vec!["x".into()]).spawn();
    }

    /// A learner that panics inside the pool worker — the synthetic
    /// counterpart of a crashing third-party training library.
    #[derive(Debug)]
    struct PanicLearner;

    impl DynLearner for PanicLearner {
        fn fit_dyn(&self, _data: &Dataset) -> Result<Box<dyn Regressor>, aging_ml::MlError> {
            panic!("synthetic refit panic");
        }
    }

    /// Satellite hardening: a panicking refit must not take down the pool
    /// worker or wedge the class — the panic dumps the flight recorder
    /// exactly once, counts as a failed retrain, releases the in-flight
    /// flag, and the router keeps ingesting and quiescing normally.
    #[test]
    fn panicking_refit_dumps_recorder_once_and_router_survives() {
        let recorder = Arc::new(FlightRecorder::with_capacity(256));
        let class = ServiceClass::new("crashy");
        let spec = ClassSpec::builder(Arc::new(PanicLearner), line_model(2.0))
            .config(quick_adapt(50.0))
            .build();
        let router = AdaptiveRouter::builder(vec!["x".into()])
            .class(class.clone(), spec)
            .config(RouterConfig::builder().retrainer_threads(1).bus_capacity(64).build())
            .trace(Arc::clone(&recorder))
            .spawn();
        let bus = router.bus();
        let truth = |x: f64| 500.0 - 2.0 * x;
        for chunk in 0..6 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.3;
                (x, truth(x), Some(2.0 * x))
            });
            assert!(bus.publish(batch(&class, xs)));
            // Quiesce between chunks so every panicked job settles before
            // the next trigger can fire.
            assert!(router.quiesce(Duration::from_secs(30)));
        }
        let stats = router.shutdown();
        let s = stats.class(&class).unwrap();
        assert!(s.failed_retrains >= 1, "panicked refits must be counted: {s:?}");
        assert_eq!(s.generations_published, 0, "a panicking learner never publishes");
        assert_eq!(s.ingested_checkpoints, 192, "ingestion must survive the panics");
        assert_eq!(recorder.dumped(), 1, "the flight recorder dumps exactly once");
    }
}
