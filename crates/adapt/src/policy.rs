//! Pluggable self-tuning threshold policies for the adaptation pipeline.
//!
//! Two thresholds govern the paper's observe → detect → retrain → act
//! loop, and both started life as hand-picked constants:
//!
//! - the **drift level** ([`crate::DriftConfig::error_threshold_secs`]):
//!   the smoothed absolute TTF error above which the serving model counts
//!   as stale and a retrain fires;
//! - the **rejuvenation trigger** (`RejuvenationPolicy::Predictive`'s
//!   `threshold_secs`, the paper's 420 s): the predicted TTF below which a
//!   deployment proactively restarts.
//!
//! Hand-picking works for one service; it does not scale to a
//! heterogeneous fleet where every [`crate::ServiceClass`] has its own
//! error regime. A [`ThresholdPolicy`] closes the loop instead: **every
//! model publish arms a derivation** — the
//! [`crate::AdaptationPipeline`] collects the absolute errors
//! attributable to the newly published generation (via each checkpoint's
//! generation tag) and consults the policy until it answers, then applies
//! the derived thresholds — to the drift monitor immediately, and to the
//! serving side through
//! [`crate::ModelService::rejuvenation_threshold_secs`], which the fleet
//! engine re-reads at every epoch boundary.
//!
//! [`FixedThresholds`] reproduces the constant behaviour exactly (it never
//! moves anything — the bit-identical default). [`QuantileAdaptive`]
//! re-derives both thresholds from the observed error quantiles, so a
//! class whose natural error level is 2000 s and a class whose level is
//! 100 s both get a drift bar just above their own noise floor — no
//! per-class constants in any spec.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The pair of operating thresholds a policy controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Drift error-level threshold in force, seconds of smoothed absolute
    /// TTF error (see [`crate::DriftConfig::error_threshold_secs`]).
    pub error_threshold_secs: f64,
    /// Effective predictive-rejuvenation threshold, seconds of predicted
    /// TTF. `None` leaves each instance's configured policy threshold in
    /// force; `Some` overrides it fleet-side from the next epoch on.
    pub rejuvenation_threshold_secs: Option<f64>,
}

/// Decides the operating thresholds from the observed error stream.
///
/// Implementations must be [`Send`]`+`[`Sync`]: one policy instance may be
/// shared by several classes (each pipeline consults it with its *own*
/// error window and current thresholds, so a shared instance still tunes
/// every class independently). Every publish *arms* a derivation: from
/// then on the pipeline consults the policy after each batch with the
/// finite errors observed **since that publish** — the new generation's
/// regime, not the stale errors that triggered the retrain — until the
/// policy returns an update, which disarms it until the next publish.
/// Returning `None` on a still-too-small window (see
/// [`QuantileAdaptive::min_samples`]) is how a policy waits for enough
/// evidence.
pub trait ThresholdPolicy: fmt::Debug + Send + Sync {
    /// Derives new thresholds from the finite absolute TTF errors
    /// observed since the last publish (`recent_errors`, oldest first;
    /// possibly empty) and the thresholds currently in force. Return
    /// `None` to keep `current` (and be consulted again as more errors
    /// arrive).
    ///
    /// Non-finite values returned here are ignored by the pipeline (the
    /// current thresholds stay in force), so a policy bug can never poison
    /// the drift monitor.
    fn on_publish(&self, recent_errors: &[f64], current: &Thresholds) -> Option<Thresholds>;

    /// Whether this policy never derives anything ([`FixedThresholds`]).
    /// The pipeline skips arming and all fresh-window bookkeeping for
    /// identity policies — the default configuration must not pay a
    /// per-checkpoint cost for a feature it does not use.
    fn is_identity(&self) -> bool {
        false
    }

    /// Checks the policy's parameters; called once when a pipeline is
    /// built (service/router spawn time), so configuration mistakes
    /// surface before any thread runs.
    ///
    /// # Panics
    ///
    /// Implementations should panic with a message on degenerate
    /// parameters (see [`QuantileAdaptive::validate`]); the default
    /// accepts everything.
    fn validate(&self) {}

    /// Short human-readable tag for reports and examples.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The identity policy: thresholds never move.
///
/// With `FixedThresholds` the pipeline behaves exactly like the
/// constant-threshold retrainers it replaced — the equivalence suites pin
/// this down bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedThresholds;

impl ThresholdPolicy for FixedThresholds {
    fn on_publish(&self, _recent_errors: &[f64], _current: &Thresholds) -> Option<Thresholds> {
        None
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Self-tuning thresholds derived from observed error quantiles.
///
/// After every publish, once the new generation has produced at least
/// [`QuantileAdaptive::min_samples`] finite errors:
///
/// - the **drift level** becomes `drift_margin ×
///   quantile(errors, drift_quantile)` — the bar sits a margin above the
///   class's own recent noise floor, so only a genuine regime change (not
///   the steady-state error level) re-triggers drift;
/// - the **rejuvenation trigger** becomes `rejuvenation_slack_secs +
///   quantile(errors, rejuvenation_quantile)` — the sloppier the model
///   currently is, the earlier the restart fires, compensating prediction
///   error with safety margin (the paper's fixed 420 s ≈ 300 s slack +
///   a ~120 s typical error).
///
/// Both anchors default to the **median**: right after a model swap the
/// error stream still carries epoch-spanning stragglers labelled by the
/// old generation (retrospective labelling mixes pre-swap predictions
/// into post-swap batches), and the median shrugs off that contamination
/// where a high quantile would chase it. The margin, not the quantile,
/// provides the headroom.
///
/// Both results are clamped into `[min_threshold_secs,
/// max_threshold_secs]`, so the thresholds are always finite and positive
/// whatever the error stream does; non-finite samples are ignored. The
/// property tests pin down finiteness, clamping, idempotence on constant
/// streams and monotonicity in the quantile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileAdaptive {
    /// Quantile of the recent-error window that anchors the drift level
    /// (in `[0, 1]`).
    pub drift_quantile: f64,
    /// Multiplier lifting the drift level above the anchor quantile
    /// (must be ≥ 1 to keep the bar above the observed noise).
    pub drift_margin: f64,
    /// Quantile of the recent-error window that anchors the rejuvenation
    /// trigger (in `[0, 1]`).
    pub rejuvenation_quantile: f64,
    /// Base safety margin (seconds of predicted TTF) added to the
    /// rejuvenation anchor.
    pub rejuvenation_slack_secs: f64,
    /// Below this many finite errors in the window the policy keeps the
    /// current thresholds (a handful of samples is noise, not a regime).
    pub min_samples: usize,
    /// Lower clamp for both derived thresholds, seconds.
    pub min_threshold_secs: f64,
    /// Upper clamp for the derived drift level, seconds.
    pub max_threshold_secs: f64,
    /// Upper clamp for the derived rejuvenation trigger, seconds. Kept
    /// much tighter than the drift clamp: the observable error stream is
    /// *crash-biased* (only mispredicted epochs crash and get labelled),
    /// so an uncapped `slack + quantile` would schedule restarts absurdly
    /// early whenever the model is sloppy. The cap bounds how far before
    /// a predicted crash a restart may fire.
    pub max_rejuvenation_threshold_secs: f64,
}

impl Default for QuantileAdaptive {
    fn default() -> Self {
        QuantileAdaptive {
            drift_quantile: 0.5,
            drift_margin: 4.0,
            rejuvenation_quantile: 0.5,
            rejuvenation_slack_secs: 300.0,
            min_samples: 32,
            min_threshold_secs: 60.0,
            max_threshold_secs: 86_400.0,
            max_rejuvenation_threshold_secs: 900.0,
        }
    }
}

impl QuantileAdaptive {
    /// Checks the parameters; the pipeline calls this (through
    /// [`ThresholdPolicy::validate`]) when a service or router spawns, so
    /// configuration mistakes surface before any thread runs. The policy
    /// itself never panics mid-run — its arithmetic is clamped and
    /// NaN-proof, and the pipeline rejects non-finite output anyway.
    ///
    /// # Panics
    ///
    /// Panics with a message when a parameter is degenerate: quantiles
    /// outside `[0, 1]`, a sub-unit drift margin, negative slack, or an
    /// empty/unbounded clamp interval.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drift_quantile)
                && (0.0..=1.0).contains(&self.rejuvenation_quantile),
            "quantiles must lie in [0, 1]"
        );
        assert!(
            self.drift_margin.is_finite() && self.drift_margin >= 1.0,
            "drift margin must be finite and ≥ 1 (a sub-unit margin would pin the drift \
             level below the observed noise and retrain forever)"
        );
        assert!(
            self.rejuvenation_slack_secs.is_finite() && self.rejuvenation_slack_secs >= 0.0,
            "rejuvenation slack must be finite and non-negative"
        );
        assert!(
            self.min_threshold_secs > 0.0
                && self.max_threshold_secs.is_finite()
                && self.min_threshold_secs <= self.max_threshold_secs,
            "threshold clamp must satisfy 0 < min ≤ max < ∞"
        );
        assert!(
            self.max_rejuvenation_threshold_secs.is_finite()
                && self.min_threshold_secs <= self.max_rejuvenation_threshold_secs,
            "rejuvenation cap must be finite and at least the lower clamp"
        );
    }

    /// Nearest-rank quantile over the *finite* entries of `errors`;
    /// `None` when fewer than `min_samples` finite entries exist.
    ///
    /// Monotone in `q` (a higher quantile never yields a smaller value)
    /// and insensitive to NaN/inf lacing by construction.
    fn finite_quantile(&self, errors: &[f64], q: f64) -> Option<f64> {
        let mut finite: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
        if finite.len() < self.min_samples.max(1) {
            return None;
        }
        finite.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let idx = ((finite.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(finite[idx])
    }

    fn clamp(&self, secs: f64) -> f64 {
        secs.clamp(self.min_threshold_secs, self.max_threshold_secs)
    }

    fn clamp_rejuvenation(&self, secs: f64) -> f64 {
        secs.clamp(self.min_threshold_secs, self.max_rejuvenation_threshold_secs)
    }
}

impl ThresholdPolicy for QuantileAdaptive {
    fn validate(&self) {
        QuantileAdaptive::validate(self);
    }

    fn on_publish(&self, recent_errors: &[f64], current: &Thresholds) -> Option<Thresholds> {
        let drift_anchor = self.finite_quantile(recent_errors, self.drift_quantile)?;
        let rejuvenation_anchor = self
            .finite_quantile(recent_errors, self.rejuvenation_quantile)
            .expect("same window, lower-or-equal sample requirement");
        let derived = Thresholds {
            error_threshold_secs: self.clamp(self.drift_margin * drift_anchor),
            rejuvenation_threshold_secs: Some(
                self.clamp_rejuvenation(self.rejuvenation_slack_secs + rejuvenation_anchor),
            ),
        };
        if derived == *current {
            None
        } else {
            Some(derived)
        }
    }

    fn name(&self) -> &'static str {
        "quantile-adaptive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn current() -> Thresholds {
        Thresholds { error_threshold_secs: 900.0, rejuvenation_threshold_secs: None }
    }

    #[test]
    fn fixed_policy_never_moves() {
        let policy = FixedThresholds;
        assert_eq!(policy.on_publish(&[1.0, 2.0, 3.0], &current()), None);
        assert_eq!(policy.on_publish(&[], &current()), None);
        assert_eq!(policy.name(), "fixed");
    }

    #[test]
    fn quantile_policy_waits_for_min_samples() {
        let policy = QuantileAdaptive { min_samples: 10, ..Default::default() };
        assert_eq!(policy.on_publish(&[100.0; 9], &current()), None, "9 < min_samples");
        assert!(policy.on_publish(&[100.0; 10], &current()).is_some());
    }

    #[test]
    fn constant_stream_derives_margin_times_level() {
        let policy = QuantileAdaptive::default();
        let errors = [120.0; 64];
        let t = policy.on_publish(&errors, &current()).expect("enough samples");
        assert_eq!(t.error_threshold_secs, 480.0, "4 × the constant level");
        assert_eq!(t.rejuvenation_threshold_secs, Some(420.0), "300 s slack + the level");
        // Idempotent: publishing again from the same stream keeps the
        // thresholds (reported as "no change").
        assert_eq!(policy.on_publish(&errors, &t), None);
    }

    #[test]
    fn nan_and_inf_samples_are_ignored() {
        let policy = QuantileAdaptive { min_samples: 4, ..Default::default() };
        let clean = [80.0, 80.0, 80.0, 80.0];
        let dirty = [f64::NAN, 80.0, f64::INFINITY, 80.0, 80.0, f64::NEG_INFINITY, 80.0, f64::NAN];
        let a = policy.on_publish(&clean, &current()).unwrap();
        let b = policy.on_publish(&dirty, &current()).unwrap();
        assert_eq!(a, b, "non-finite lacing must not move the derived thresholds");
        assert!(a.error_threshold_secs.is_finite());
    }

    #[test]
    fn all_nan_window_keeps_current() {
        let policy = QuantileAdaptive { min_samples: 2, ..Default::default() };
        assert_eq!(policy.on_publish(&[f64::NAN; 32], &current()), None);
    }

    #[test]
    fn clamps_apply_to_both_thresholds() {
        let policy = QuantileAdaptive {
            min_threshold_secs: 200.0,
            max_threshold_secs: 5_000.0,
            max_rejuvenation_threshold_secs: 500.0,
            min_samples: 1,
            ..Default::default()
        };
        let low = policy.on_publish(&[1.0; 8], &current()).unwrap();
        assert_eq!(low.error_threshold_secs, 200.0);
        assert_eq!(low.rejuvenation_threshold_secs, Some(301.0), "300 s slack + 1 s anchor");
        let high = policy.on_publish(&[1e9; 8], &current()).unwrap();
        assert_eq!(high.error_threshold_secs, 5_000.0, "drift level hits its own cap");
        assert_eq!(
            high.rejuvenation_threshold_secs,
            Some(500.0),
            "the rejuvenation trigger has a tighter cap than the drift level"
        );
    }

    #[test]
    #[should_panic(expected = "quantiles")]
    fn degenerate_quantile_rejected() {
        QuantileAdaptive { drift_quantile: 1.5, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "drift margin")]
    fn sub_unit_margin_rejected() {
        QuantileAdaptive { drift_margin: 0.5, ..Default::default() }.validate();
    }
}
