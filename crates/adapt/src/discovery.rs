//! Automatic service-class discovery: cluster instances by their observed
//! aging signature.
//!
//! PR 3/4 gave every [`crate::ServiceClass`] its own adaptation pipeline
//! and self-tuned thresholds — but the classes themselves were still
//! operator-assigned. This module closes that loop:
//!
//! ```text
//!  per-instance labelled-checkpoint stream
//!        │ SignatureAccumulator (one per instance)
//!        ▼
//!  aging-signature vector  — error quantiles ⊕ drift-EWMA level ⊕
//!        │                   segmentation trend slope ⊕ root-cause mix
//!        ▼
//!  ClassDiscovery::evaluate — standardise ⊕ seeded k-means
//!        │                    (silhouette-gated split, centroid-distance
//!        │                    merge; at most one structural change per
//!        ▼                    evaluation, so partitions cannot oscillate)
//!  DiscoveryOutcome — stable class ids, new classes (with the nearest
//!                     existing class to inherit a model from), retirements
//! ```
//!
//! The signature is deliberately built from the same machinery the rest of
//! the adaptation stack trusts: error quantiles through
//! [`aging_dataset::stats::quantile`] (which treats non-finite values as
//! missing observations), the trend through
//! [`aging_ml::segment::diagnose`], and clustering through
//! [`aging_ml::cluster`]. Every signature component is **finite by
//! construction** whatever the error stream carries — the property tests
//! lace the streams with NaN/±inf to pin this down.
//!
//! Class ids handed out by [`ClassDiscovery`] are stable across
//! evaluations: clusters are matched to existing classes by centroid
//! distance, so "the leak class" keeps its id (and therefore its router
//! pipeline, model generations and threshold state) from one epoch
//! boundary to the next. Unmatched clusters become *new* classes seeded
//! from the nearest existing one; unmatched classes are *retired* into the
//! class that absorbed their members.

use crate::bus::LabelledCheckpoint;
use aging_dataset::stats;
use aging_ml::cluster::{
    apply_standardisation, evaluate_clustering, kmeans_from, silhouette, standardise, Clustering,
    KMeansConfig,
};
use aging_ml::segment::{diagnose, SeriesDiagnosis};
use aging_obs::{NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Resource categories of the root-cause mix — the same buckets
/// `aging_core::rootcause` reports (duplicated here because the adapt
/// crate sits below `aging_core` in the dependency graph): Java heap,
/// process/system memory, threads, load signals, everything else.
pub const N_RESOURCE_CATEGORIES: usize = 5;

/// Classifies a Table-2 variable name into one of the
/// [`N_RESOURCE_CATEGORIES`] root-cause buckets (mirrors
/// `aging_core::rootcause::categorize`).
fn resource_category(variable: &str) -> usize {
    if variable.contains("young") || variable.contains("old") {
        0 // Java heap
    } else if variable.contains("mem") || variable.contains("swap") {
        1 // memory
    } else if variable.contains("thread") {
        2 // threads
    } else if variable.contains("throughput")
        || variable.contains("response")
        || variable.contains("load")
        || variable.contains("workload")
        || variable.contains("connections")
    {
        3 // load
    } else {
        4 // other
    }
}

/// Tuning for the per-instance [`SignatureAccumulator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignatureConfig {
    /// Sliding window of recent finite absolute errors the quantiles and
    /// trend are computed over — the window is what makes the signature
    /// track the *current* regime after a workload shift.
    pub error_window: usize,
    /// EWMA smoothing factor in `(0, 1]` for the drift-level component.
    pub ewma_alpha: f64,
    /// Residual tolerance (seconds) for the trend segmentation.
    pub trend_tolerance_secs: f64,
    /// Slope threshold (seconds per observation) above which the trend
    /// component reports degradation.
    pub trend_slope_threshold: f64,
    /// Minimum finite errors before the accumulator produces a signature
    /// (an instance with two labelled checkpoints is noise, not a regime).
    pub min_errors: usize,
    /// Clamp for error-derived components, seconds — keeps one absurd
    /// label from dominating the standardised space.
    pub error_cap_secs: f64,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            error_window: 256,
            ewma_alpha: 0.2,
            trend_tolerance_secs: 600.0,
            trend_slope_threshold: 10.0,
            min_errors: 12,
            error_cap_secs: 10_800.0,
        }
    }
}

impl SignatureConfig {
    /// Panics with a message when a parameter is degenerate.
    pub fn validate(&self) {
        assert!(self.error_window >= 2, "error window needs at least 2 observations");
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1], got {}",
            self.ewma_alpha
        );
        assert!(self.trend_tolerance_secs > 0.0, "trend tolerance must be positive");
        assert!(
            self.trend_slope_threshold >= 0.0 && self.trend_slope_threshold.is_finite(),
            "trend slope threshold must be finite and non-negative"
        );
        assert!(self.min_errors >= 1, "min_errors must be at least 1");
        assert!(
            self.error_cap_secs.is_finite() && self.error_cap_secs > 0.0,
            "error cap must be finite and positive"
        );
    }
}

/// Number of components in an aging-signature vector: three error
/// quantiles, the EWMA level, the trend slope, and the root-cause mix.
pub const SIGNATURE_DIM: usize = 5 + N_RESOURCE_CATEGORIES;

/// Streams one instance's labelled checkpoints into an aging-signature
/// vector:
///
/// `[q25, q50, q90 of recent |error|, error EWMA, trend slope,
///   mix(heap), mix(memory), mix(threads), mix(load), mix(other)]`
///
/// The root-cause mix is a per-category **monotonicity index** of the
/// feature columns' checkpoint-to-checkpoint deltas: `Σdelta / Σ|delta|`,
/// bounded in `[-1, 1]`. A genuinely leaking resource moves in one
/// direction and scores near `±1`; a churning one (GC sawtooth, load
/// oscillation) cancels itself toward `0` — so instances cluster by
/// *what* is aging, not only by how badly the model mispredicts, and the
/// index is stable where a normalised net-drift mix would flip sign on
/// churn noise.
///
/// Non-finite errors and feature deltas are skipped (missing
/// observations), so every produced signature is finite whatever the
/// stream carries.
#[derive(Debug, Clone)]
pub struct SignatureAccumulator {
    config: SignatureConfig,
    /// Root-cause bucket of each feature column.
    categories: Vec<usize>,
    errors: VecDeque<f64>,
    ewma: Option<f64>,
    prev_row: Option<Vec<f64>>,
    cat_delta_sum: [f64; N_RESOURCE_CATEGORIES],
    cat_delta_abs: [f64; N_RESOURCE_CATEGORIES],
}

impl SignatureAccumulator {
    /// Creates an accumulator for an instance whose feature rows follow
    /// `feature_names` (the fleet's feature-set variables, in order).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate [`SignatureConfig`].
    pub fn new(config: SignatureConfig, feature_names: &[String]) -> Self {
        config.validate();
        SignatureAccumulator {
            config,
            categories: feature_names.iter().map(|n| resource_category(n)).collect(),
            errors: VecDeque::with_capacity(config.error_window),
            ewma: None,
            prev_row: None,
            cat_delta_sum: [0.0; N_RESOURCE_CATEGORIES],
            cat_delta_abs: [0.0; N_RESOURCE_CATEGORIES],
        }
    }

    /// Feeds one labelled checkpoint (typically just before it is queued
    /// for the adaptation bus).
    pub fn observe(&mut self, cp: &LabelledCheckpoint) {
        if let Some(err) = cp.abs_error_secs() {
            self.observe_error(err);
        }
        if !cp.monitor_only {
            self.observe_row(&cp.features);
        }
    }

    /// Feeds one absolute prediction error (seconds). Unlike the bus —
    /// where proactive-restart epochs deliberately contribute a single
    /// monitor observation each, to keep correlated within-epoch samples
    /// from flooding fleet-wide drift detection — the accumulator is
    /// **per instance**, so the fleet feeds it every counterfactually
    /// labelled checkpoint: under a well-tuned predictive policy crashes
    /// are rare, and restart epochs are where the signature's error
    /// evidence comes from. Non-finite errors are skipped.
    pub fn observe_error(&mut self, abs_error_secs: f64) {
        if !abs_error_secs.is_finite() {
            return;
        }
        let err = abs_error_secs.clamp(0.0, self.config.error_cap_secs);
        if self.errors.len() == self.config.error_window {
            self.errors.pop_front();
        }
        self.errors.push_back(err);
        let alpha = self.config.ewma_alpha;
        self.ewma = Some(match self.ewma {
            None => err,
            Some(prev) => alpha * err + (1.0 - alpha) * prev,
        });
    }

    /// Feeds one feature row (root-cause-mix evidence). Rows of the wrong
    /// arity are skipped; non-finite deltas are skipped.
    pub fn observe_row(&mut self, row: &[f64]) {
        if row.len() != self.categories.len() {
            return;
        }
        if let Some(prev) = &self.prev_row {
            for ((&cat, v), p) in self.categories.iter().zip(row).zip(prev) {
                let delta = v - p;
                if delta.is_finite() {
                    self.cat_delta_sum[cat] += delta;
                    self.cat_delta_abs[cat] += delta.abs();
                }
            }
        }
        self.prev_row = Some(row.to_vec());
    }

    /// Marks a service-epoch boundary: consecutive rows of *different*
    /// epochs must not contribute a growth delta (a restart resets every
    /// resource, and the spurious negative jump would wash out the mix).
    pub fn epoch_boundary(&mut self) {
        self.prev_row = None;
    }

    /// Finite errors observed so far (bounded by the window).
    pub fn observed_errors(&self) -> usize {
        self.errors.len()
    }

    /// The signature vector, or `None` while fewer than
    /// [`SignatureConfig::min_errors`] finite errors have been observed.
    /// Every component is finite.
    pub fn signature(&self) -> Option<Vec<f64>> {
        if self.errors.len() < self.config.min_errors {
            return None;
        }
        let errors: Vec<f64> = self.errors.iter().copied().collect();
        let quantile = |q: f64| stats::quantile(&errors, q).unwrap_or(0.0);
        let cap = self.config.error_cap_secs;
        let slope = match diagnose(
            &errors,
            self.config.trend_tolerance_secs,
            self.config.trend_slope_threshold,
        ) {
            SeriesDiagnosis::Degrading { mean_slope } => mean_slope.clamp(-cap, cap),
            _ => 0.0,
        };
        let mut signature =
            vec![quantile(0.25), quantile(0.5), quantile(0.9), self.ewma.unwrap_or(0.0), slope];
        // Root-cause mix: the per-category monotonicity index (see the
        // type docs) — `0` when a category never moved or pure churn.
        signature.extend((0..N_RESOURCE_CATEGORIES).map(|c| {
            if self.cat_delta_abs[c] > 0.0 {
                self.cat_delta_sum[c] / self.cat_delta_abs[c]
            } else {
                0.0
            }
        }));
        debug_assert_eq!(signature.len(), SIGNATURE_DIM);
        debug_assert!(signature.iter().all(|v| v.is_finite()));
        Some(signature)
    }
}

/// Tuning for the [`ClassDiscovery`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Hard cap on simultaneously active classes.
    pub max_classes: usize,
    /// A structural change is only accepted when every resulting cluster
    /// keeps at least this many members (one outlier instance must not
    /// spawn a class of its own).
    pub min_members: usize,
    /// A split (k → k+1) is only accepted when the k+1 clustering's mean
    /// silhouette reaches this value *and* beats the k clustering's — the
    /// shape half of the gate that keeps a stationary fleet from being
    /// carved up.
    pub split_silhouette_gate: f64,
    /// The scale half of the split gate: every pair of candidate
    /// centroids must differ by at least this **relative raw-space
    /// separation** (`‖a − b‖ / (‖a‖ + ‖b‖)`). Standardisation stretches
    /// any noise to unit variance, so a silhouette alone would happily
    /// split a fleet whose signatures differ by a few seconds; this gate
    /// demands the regimes differ *materially*.
    pub split_separation: f64,
    /// Two active classes whose centroids fall below this relative
    /// raw-space separation are merged (k → k−1): the regimes have
    /// converged and separate models would just halve each one's training
    /// data. Keep it well under [`DiscoveryConfig::split_separation`] —
    /// the hysteresis band is what prevents split/merge oscillation.
    pub merge_separation: f64,
    /// Fraction of the fleet that must have a ready signature before any
    /// clustering runs. Early in a run only a handful of instances have
    /// completed labelled epochs, and a split decided on that unlucky
    /// sample — then faithfully *tracked* by the warm-started clustering
    /// — poisons the partition for good. Below the gate, ready instances
    /// are assigned to the nearest existing class and nothing else moves.
    pub min_ready_fraction: f64,
    /// Seed for the deterministic k-means initialisation.
    pub seed: u64,
    /// Lloyd-iteration cap per k-means run.
    pub kmeans_iters: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_classes: 4,
            min_members: 2,
            split_silhouette_gate: 0.5,
            split_separation: 0.2,
            merge_separation: 0.08,
            min_ready_fraction: 0.5,
            seed: 42,
            kmeans_iters: 64,
        }
    }
}

impl DiscoveryConfig {
    /// Panics with a message when a parameter is degenerate.
    pub fn validate(&self) {
        assert!(self.max_classes >= 1, "max_classes must be at least 1");
        assert!(self.min_members >= 1, "min_members must be at least 1");
        assert!(
            self.split_silhouette_gate > 0.0 && self.split_silhouette_gate <= 1.0,
            "split gate must lie in (0, 1] (silhouettes at or below 0 mean no structure)"
        );
        assert!(
            self.split_separation.is_finite() && self.split_separation > 0.0,
            "split separation must be finite and positive"
        );
        assert!(
            self.merge_separation.is_finite()
                && self.merge_separation >= 0.0
                && self.merge_separation < self.split_separation,
            "merge separation must be finite, non-negative and below the split separation \
             (the hysteresis band prevents split/merge oscillation)"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_ready_fraction),
            "min_ready_fraction must lie in [0, 1]"
        );
        assert!(self.kmeans_iters >= 1, "kmeans_iters must be at least 1");
    }
}

/// A class created by the latest [`ClassDiscovery::evaluate`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NewClass {
    /// The stable id of the new class.
    pub id: usize,
    /// The existing class whose centroid sat nearest — the one whose
    /// published model the new class should inherit as generation 0
    /// (`None` only for the very first class of a bootstrap).
    pub seeded_from: Option<usize>,
}

/// A class retired by the latest [`ClassDiscovery::evaluate`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Retirement {
    /// The retired class.
    pub id: usize,
    /// The surviving class that absorbed its members — the router merge
    /// target.
    pub into: usize,
}

/// What one evaluation decided.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryOutcome {
    /// Per instance (same order as the input): the stable class id the
    /// instance belongs to, or `None` when the instance has no signature
    /// yet (the caller keeps its current class, re-mapped through
    /// `retired` when that class just went away).
    pub assignment: Vec<Option<usize>>,
    /// Classes created this evaluation, in id order.
    pub new_classes: Vec<NewClass>,
    /// Classes retired this evaluation.
    pub retired: Vec<Retirement>,
    /// Active classes after this evaluation.
    pub active_classes: usize,
    /// Mean silhouette of the adopted clustering (0 for a single class).
    pub silhouette: f64,
}

#[derive(Debug, Clone)]
struct ClassState {
    /// Raw-space centroid from the last evaluation that saw this class
    /// (`None` for a freshly bootstrapped class that never clustered).
    centroid: Option<Vec<f64>>,
    retired: bool,
}

/// The discovery engine: owns the stable class ids and their centroids,
/// and turns batches of instance signatures into partition decisions.
///
/// Deterministic by construction — seeded k-means, index-ordered tie
/// breaks — so the same signature streams yield the same partition
/// whatever thread count or shard layout produced them.
#[derive(Debug, Clone)]
pub struct ClassDiscovery {
    config: DiscoveryConfig,
    classes: Vec<ClassState>,
    evaluations: u64,
    splits: u64,
    merges: u64,
    /// Recorder the engine's clustering evaluations report to (wall time
    /// and evaluation counts via [`evaluate_clustering`]); defaults to
    /// [`NoopRecorder`], which costs one untaken branch per instrument.
    recorder: Arc<dyn Recorder>,
}

impl ClassDiscovery {
    /// Creates an engine with one active class (id 0) — the seed class
    /// every instance starts in.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate [`DiscoveryConfig`].
    pub fn new(config: DiscoveryConfig) -> Self {
        config.validate();
        ClassDiscovery {
            config,
            classes: vec![ClassState { centroid: None, retired: false }],
            evaluations: 0,
            splits: 0,
            merges: 0,
            recorder: Arc::new(NoopRecorder),
        }
    }

    /// Routes the engine's k-means evaluations through `recorder` — pass
    /// an [`aging_obs::Registry`] to collect `ml_cluster_eval_seconds` /
    /// `ml_cluster_evals_total` from every partition re-evaluation.
    /// Telemetry only; partition decisions are unaffected.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// Total classes ever created (retired included); ids are `0..count`.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Whether a class id is retired.
    pub fn is_retired(&self, id: usize) -> bool {
        self.classes.get(id).is_none_or(|c| c.retired)
    }

    /// Evaluations run so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Accepted splits so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Accepted merges so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    fn active_ids(&self) -> Vec<usize> {
        (0..self.classes.len()).filter(|&i| !self.classes[i].retired).collect()
    }

    /// Re-evaluates the partition over one signature per instance (`None`
    /// entries = instance not ready). At most one structural change — a
    /// split or a merge — is applied per call, which is what makes the
    /// partition stable on a stationary fleet: a change only happens when
    /// its gate clears, and the next evaluation starts from the adopted
    /// structure.
    pub fn evaluate(&mut self, signatures: &[Option<Vec<f64>>]) -> DiscoveryOutcome {
        self.evaluate_with_population(signatures, signatures.len())
    }

    /// [`evaluate`], but with the min-ready-fraction gate computed against
    /// an explicit live population instead of the slot count. Elastic
    /// fleets pre-allocate signature slots for instances that have not
    /// joined yet (and keep slots for retired ones), so the slot count
    /// over-states the fleet and would hold the gate closed forever once
    /// enough instances retire.
    ///
    /// [`evaluate`]: ClassDiscovery::evaluate
    pub fn evaluate_with_population(
        &mut self,
        signatures: &[Option<Vec<f64>>],
        live_population: usize,
    ) -> DiscoveryOutcome {
        self.evaluations += 1;
        let mut outcome = DiscoveryOutcome {
            assignment: vec![None; signatures.len()],
            new_classes: Vec::new(),
            retired: Vec::new(),
            active_classes: self.active_ids().len(),
            silhouette: 0.0,
        };
        let ready: Vec<(usize, &[f64])> = signatures
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|s| (i, s)))
            .collect();
        if ready.is_empty() {
            return outcome;
        }
        let raw: Vec<Vec<f64>> = ready.iter().map(|(_, s)| s.to_vec()).collect();
        let (std_points, scales) =
            standardise(&raw).expect("signatures are finite by construction");

        let active = self.active_ids();
        let k_cur = active.len().max(1);
        // Too few ready instances to support the current structure — or
        // too small a fraction of the fleet to be a representative sample:
        // assign to the nearest existing centroid, change nothing.
        let required_ready =
            (live_population as f64 * self.config.min_ready_fraction).ceil() as usize;
        if ready.len() < (k_cur * self.config.min_members).max(2).max(required_ready) {
            for ((instance, _), point) in ready.iter().zip(&std_points) {
                outcome.assignment[*instance] = Some(self.nearest_active(point, &scales));
            }
            return outcome;
        }

        let kconf = KMeansConfig { seed: self.config.seed, max_iters: self.config.kmeans_iters };
        // Warm-start the current-k clustering from last evaluation's class
        // centroids whenever they exist: the clustering then *tracks* the
        // slowly moving regimes instead of re-rolling k-means++ against
        // drifted points and hopping to a different local optimum (which
        // would masquerade as a structural change).
        let warm: Option<Vec<Vec<f64>>> = active
            .iter()
            .map(|&id| {
                self.classes[id].centroid.as_ref().map(|raw| apply_standardisation(raw, &scales))
            })
            .collect();
        let (base, base_sil) = match warm {
            Some(centroids) if centroids.len() == k_cur => {
                let base = kmeans_from(&std_points, centroids, self.config.kmeans_iters)
                    .expect("validated points and centroids");
                let sil = silhouette(&std_points, &base.assignments).expect("validated");
                (base, sil)
            }
            _ => evaluate_clustering(&std_points, k_cur, kconf, self.recorder.as_ref())
                .expect("validated points"),
        };

        // At most one structural change per evaluation: try the split,
        // else consider a merge, else keep the structure.
        let mut adopted = base;
        let mut adopted_sil = base_sil;
        let can_split =
            k_cur < self.config.max_classes && ready.len() >= (k_cur + 1) * self.config.min_members;
        if can_split {
            let (cand, sil) =
                evaluate_clustering(&std_points, k_cur + 1, kconf, self.recorder.as_ref())
                    .expect("validated points");
            if cand.k() == k_cur + 1 {
                let smallest = cand.sizes().into_iter().min().unwrap_or(0);
                let separation =
                    min_relative_separation(&cluster_raw_centroids(&raw, &cand, &scales));
                if sil >= self.config.split_silhouette_gate
                    && sil > adopted_sil
                    && smallest >= self.config.min_members
                    && separation >= self.config.split_separation
                {
                    adopted = cand;
                    adopted_sil = sil;
                    self.splits += 1;
                }
            }
        }
        if adopted.k() == k_cur && k_cur > 1 {
            let separation =
                min_relative_separation(&cluster_raw_centroids(&raw, &adopted, &scales));
            if separation < self.config.merge_separation {
                (adopted, adopted_sil) =
                    evaluate_clustering(&std_points, k_cur - 1, kconf, self.recorder.as_ref())
                        .expect("validated points");
                self.merges += 1;
            }
        }
        outcome.silhouette = adopted_sil;

        // Raw-space centroids of the adopted clusters (k-means ran in
        // standardised space; persistent centroids live in raw space so
        // the next evaluation can re-standardise them consistently).
        let raw_centroids = cluster_raw_centroids(&raw, &adopted, &scales);

        // Match adopted clusters to existing active classes by centroid
        // distance (greedy, deterministic). A class that never clustered
        // (fresh bootstrap) matches last but matches.
        let matches = self.match_clusters(&adopted, &scales, &active);

        // Unmatched clusters become new classes, seeded from the nearest
        // existing class (model inheritance).
        let mut cluster_to_id: Vec<Option<usize>> = matches.clone();
        for (cluster, slot) in cluster_to_id.iter_mut().enumerate() {
            if slot.is_none() {
                let id = self.classes.len();
                let seeded_from =
                    self.nearest_class_to(&adopted.centroids[cluster], &scales, &active);
                self.classes.push(ClassState { centroid: None, retired: false });
                outcome.new_classes.push(NewClass { id, seeded_from });
                *slot = Some(id);
            }
        }
        // Every matched or created class takes its cluster's raw centroid.
        for (cluster, id) in cluster_to_id.iter().enumerate() {
            let id = id.expect("every cluster mapped above");
            self.classes[id].centroid = Some(raw_centroids[cluster].clone());
        }
        // Active classes no cluster claimed are retired into the class
        // that sits nearest to their last known centroid.
        let surviving: Vec<usize> = cluster_to_id.iter().map(|id| id.expect("mapped")).collect();
        for &id in &active {
            if surviving.contains(&id) {
                continue;
            }
            let into =
                self.nearest_surviving(id, &adopted, &scales, &surviving).unwrap_or(surviving[0]);
            self.classes[id].retired = true;
            outcome.retired.push(Retirement { id, into });
        }

        for ((instance, _), &cluster) in ready.iter().zip(&adopted.assignments) {
            outcome.assignment[*instance] = Some(surviving[cluster]);
        }
        outcome.active_classes = self.active_ids().len();
        outcome
    }

    /// Greedy minimum-distance matching of adopted clusters to active
    /// classes; returns, per cluster, the matched class id (or `None`).
    fn match_clusters(
        &self,
        adopted: &Clustering,
        scales: &[(f64, f64)],
        active: &[usize],
    ) -> Vec<Option<usize>> {
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for (cluster, centroid) in adopted.centroids.iter().enumerate() {
            for &id in active {
                let d = match &self.classes[id].centroid {
                    Some(raw) => {
                        let std = apply_standardisation(raw, scales);
                        centroid
                            .iter()
                            .zip(&std)
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum::<f64>()
                            .sqrt()
                    }
                    // A class that never clustered matches anything, last.
                    None => f64::MAX,
                };
                pairs.push((d, cluster, id));
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut cluster_match: Vec<Option<usize>> = vec![None; adopted.k()];
        let mut class_used = vec![false; self.classes.len()];
        for (_, cluster, id) in pairs {
            if cluster_match[cluster].is_none() && !class_used[id] {
                cluster_match[cluster] = Some(id);
                class_used[id] = true;
            }
        }
        cluster_match
    }

    /// The active class whose centroid sits nearest to a standardised
    /// point (classes without a centroid lose all ties); falls back to the
    /// lowest active id.
    fn nearest_active(&self, point: &[f64], scales: &[(f64, f64)]) -> usize {
        let active = self.active_ids();
        self.nearest_class_to(point, scales, &active)
            .unwrap_or_else(|| *active.first().expect("at least one active class at all times"))
    }

    fn nearest_class_to(
        &self,
        point: &[f64],
        scales: &[(f64, f64)],
        active: &[usize],
    ) -> Option<usize> {
        active
            .iter()
            .filter_map(|&id| {
                self.classes[id].centroid.as_ref().map(|raw| {
                    let std = apply_standardisation(raw, scales);
                    let d: f64 =
                        point.iter().zip(&std).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
                    (d, id)
                })
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id)| id)
    }

    /// The surviving class nearest to a retiree's last known centroid.
    fn nearest_surviving(
        &self,
        id: usize,
        adopted: &Clustering,
        scales: &[(f64, f64)],
        surviving: &[usize],
    ) -> Option<usize> {
        let raw = self.classes[id].centroid.as_ref()?;
        let std = apply_standardisation(raw, scales);
        adopted
            .centroids
            .iter()
            .enumerate()
            .map(|(cluster, c)| {
                let d: f64 = std.iter().zip(c).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
                (d, surviving[cluster])
            })
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id)| id)
    }
}

/// Smallest pairwise relative separation `‖a − b‖ / (‖a‖ + ‖b‖)` among
/// raw-space centroids — the scale-aware gate quantity (`∞` for fewer
/// than two centroids).
fn min_relative_separation(centroids: &[Vec<f64>]) -> f64 {
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut min = f64::INFINITY;
    for a in 0..centroids.len() {
        for b in (a + 1)..centroids.len() {
            let d: f64 = centroids[a]
                .iter()
                .zip(&centroids[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            let scale = norm(&centroids[a]) + norm(&centroids[b]);
            min = min.min(if scale > 0.0 { d / scale } else { 0.0 });
        }
    }
    min
}

/// Mean of the raw member points per cluster. Clusters k-means left empty
/// (exact-duplicate points) fall back to their standardised centroid
/// **de-standardised** through `scales`, so every class keeps a finite
/// centroid in raw (seconds-scale) space.
fn cluster_raw_centroids(
    raw: &[Vec<f64>],
    clustering: &Clustering,
    scales: &[(f64, f64)],
) -> Vec<Vec<f64>> {
    let dim = raw.first().map_or(0, Vec::len);
    let mut sums = vec![vec![0.0f64; dim]; clustering.k()];
    let mut counts = vec![0usize; clustering.k()];
    for (point, &a) in raw.iter().zip(&clustering.assignments) {
        counts[a] += 1;
        for (s, v) in sums[a].iter_mut().zip(point) {
            *s += v;
        }
    }
    sums.into_iter()
        .zip(&counts)
        .zip(&clustering.centroids)
        .map(|((sum, &count), std_centroid)| {
            if count > 0 {
                sum.into_iter().map(|s| s / count as f64).collect()
            } else {
                std_centroid.iter().zip(scales).map(|(v, (m, sd))| v * sd + m).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(err: f64) -> LabelledCheckpoint {
        LabelledCheckpoint::new(vec![1.0, 2.0], 100.0, Some(100.0 + err))
    }

    fn features() -> Vec<String> {
        vec!["sys_mem_used".into(), "num_threads".into()]
    }

    #[test]
    fn signature_needs_min_errors() {
        let mut acc = SignatureAccumulator::new(
            SignatureConfig { min_errors: 5, ..Default::default() },
            &features(),
        );
        for _ in 0..4 {
            acc.observe(&cp(100.0));
        }
        assert!(acc.signature().is_none());
        acc.observe(&cp(100.0));
        let sig = acc.signature().expect("5 errors reach the gate");
        assert_eq!(sig.len(), SIGNATURE_DIM);
        assert!(sig.iter().all(|v| v.is_finite()));
        assert_eq!(sig[1], 100.0, "median of a constant stream");
    }

    #[test]
    fn nan_laced_stream_stays_finite() {
        let mut acc = SignatureAccumulator::new(
            SignatureConfig { min_errors: 4, ..Default::default() },
            &features(),
        );
        for i in 0..40 {
            acc.observe(&cp(if i % 3 == 0 { f64::NAN } else { 50.0 + i as f64 }));
            acc.observe(&LabelledCheckpoint::new(
                vec![f64::INFINITY, f64::NAN],
                f64::NAN,
                Some(f64::NEG_INFINITY),
            ));
        }
        let sig = acc.signature().expect("finite errors got through");
        assert!(sig.iter().all(|v| v.is_finite()), "{sig:?}");
    }

    #[test]
    fn root_cause_mix_localises_the_growing_resource() {
        let mut acc = SignatureAccumulator::new(
            SignatureConfig { min_errors: 2, ..Default::default() },
            &features(),
        );
        // Memory grows 10 MB per checkpoint, threads are flat.
        for i in 0..20 {
            let mut c = cp(30.0);
            c.features = vec![1000.0 + 10.0 * i as f64, 50.0];
            acc.observe(&c);
        }
        let sig = acc.signature().unwrap();
        let mix = &sig[5..];
        assert!(mix[1] > 0.9, "memory bucket must dominate: {mix:?}");
        assert!(mix[2].abs() < 0.1, "threads bucket must stay flat: {mix:?}");
    }

    #[test]
    fn epoch_boundary_suppresses_restart_deltas() {
        let mut with_boundary = SignatureAccumulator::new(
            SignatureConfig { min_errors: 1, ..Default::default() },
            &features(),
        );
        let mut without = with_boundary.clone();
        // Memory is *flat within every epoch* but each restart lands on a
        // different baseline: the only memory "growth" an accumulator can
        // see is the spurious cross-epoch jump.
        let epoch = |acc: &mut SignatureAccumulator, baseline: f64, boundary: bool| {
            for _ in 0..10 {
                let mut c = cp(30.0);
                c.features = vec![baseline, 50.0];
                acc.observe(&c);
            }
            if boundary {
                acc.epoch_boundary();
            }
        };
        epoch(&mut with_boundary, 1000.0, true);
        epoch(&mut with_boundary, 2000.0, true);
        epoch(&mut without, 1000.0, false);
        epoch(&mut without, 2000.0, false);
        let clean = with_boundary.signature().unwrap()[5 + 1];
        let dirty = without.signature().unwrap()[5 + 1];
        assert_eq!(clean, 0.0, "nothing grows within an epoch");
        assert!(dirty > 0.9, "the restart jump masquerades as memory growth: {dirty}");
    }

    fn sig(level: f64, mix_mem: f64) -> Vec<f64> {
        vec![level, level, level * 1.2, level, 0.0, 0.0, mix_mem, 1.0 - mix_mem, 0.0, 0.0]
    }

    #[test]
    fn two_regimes_split_once_and_stay_split() {
        let mut discovery = ClassDiscovery::new(DiscoveryConfig::default());
        let signatures: Vec<Option<Vec<f64>>> =
            (0..12).map(|i| Some(if i < 6 { sig(100.0, 1.0) } else { sig(3000.0, 0.0) })).collect();
        let first = discovery.evaluate(&signatures);
        assert_eq!(first.active_classes, 2, "two regimes must split: {first:?}");
        assert_eq!(first.new_classes.len(), 1);
        assert_eq!(discovery.splits(), 1);
        let low = first.assignment[0].unwrap();
        let high = first.assignment[6].unwrap();
        assert_ne!(low, high);
        assert!(first.assignment[..6].iter().all(|a| *a == Some(low)));
        assert!(first.assignment[6..].iter().all(|a| *a == Some(high)));
        // Re-evaluating the same signatures must change nothing: same
        // ids, no new classes, no retirements, no extra splits.
        let second = discovery.evaluate(&signatures);
        assert_eq!(second.assignment, first.assignment, "partition must be stable");
        assert!(second.new_classes.is_empty() && second.retired.is_empty());
        assert_eq!(discovery.splits(), 1);
        assert_eq!(discovery.merges(), 0);
    }

    #[test]
    fn stationary_fleet_never_splits() {
        let mut discovery = ClassDiscovery::new(DiscoveryConfig::default());
        for round in 0..5 {
            // One tight regime with per-instance jitter.
            let signatures: Vec<Option<Vec<f64>>> =
                (0..10).map(|i| Some(sig(500.0 + (i % 3) as f64 + round as f64, 0.8))).collect();
            let outcome = discovery.evaluate(&signatures);
            assert_eq!(outcome.active_classes, 1, "round {round}: {outcome:?}");
        }
        assert_eq!(discovery.splits(), 0);
        assert_eq!(discovery.merges(), 0);
        assert_eq!(discovery.class_count(), 1);
    }

    #[test]
    fn converged_regimes_merge_back() {
        let mut discovery = ClassDiscovery::new(DiscoveryConfig::default());
        let split_round: Vec<Option<Vec<f64>>> =
            (0..12).map(|i| Some(if i < 6 { sig(100.0, 1.0) } else { sig(3000.0, 0.0) })).collect();
        let split = discovery.evaluate(&split_round);
        assert_eq!(split.active_classes, 2);
        // The regimes converge: every instance now looks the same.
        let converged: Vec<Option<Vec<f64>>> =
            (0..12).map(|i| Some(sig(500.0 + (i % 2) as f64, 0.5))).collect();
        let merged = discovery.evaluate(&converged);
        assert_eq!(merged.active_classes, 1, "{merged:?}");
        assert_eq!(merged.retired.len(), 1);
        assert_eq!(discovery.merges(), 1);
        let survivor = merged.assignment[0].unwrap();
        assert!(merged.assignment.iter().all(|a| *a == Some(survivor)));
        let retirement = merged.retired[0];
        assert_eq!(retirement.into, survivor);
        assert!(discovery.is_retired(retirement.id));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let signatures: Vec<Option<Vec<f64>>> = (0..14)
            .map(|i| {
                Some(if i % 2 == 0 {
                    sig(80.0 + i as f64, 0.9)
                } else {
                    sig(2500.0 - i as f64, 0.1)
                })
            })
            .collect();
        let run = || {
            let mut d = ClassDiscovery::new(DiscoveryConfig::default());
            let a = d.evaluate(&signatures);
            let b = d.evaluate(&signatures);
            (a, b, d.class_count())
        };
        assert_eq!(run(), run(), "same streams must yield the same partition");
    }

    #[test]
    fn not_ready_instances_keep_none() {
        let mut discovery = ClassDiscovery::new(DiscoveryConfig::default());
        let signatures = vec![Some(sig(100.0, 1.0)), None, Some(sig(120.0, 1.0))];
        let outcome = discovery.evaluate(&signatures);
        assert!(outcome.assignment[1].is_none());
        assert_eq!(outcome.assignment[0], Some(0));
        assert_eq!(outcome.active_classes, 1);
    }

    #[test]
    fn max_classes_caps_the_structure() {
        let config = DiscoveryConfig { max_classes: 2, ..Default::default() };
        let mut discovery = ClassDiscovery::new(config);
        // Three clearly distinct regimes, but the cap is 2.
        let signatures: Vec<Option<Vec<f64>>> = (0..15)
            .map(|i| {
                Some(match i % 3 {
                    0 => sig(50.0, 1.0),
                    1 => sig(1500.0, 0.5),
                    _ => sig(9000.0, 0.0),
                })
            })
            .collect();
        discovery.evaluate(&signatures);
        let outcome = discovery.evaluate(&signatures);
        assert!(outcome.active_classes <= 2, "{outcome:?}");
    }
}
