//! Drift-triggered online retraining for fleet-scale aging prediction.
//!
//! The source paper's core claim is that *adaptive* on-line aging
//! prediction — periodically retraining the model on a sliding window of
//! recent checkpoints — beats a static model under dynamic workloads. The
//! fleet engine scales the paper's single-instance loop to hundreds of
//! deployments, but against one frozen model; this crate supplies the
//! adaptation side as a standalone service:
//!
//! ```text
//!  monitor streams / fleet shards
//!        │  CheckpointBatch (labelled, retrospective, class-tagged)
//!        ▼
//!  [CheckpointBus]  — bounded ring, drop-oldest, per-source fair,
//!        │            sheds attributed per class
//!        ▼
//!  [AdaptationPipeline]  — ONE state machine for every retrainer:
//!        │   DriftMonitor (error EWMA ⊕ segment::diagnose) → sticky
//!        │   trigger → buffer gate → RetrainAction → ThresholdPolicy
//!        │                                                │ new model
//!        ▼                                                ▼
//!  [ModelService] — Arc<dyn Regressor> + generation counter
//!        ▲ snapshot()/generation()/rejuvenation_threshold_secs()
//!        │                                  hot swap, wait-free readers
//!  prediction consumers (fleet shards pin one snapshot per epoch)
//! ```
//!
//! - [`CheckpointBus`] decouples checkpoint arrival from epoch processing:
//!   producers publish [`CheckpointBatch`]es and move on. The ring is
//!   *bounded*: a stalled retrainer sheds the heaviest source's oldest
//!   batches (counted — fleet-wide and per [`ServiceClass`] — never
//!   silent) instead of growing without bound.
//! - [`AdaptationPipeline`] is the paper's observe → detect → retrain →
//!   republish loop as one reusable state machine, parameterised over
//!   exactly the retrain *action* ([`RetrainAction`]): the
//!   [`DriftMonitor`] fuses an absolute error-level test with the
//!   error-*trend* test built on [`aging_ml::segment::diagnose`]; a drift
//!   event (or periodic schedule) sets a sticky trigger that releases
//!   once the sliding buffer passes the retrain gate.
//! - [`ThresholdPolicy`] makes the operating thresholds self-tuning:
//!   [`FixedThresholds`] reproduces the configured constants bit for bit,
//!   [`QuantileAdaptive`] re-derives the drift level *and* the predictive
//!   rejuvenation threshold from each class's observed error quantiles on
//!   every publish.
//! - [`ModelService`] owns successive model generations behind
//!   `Arc<dyn Regressor>` plus the effective rejuvenation threshold;
//!   consumers poll one atomic and re-pin on change.
//! - [`AdaptiveService`] runs the pipeline on a background thread with a
//!   **synchronous in-thread** retrain over any [`aging_ml::DynLearner`]
//!   (M5P, linear regression, GBRT, …), so retraining never pauses the
//!   threads that serve predictions.
//! - [`AdaptiveRouter`] runs one pipeline per [`ServiceClass`] for
//!   **heterogeneous fleets**, fed from the shared bounded bus with a
//!   **pooled asynchronous** retrain action (≤ 1 in-flight refit per
//!   class on a fixed worker pool; N classes ≠ N threads) — a memory-leak
//!   class and a swap-thrash class adapt independently without polluting
//!   each other's training buffers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bus;
pub mod discovery;
mod drift;
pub mod pipeline;
pub mod policy;
pub mod replay;
mod router;
mod service;

pub use bus::{
    BusDisconnected, BusReceiver, CheckpointBatch, CheckpointBus, LabelledCheckpoint, ServiceClass,
    DEFAULT_BUS_CAPACITY,
};
pub use drift::{DriftConfig, DriftEvent, DriftMonitor};
pub use pipeline::{AdaptationPipeline, PipelineCounters, RetrainAction, RetrainDisposition};
pub use policy::{FixedThresholds, QuantileAdaptive, ThresholdPolicy, Thresholds};
pub use replay::{ClassReplay, ReplayOutcome, ReplayPartition};
pub use router::{
    AdaptiveRouter, AdaptiveRouterBuilder, ClassAdaptation, ClassSpec, ClassSpecBuilder,
    RouterConfig, RouterConfigBuilder, RouterError, RouterStats,
};
pub use service::{
    AdaptConfig, AdaptConfigBuilder, AdaptationStats, AdaptiveService, AdaptiveServiceBuilder,
    ModelService, ModelSnapshot,
};

#[cfg(test)]
mod tests {
    use super::*;
    use aging_dataset::Dataset;
    use aging_ml::gbrt::GbrtLearner;
    use aging_ml::linreg::LinRegLearner;
    use aging_ml::m5p::M5pLearner;
    use aging_ml::{DynLearner, Learner, Regressor};
    use std::sync::Arc;
    use std::time::Duration;

    /// y = 2x over [0, n): the "old regime".
    fn line_dataset(n: usize, slope: f64) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..n {
            ds.push_row(vec![i as f64], slope * i as f64).unwrap();
        }
        ds
    }

    fn initial_model() -> Arc<dyn Regressor> {
        Arc::from(LinRegLearner::default().fit_boxed(&line_dataset(50, 2.0)).unwrap())
    }

    fn batch(xs: impl IntoIterator<Item = (f64, f64, Option<f64>)>) -> CheckpointBatch {
        CheckpointBatch {
            source: "test".into(),
            class: ServiceClass::default(),
            checkpoints: xs
                .into_iter()
                .map(|(x, y, pred)| LabelledCheckpoint::new(vec![x], y, pred))
                .collect(),
        }
    }

    #[test]
    fn model_service_generations_are_monotone_and_pinned() {
        let service = ModelService::new(initial_model());
        assert_eq!(service.generation(), 0);
        let pinned = service.snapshot();
        assert_eq!(pinned.generation, 0);
        let g1 = service.publish(initial_model());
        assert_eq!(g1, 1);
        assert_eq!(service.generation(), 1);
        // The old pin keeps working — publish never invalidates readers.
        assert!(pinned.model.predict(&[10.0]).is_finite());
        let fresh = service.snapshot();
        assert_eq!(fresh.generation, 1);
    }

    /// A constant model whose prediction encodes which generation it was
    /// published as — the probe for snapshot-pairing races.
    #[derive(Debug)]
    struct Tagged(f64);

    impl Regressor for Tagged {
        fn predict(&self, _x: &[f64]) -> f64 {
            self.0
        }

        fn name(&self) -> &'static str {
            "Tagged"
        }
    }

    /// Loom-style pairing stress: one publisher races many snapshotters.
    /// Publishing generation `g` installs a model that predicts `g`, so
    /// any torn read — a generation number paired with another
    /// generation's `Arc` — shows up as a prediction mismatch.
    #[test]
    fn snapshot_is_atomic_under_publish_storm() {
        let service = Arc::new(ModelService::new(Arc::new(Tagged(0.0))));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut pin = service.snapshot();
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let snap = service.snapshot();
                        assert_eq!(
                            snap.model.predict(&[]),
                            snap.generation as f64,
                            "snapshot paired generation {} with another generation's model",
                            snap.generation
                        );
                        assert!(snap.generation >= last, "generations ran backwards");
                        last = snap.generation;
                        // The refresh path must uphold the same pairing.
                        service.refresh(&mut pin);
                        assert_eq!(pin.model.predict(&[]), pin.generation as f64);
                    }
                });
            }
            // The publisher tags each model with the generation number the
            // next publish will assign (single publisher ⇒ predictable).
            for g in 1..=2000u64 {
                service.publish(Arc::new(Tagged(g as f64)));
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
        assert_eq!(service.generation(), 2000);
        assert_eq!(service.snapshot().model.predict(&[]), 2000.0);
    }

    #[test]
    fn refresh_is_a_noop_until_a_publish_lands() {
        let service = ModelService::new(initial_model());
        let mut pin = service.snapshot();
        assert!(!service.refresh(&mut pin), "no publish yet: the pin must not move");
        assert_eq!(pin.generation, 0);
        service.publish(initial_model());
        assert!(service.refresh(&mut pin));
        assert_eq!(pin.generation, 1);
        assert!(!service.refresh(&mut pin), "already current");
    }

    #[test]
    fn model_service_swaps_under_concurrent_readers() {
        let service = Arc::new(ModelService::new(initial_model()));
        let publisher = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    service.publish(initial_model());
                }
            })
        };
        let mut last = 0;
        for _ in 0..1000 {
            let snap = service.snapshot();
            assert!(snap.generation >= last, "generations must be monotone to one reader");
            last = snap.generation;
            assert!(snap.model.predict(&[3.0]).is_finite());
        }
        publisher.join().unwrap();
        assert_eq!(service.generation(), 100);
    }

    /// Drift on the error stream triggers a retrain on the buffered regime
    /// and publishes a new generation whose predictions track it.
    fn drifts_and_retrains_with(learner: Arc<dyn DynLearner>) {
        let config = AdaptConfig {
            drift: DriftConfig {
                enabled: true,
                ewma_alpha: 0.3,
                error_threshold_secs: 100.0,
                min_observations: 10,
                trend_window: 32,
                trend_tolerance_secs: 100.0,
                trend_slope_threshold: 5.0,
                cooldown_observations: 30,
            },
            buffer_capacity: 512,
            min_buffer_to_retrain: 50,
            retrain_every: None,
            bus_capacity: DEFAULT_BUS_CAPACITY,
        };
        let service = AdaptiveService::builder(learner, vec!["x".into()], initial_model())
            .config(config)
            .spawn();
        let bus = service.bus();
        // New regime: y = -3x + 600. The initial model (y = 2x) is off by
        // hundreds of seconds, so the EWMA breaches quickly.
        let truth = |x: f64| 600.0 - 3.0 * x;
        let stale = |x: f64| 2.0 * x;
        for chunk in 0..8 {
            let xs = (0..32).map(|i| {
                let x = (chunk * 32 + i) as f64 * 0.5;
                (x, truth(x), Some(stale(x)))
            });
            assert!(bus.publish(batch(xs)));
        }
        assert!(service.quiesce(Duration::from_secs(30)), "bus must drain");
        let stats = service.stats();
        assert!(stats.drift_events >= 1, "drift must fire: {stats:?}");
        assert!(stats.retrains >= 1, "drift must cause a retrain: {stats:?}");
        assert!(stats.generations_published >= 1);
        let snap = service.model_service().snapshot();
        assert!(snap.generation >= 1);
        let pred = snap.model.predict(&[40.0]);
        let want = truth(40.0);
        assert!(
            (pred - want).abs() < (stale(40.0) - want).abs(),
            "generation {} must beat the stale model: pred {pred}, truth {want}",
            snap.generation
        );
        let final_stats = service.shutdown();
        assert_eq!(final_stats.ingested_checkpoints, 256);
    }

    #[test]
    fn drifts_and_retrains_with_linreg() {
        drifts_and_retrains_with(Arc::new(LinRegLearner::default()));
    }

    #[test]
    fn drifts_and_retrains_with_m5p() {
        drifts_and_retrains_with(Arc::new(M5pLearner::default()));
    }

    #[test]
    fn drifts_and_retrains_with_gbrt() {
        drifts_and_retrains_with(Arc::new(GbrtLearner::default()));
    }

    #[test]
    fn disabled_drift_stays_on_generation_zero() {
        let config = AdaptConfig {
            drift: DriftConfig::disabled(),
            min_buffer_to_retrain: 10,
            ..Default::default()
        };
        let service = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .config(config)
        .spawn();
        let bus = service.bus();
        for _ in 0..5 {
            bus.publish(batch((0..50).map(|i| (i as f64, 9999.0, Some(0.0)))));
        }
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = service.shutdown();
        assert_eq!(stats.generations_published, 0, "disabled drift must never publish");
        assert_eq!(stats.retrains, 0);
        assert!(stats.ingested_checkpoints == 250);
        assert!(stats.error_ewma_secs.unwrap() > 0.0, "statistics still flow");
    }

    #[test]
    fn scheduled_retraining_works_without_drift() {
        let config = AdaptConfig {
            drift: DriftConfig::disabled(),
            buffer_capacity: 256,
            min_buffer_to_retrain: 20,
            retrain_every: Some(40),
            bus_capacity: DEFAULT_BUS_CAPACITY,
        };
        let service = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .config(config)
        .spawn();
        let bus = service.bus();
        for chunk in 0..4 {
            bus.publish(batch((0..40).map(|i| {
                let x = (chunk * 40 + i) as f64;
                (x, 5.0 * x, None)
            })));
        }
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = service.shutdown();
        assert!(stats.retrains >= 3, "periodic schedule must retrain: {stats:?}");
        assert_eq!(stats.drift_events, 0);
    }

    #[test]
    #[should_panic(expected = "min_buffer_to_retrain")]
    fn min_buffer_above_capacity_rejected() {
        let _ = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .config(AdaptConfig {
            buffer_capacity: 100,
            min_buffer_to_retrain: 200,
            ..Default::default()
        })
        .spawn();
    }

    /// A degenerate self-tuning policy must be rejected on the caller's
    /// thread at spawn time — not panic silently inside the retrainer.
    #[test]
    #[should_panic(expected = "drift margin")]
    fn degenerate_policy_rejected_at_spawn() {
        let _ = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .policy(Arc::new(QuantileAdaptive { drift_margin: 0.5, ..Default::default() }))
        .spawn();
    }

    #[test]
    fn early_drift_trigger_stays_pending_until_buffer_fills() {
        // The drift event fires while the buffer is far below the retrain
        // gate; once enough labelled data has accumulated the retrain must
        // still happen — the trigger is sticky, not batch-local.
        let config = AdaptConfig {
            drift: DriftConfig {
                enabled: true,
                ewma_alpha: 0.5,
                error_threshold_secs: 100.0,
                min_observations: 5,
                trend_window: 64,
                trend_tolerance_secs: 100.0,
                trend_slope_threshold: 5.0,
                // One shot: the cooldown outlasts the whole test, so the
                // only trigger is the early one.
                cooldown_observations: 10_000,
            },
            buffer_capacity: 512,
            min_buffer_to_retrain: 100,
            retrain_every: None,
            bus_capacity: DEFAULT_BUS_CAPACITY,
        };
        let service = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .config(config)
        .spawn();
        let bus = service.bus();
        // 10 huge-error checkpoints: drift fires, buffer is only 10 deep.
        bus.publish(batch((0..10).map(|i| (i as f64, 5000.0, Some(0.0)))));
        assert!(service.quiesce(Duration::from_secs(30)));
        assert_eq!(service.stats().retrains, 0, "gate must hold the retrain back");
        assert!(service.stats().drift_events >= 1, "the trigger itself must have fired");
        // Quiet labelled data (no predictions → no new drift): crossing
        // the gate must release the pending retrain.
        for chunk in 0..3 {
            bus.publish(batch((0..40).map(|i| {
                let x = (10 + chunk * 40 + i) as f64;
                (x, 2.0 * x, None)
            })));
        }
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = service.shutdown();
        assert!(
            stats.retrains >= 1,
            "pending drift trigger must fire once the buffer fills: {stats:?}"
        );
    }

    #[test]
    fn mismatched_arity_checkpoints_are_dropped_not_fatal() {
        let service = AdaptiveService::builder(
            Arc::new(LinRegLearner::default()),
            vec!["x".into()],
            initial_model(),
        )
        .spawn();
        let bus = service.bus();
        bus.publish(CheckpointBatch {
            source: "bad".into(),
            class: ServiceClass::default(),
            checkpoints: vec![LabelledCheckpoint::new(vec![1.0, 2.0, 3.0], 10.0, None)],
        });
        assert!(service.quiesce(Duration::from_secs(10)));
        let stats = service.shutdown();
        assert_eq!(stats.ingested_checkpoints, 1);
        assert_eq!(stats.buffered, 0, "bad-arity rows never enter the buffer");
    }
}
