//! The unified adaptation pipeline: one state machine for every retrainer.
//!
//! The paper's core loop — observe prediction error, detect staleness,
//! retrain, republish — used to exist twice in this crate:
//! [`crate::AdaptiveService`]'s retrainer thread and
//! [`crate::AdaptiveRouter`]'s ingest loop each reimplemented the
//! drift-observe → sticky-trigger → buffer-gate sequence, differing
//! *only* in how the retrain itself runs (synchronous in-thread fit vs a
//! pooled asynchronous refit with at most one in-flight job per class).
//! [`AdaptationPipeline`] is that shared state machine, parameterised over
//! exactly the varying part — the [`RetrainAction`]:
//!
//! ```text
//!  CheckpointBatch
//!        │ per checkpoint
//!        ▼
//!  DriftMonitor.observe(|predicted − ttf|) ──► drift event? ─► trigger (sticky)
//!        │                                      schedule due? ─► trigger
//!        ▼
//!  RetrainAction::buffer(features, ttf)     (sliding training window)
//!        │ per batch
//!        ▼
//!  trigger ∧ buffered ≥ min_buffer_to_retrain ──► RetrainAction::retrain()
//!        │ Published / Enqueued                        │ Deferred
//!        ▼                                             ▼
//!  ThresholdPolicy::on_publish(error window)      trigger stays pending
//!        │ new thresholds?
//!        ▼
//!  monitor level + ModelService rejuvenation override re-derived
//! ```
//!
//! Two invariants every consumer relies on, now enforced in one place:
//!
//! - the **sticky trigger**: a drift event that fires while the buffer is
//!   still below the retrain gate (or, pooled, while a refit is already in
//!   flight) is never forgotten — it stays pending and releases as soon as
//!   the gate opens;
//! - the **batch-scoped gate**: retrains are attempted once per ingested
//!   batch, after the whole batch has been observed, so one epoch's
//!   checkpoints always land in the same training window.

use crate::bus::LabelledCheckpoint;
use crate::drift::DriftMonitor;
use crate::policy::{ThresholdPolicy, Thresholds};
use crate::service::AdaptConfig;
use aging_journal::{Digest64, Journal, JournalCheckpoint, JournalRecord};
use aging_obs::{
    CounterHandle, EventId, EventKind, EventScope, GaugeHandle, Recorder, TraceHandle,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a [`RetrainAction`] disposed of a retrain attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainDisposition {
    /// The retrain completed synchronously and a new generation was
    /// published. Consumes the trigger; the threshold policy runs.
    Published,
    /// The retrain completed synchronously but the fit failed; the
    /// previous generation keeps serving. Consumes the trigger (the same
    /// degenerate buffer would just fail again) without consulting the
    /// policy — nothing was published.
    Failed,
    /// The retrain was handed to an asynchronous worker; a publish will
    /// follow. Consumes the trigger; the threshold policy re-arms only
    /// once that publish *lands* (the pipeline sees the generation move)
    /// and then derives from the new generation's error stream — never
    /// from the stale errors that triggered this retrain.
    Enqueued,
    /// The action cannot take a retrain right now (a job is already in
    /// flight, or the worker pool is gone). The sticky trigger stays
    /// pending and the next batch retries.
    Deferred,
}

/// The part of the adaptation loop that differs between deployments: how
/// labelled rows are buffered and how a retrain actually runs.
///
/// [`crate::AdaptiveService`] implements it as a synchronous in-thread fit
/// over an `OnlineRegressor`; [`crate::AdaptiveRouter`] as a buffer
/// snapshot enqueued onto a shared worker pool with at most one in-flight
/// job per class. Everything else — drift detection, trigger stickiness,
/// gating, scheduling, threshold policy — is the pipeline's and identical
/// for both.
pub trait RetrainAction {
    /// Offers one labelled row to the sliding training buffer. Returns the
    /// new buffered count, or `None` when the row was rejected (arity
    /// mismatch with the feature set — counted as ingested, never fatal).
    fn buffer(&mut self, features: Vec<f64>, ttf_secs: f64) -> Option<usize>;

    /// Rows currently in the training buffer.
    fn buffered(&self) -> usize;

    /// Attempts the retrain on the current buffer contents.
    fn retrain(&mut self) -> RetrainDisposition;

    /// The serving generation this action's publishes have reached. The
    /// pipeline polls it to detect that a retrain has actually *landed* —
    /// immediate for a synchronous fit, later for a pooled refit — which
    /// is the moment the threshold policy re-arms on the fresh error
    /// stream.
    fn generation(&self) -> u64;

    /// Applies policy-derived thresholds to the serving side (e.g. the
    /// [`crate::ModelService`] rejuvenation override). The drift-level
    /// threshold is applied by the pipeline itself; default is a no-op for
    /// actions with no serving side.
    fn apply_thresholds(&mut self, thresholds: &Thresholds) {
        let _ = thresholds;
    }

    /// Hands the action the causal parent (the pipeline's `TriggerFired`
    /// event) for the refit events its next retrain emits. Default no-op
    /// for actions that do not trace.
    fn set_trace_parent(&mut self, parent: Option<EventId>) {
        let _ = parent;
    }

    /// The trace id of the `GenerationPublished` event that produced the
    /// current serving generation, when the action traces publishes.
    /// Parents the pipeline's `ThresholdsRederived` events.
    fn last_publish_event(&self) -> Option<EventId> {
        None
    }

    /// A 64-bit digest of the action's replay-relevant state — the buffer
    /// contents, row for row and bit for bit, plus the serving
    /// generation. Journal replay compares it against a restored action
    /// to prove bit-identity. Default 0 for actions that do not support
    /// replay.
    fn state_digest(&self) -> u64 {
        0
    }
}

/// Shared counters a pipeline publishes for concurrent stats readers.
///
/// The pipeline runs on one thread; services and routers snapshot these
/// from others (and pooled refit workers bump the retrain counters), so
/// everything is atomic. All counters are monotone except `buffered`,
/// `error_ewma_secs` and the effective thresholds.
#[derive(Debug)]
pub struct PipelineCounters {
    pub(crate) ingested: AtomicU64,
    pub(crate) drift_events: AtomicU64,
    pub(crate) retrains: AtomicU64,
    pub(crate) failed_retrains: AtomicU64,
    pub(crate) buffered: AtomicU64,
    pub(crate) journal_errors: AtomicU64,
    pub(crate) error_ewma_bits: AtomicU64,
    pub(crate) effective_error_threshold_bits: AtomicU64,
    pub(crate) effective_rejuvenation_threshold_bits: AtomicU64,
}

impl PipelineCounters {
    pub(crate) fn new(initial_error_threshold_secs: f64) -> Self {
        PipelineCounters {
            ingested: AtomicU64::new(0),
            drift_events: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            failed_retrains: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
            // NaN bits = "no labelled prediction observed yet", so stats
            // readers can distinguish a genuinely-zero EWMA from absence.
            error_ewma_bits: AtomicU64::new(f64::NAN.to_bits()),
            effective_error_threshold_bits: AtomicU64::new(initial_error_threshold_secs.to_bits()),
            effective_rejuvenation_threshold_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }

    /// Labelled checkpoints fully processed by the pipeline. Updated once
    /// per batch, *after* the retrain gate ran, so a reader observing
    /// `ingested == published` knows every retrain those checkpoints could
    /// trigger has already completed or been enqueued.
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Drift events the monitor fired.
    pub fn drift_events(&self) -> u64 {
        self.drift_events.load(Ordering::Relaxed)
    }

    /// Successful synchronous retrains plus completed pooled refits.
    pub fn retrains(&self) -> u64 {
        self.retrains.load(Ordering::Relaxed)
    }

    /// Retrains whose fit failed; the previous generation keeps serving.
    pub fn failed_retrains(&self) -> u64 {
        self.failed_retrains.load(Ordering::Relaxed)
    }

    /// Rows currently in the sliding training buffer.
    pub fn buffered(&self) -> u64 {
        self.buffered.load(Ordering::Relaxed)
    }

    /// Journal appends that failed with an I/O error. Durability degraded
    /// but the adaptation loop kept running; a nonzero count means the
    /// journal's tail is incomplete relative to the live state.
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// Current smoothed absolute TTF error, seconds — `None` until the
    /// first labelled prediction arrives.
    pub fn error_ewma_secs(&self) -> Option<f64> {
        let secs = f64::from_bits(self.error_ewma_bits.load(Ordering::Relaxed));
        secs.is_finite().then_some(secs)
    }

    /// Drift error-level threshold currently in force, seconds. Starts at
    /// the configured constant; self-tuning policies move it on publish.
    pub fn effective_error_threshold_secs(&self) -> f64 {
        f64::from_bits(self.effective_error_threshold_bits.load(Ordering::Relaxed))
    }

    /// Rejuvenation-threshold override currently in force, seconds —
    /// `None` until a self-tuning policy publishes one.
    pub fn effective_rejuvenation_threshold_secs(&self) -> Option<f64> {
        let secs =
            f64::from_bits(self.effective_rejuvenation_threshold_bits.load(Ordering::Relaxed));
        secs.is_finite().then_some(secs)
    }
}

/// Per-class telemetry handles for one pipeline, resolved once by its
/// owner (the router's ingest loop, the service's retrainer) and updated
/// **batch-wise** — never per checkpoint row — so an uninstrumented
/// pipeline pays one branch per batch per instrument.
#[derive(Debug, Default, Clone)]
pub struct PipelineInstruments {
    drift_observations: CounterHandle,
    drift_events: CounterHandle,
    buffer_occupancy: GaugeHandle,
}

impl PipelineInstruments {
    /// Resolves this class's instrument handles from `recorder`
    /// (`adapt_drift_observations_total`, `adapt_drift_events_total`,
    /// `adapt_buffer_occupancy_rows`, all labelled by class).
    #[must_use]
    pub fn resolve(recorder: &dyn Recorder, class: &str) -> Self {
        PipelineInstruments {
            drift_observations: recorder.counter_with(
                "adapt_drift_observations_total",
                "Prediction-error observations evaluated by the drift monitor, by class",
                "class",
                class,
            ),
            drift_events: recorder.counter_with(
                "adapt_drift_events_total",
                "Drift events fired by the monitor, by class",
                "class",
                class,
            ),
            buffer_occupancy: recorder.gauge_with(
                "adapt_buffer_occupancy_rows",
                "Rows currently in the sliding training buffer, by class",
                "class",
                class,
            ),
        }
    }
}

/// The unified drift-observe → sticky-trigger → buffer-gate state machine;
/// see the module docs for the shape and the invariants.
///
/// The pipeline is single-threaded by design — its owner (a retrainer
/// thread, a router ingest loop, or a test driving it directly) feeds it
/// batches; concurrent observers read through [`AdaptationPipeline::counters`].
#[derive(Debug)]
pub struct AdaptationPipeline<A: RetrainAction> {
    monitor: DriftMonitor,
    policy: Arc<dyn ThresholdPolicy>,
    counters: Arc<PipelineCounters>,
    thresholds: Thresholds,
    min_buffer_to_retrain: usize,
    retrain_every: Option<usize>,
    retrain_due: bool,
    since_scheduled: usize,
    /// Armed by every *landed* publish (the serving generation moved):
    /// the policy is consulted with the finite errors *attributable to*
    /// the new generation — retrospective labelling means batches mix
    /// generations, and the per-checkpoint generation tag filters out the
    /// stale stragglers — until it returns an update, then disarmed until
    /// the next publish.
    policy_armed: bool,
    /// The serving generation last seen; a move re-arms the policy.
    last_generation: u64,
    /// Finite absolute errors attributed to the current generation since
    /// its publish landed, oldest first, capped at the drift trend window.
    fresh_errors: std::collections::VecDeque<f64>,
    fresh_errors_cap: usize,
    instruments: PipelineInstruments,
    /// Causal trace handle; disabled by default (one branch per decision
    /// point, no clock, no allocation).
    trace: TraceHandle,
    /// Class label stamped on every emitted event.
    trace_class: String,
    /// The `TriggerArmed` event of the pending trigger — parent for its
    /// `TriggerFired`.
    armed_event: Option<EventId>,
    /// The `TriggerFired` event of the pending trigger; emitted once per
    /// trigger even when the action defers the retrain.
    fired_event: Option<EventId>,
    /// Durable checkpoint journal; detached by default (and during
    /// replay, so restored batches are not re-journaled).
    journal: Option<Arc<Journal>>,
    /// Class label stamped on every journalled record.
    journal_class: String,
    /// The serving generation last journalled; a move appends a
    /// `GenerationPublished` record.
    journaled_generation: u64,
    action: A,
}

impl<A: RetrainAction> AdaptationPipeline<A> {
    /// Creates a pipeline with its own fresh counters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate adaptation parameters (see
    /// [`AdaptConfig::builder`]).
    pub fn new(config: &AdaptConfig, policy: Arc<dyn ThresholdPolicy>, action: A) -> Self {
        let counters = Arc::new(PipelineCounters::new(config.drift.error_threshold_secs));
        Self::with_counters(config, policy, counters, action)
    }

    /// Creates a pipeline publishing into existing shared `counters` (the
    /// handle a service or router hands to its stats readers).
    ///
    /// # Panics
    ///
    /// Panics on degenerate adaptation parameters.
    pub fn with_counters(
        config: &AdaptConfig,
        policy: Arc<dyn ThresholdPolicy>,
        counters: Arc<PipelineCounters>,
        action: A,
    ) -> Self {
        config.validate_adaptation();
        policy.validate();
        AdaptationPipeline {
            monitor: DriftMonitor::new(config.drift),
            thresholds: Thresholds {
                error_threshold_secs: config.drift.error_threshold_secs,
                rejuvenation_threshold_secs: None,
            },
            policy,
            counters,
            min_buffer_to_retrain: config.min_buffer_to_retrain,
            retrain_every: config.retrain_every,
            retrain_due: false,
            since_scheduled: 0,
            policy_armed: false,
            last_generation: action.generation(),
            fresh_errors: std::collections::VecDeque::with_capacity(config.drift.trend_window),
            fresh_errors_cap: config.drift.trend_window,
            instruments: PipelineInstruments::default(),
            trace: TraceHandle::disabled(),
            trace_class: String::new(),
            armed_event: None,
            fired_event: None,
            journal: None,
            journal_class: String::new(),
            journaled_generation: action.generation(),
            action,
        }
    }

    /// Attaches per-class telemetry handles (default: all disabled).
    pub fn set_instruments(&mut self, instruments: PipelineInstruments) {
        self.instruments = instruments;
    }

    /// Attaches a causal trace handle; emitted events carry `class` as
    /// their class context (default: disabled, zero overhead).
    pub fn set_trace(&mut self, trace: TraceHandle, class: &str) {
        self.trace = trace;
        self.trace_class = class.to_string();
    }

    /// Attaches a durable checkpoint journal; every ingested batch,
    /// landed publish and threshold re-derivation is appended under
    /// `class` *before* it mutates pipeline state. Restore paths build
    /// the pipeline detached, replay the recorded stream, then attach —
    /// so a replay never journals itself.
    pub fn set_journal(&mut self, journal: Arc<Journal>, class: &str) {
        self.journal = Some(journal);
        self.journal_class = class.to_string();
        self.journaled_generation = self.action.generation();
    }

    /// Appends one record, folding an I/O failure into the shared
    /// counter instead of killing the adaptation loop.
    fn journal_append(&self, record: &JournalRecord) {
        if let Some(journal) = &self.journal {
            if journal.append(record).is_err() {
                self.counters.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Feeds one batch of labelled checkpoints through the state machine:
    /// every checkpoint is observed for drift and offered to the training
    /// buffer, then the retrain gate runs once for the whole batch.
    pub fn ingest(&mut self, checkpoints: Vec<LabelledCheckpoint>) {
        let n = checkpoints.len() as u64;
        // Journal-before-buffer: the batch is made durable before it can
        // mutate any state. A crash after the append replays the batch; a
        // crash before it loses rows the pipeline never observed — either
        // way no half-applied batch exists. Batch granularity is
        // load-bearing: the retrain gate runs once per batch, so replay
        // must re-feed the same batch boundaries to reproduce the same
        // retrain points.
        if self.journal.is_some() && n > 0 {
            let rows: Vec<JournalCheckpoint> = checkpoints
                .iter()
                .map(|cp| JournalCheckpoint {
                    features: cp.features.clone(),
                    ttf_secs: cp.ttf_secs,
                    predicted_ttf_secs: cp.predicted_ttf_secs,
                    predicted_generation: cp.predicted_generation,
                    monitor_only: cp.monitor_only,
                })
                .collect();
            self.journal_append(&JournalRecord::Checkpoints {
                class: self.journal_class.clone(),
                rows,
            });
        }
        // A landed publish — immediate for the synchronous action, later
        // for a pooled refit — re-arms the policy on a cleared window, so
        // the derivation only ever sees the *new* generation's errors.
        // Checked BEFORE the batch loop: the very batch that reveals an
        // asynchronous publish often carries the first errors of the new
        // generation, and they must land in the window (their generation
        // tag filters the stale stragglers riding alongside). Identity
        // policies never arm — the default configuration pays no window
        // bookkeeping at all.
        let generation = self.action.generation();
        if generation != self.last_generation {
            self.last_generation = generation;
            if !self.policy.is_identity() {
                self.policy_armed = true;
                self.fresh_errors.clear();
            }
        }
        // Telemetry is batch-granular: deltas accumulate in locals inside
        // the row loop and flow to the instruments once per batch below.
        let mut observed: u64 = 0;
        let mut events: u64 = 0;
        for cp in checkpoints {
            if let Some(err) = cp.abs_error_secs() {
                observed += 1;
                if self.monitor.observe(err).is_some() {
                    events += 1;
                    self.counters.drift_events.fetch_add(1, Ordering::Relaxed);
                    let drift_event = self.trace.emit(
                        EventScope::root().class(&self.trace_class),
                        EventKind::DriftObserved {
                            error_ewma_secs: self.monitor.error_ewma_secs().unwrap_or(err),
                            threshold_secs: self.counters.effective_error_threshold_secs(),
                        },
                    );
                    if !self.retrain_due {
                        self.armed_event = self.trace.emit(
                            EventScope::root().class(&self.trace_class).parent(drift_event),
                            EventKind::TriggerArmed { scheduled: false },
                        );
                    }
                    // Sticky: an early trigger waits for the buffer gate
                    // (and, pooled, for the in-flight job) instead of
                    // vanishing.
                    self.retrain_due = true;
                }
                if let Some(ewma) = self.monitor.error_ewma_secs() {
                    self.counters.error_ewma_bits.store(ewma.to_bits(), Ordering::Relaxed);
                }
                // Only errors attributable to the current generation
                // enter the policy window (untagged checkpoints — from
                // producers outside the fleet — count as current).
                let current_generation = cp
                    .predicted_generation
                    .is_none_or(|generation| generation == self.last_generation);
                if self.policy_armed && err.is_finite() && current_generation {
                    if self.fresh_errors.len() == self.fresh_errors_cap {
                        self.fresh_errors.pop_front();
                    }
                    self.fresh_errors.push_back(err);
                }
            }
            // Monitor-only observations (e.g. rejuvenation-epoch labels
            // against the counterfactual fork) inform drift and the
            // policy window above but never the training buffer or the
            // periodic schedule.
            if cp.monitor_only {
                continue;
            }
            if let Some(buffered) = self.action.buffer(cp.features, cp.ttf_secs) {
                self.counters.buffered.store(buffered as u64, Ordering::Relaxed);
            }
            self.since_scheduled += 1;
            // The periodic schedule is independent of the drift switch:
            // `retrain_every` with drift disabled is plain periodic
            // adaptation, drift without a schedule is event-driven only.
            if self.retrain_every.is_some_and(|every| self.since_scheduled >= every) {
                if !self.retrain_due {
                    self.armed_event = self.trace.emit(
                        EventScope::root().class(&self.trace_class),
                        EventKind::TriggerArmed { scheduled: true },
                    );
                }
                self.retrain_due = true;
            }
        }
        self.maybe_retrain();
        // One check covers both publish paths: a synchronous retrain just
        // moved the generation, an asynchronous one moved it before the
        // top-of-batch re-arm check ran.
        let generation = self.action.generation();
        if self.journal.is_some() && generation != self.journaled_generation {
            self.journaled_generation = generation;
            self.journal_append(&JournalRecord::GenerationPublished {
                class: self.journal_class.clone(),
                generation,
            });
        }
        if self.policy_armed {
            self.apply_policy();
        }
        self.instruments.drift_observations.add(observed);
        if events > 0 {
            self.instruments.drift_events.add(events);
        }
        self.instruments.buffer_occupancy.set(self.action.buffered() as f64);
        // Counted last so "all ingested" implies "every retrain these
        // checkpoints trigger has already run or been enqueued" — the
        // invariant `quiesce` implementations rely on.
        self.counters.ingested.fetch_add(n, Ordering::Relaxed);
    }

    fn maybe_retrain(&mut self) {
        if !self.retrain_due || self.action.buffered() < self.min_buffer_to_retrain {
            return;
        }
        // One `TriggerFired` per pending trigger, emitted the first time
        // the gate opens (deferred retries reuse it — the trigger fired
        // once, however long the in-flight refit makes it wait), and
        // emitted *before* the retrain so the refit events it parents
        // carry higher sequence numbers.
        if self.trace.enabled() && self.fired_event.is_none() {
            self.fired_event = self.trace.emit(
                EventScope::root().class(&self.trace_class).parent(self.armed_event),
                EventKind::TriggerFired { buffered: self.action.buffered() as u64 },
            );
            self.action.set_trace_parent(self.fired_event);
        }
        let disposition = self.action.retrain();
        if disposition == RetrainDisposition::Deferred {
            return;
        }
        self.retrain_due = false;
        self.since_scheduled = 0;
        self.armed_event = None;
        self.fired_event = None;
        match disposition {
            RetrainDisposition::Published => {
                self.counters.retrains.fetch_add(1, Ordering::Relaxed);
            }
            // The policy re-arms when the publish *lands* (the generation
            // check in `ingest`), not here: an enqueued refit is still
            // serving the stale generation, whose errors must not leak
            // into the fresh window.
            RetrainDisposition::Enqueued => {}
            RetrainDisposition::Failed => {
                self.counters.failed_retrains.fetch_add(1, Ordering::Relaxed);
            }
            RetrainDisposition::Deferred => unreachable!("handled above"),
        }
    }

    /// Consults the threshold policy with the errors attributed to the
    /// current generation and applies any update: the drift level moves
    /// on the monitor immediately, the rejuvenation override flows to the
    /// action's serving side, and the policy disarms until the next
    /// publish. Rejects non-finite or non-positive policy output
    /// wholesale — a policy bug must never poison the monitor.
    fn apply_policy(&mut self) {
        // `make_contiguous` instead of collecting: this runs once per
        // batch while armed (indefinitely, for an identity policy that
        // never answers), so it must not allocate.
        let window: &[f64] = self.fresh_errors.make_contiguous();
        let Some(update) = self.policy.on_publish(window, &self.thresholds) else {
            return;
        };
        let level_ok = update.error_threshold_secs.is_finite() && update.error_threshold_secs > 0.0;
        let rejuvenation_ok =
            update.rejuvenation_threshold_secs.is_none_or(|s| s.is_finite() && s > 0.0);
        if !level_ok || !rejuvenation_ok {
            // Ignored, as the trait doc promises — the policy stays armed
            // and is consulted again as more errors accumulate, so a
            // transient derivation bug cannot silently cancel self-tuning
            // until the next publish.
            return;
        }
        self.policy_armed = false;
        self.trace.emit(
            EventScope::root()
                .class(&self.trace_class)
                .generation(self.last_generation)
                .parent(self.action.last_publish_event()),
            EventKind::ThresholdsRederived {
                drift_threshold_secs: update.error_threshold_secs,
                rejuvenation_threshold_secs: update.rejuvenation_threshold_secs,
            },
        );
        if self.journal.is_some() {
            self.journal_append(&JournalRecord::ThresholdsRederived {
                class: self.journal_class.clone(),
                error_threshold_secs: update.error_threshold_secs,
                rejuvenation_threshold_secs: update.rejuvenation_threshold_secs,
            });
        }
        self.monitor.set_error_threshold_secs(update.error_threshold_secs);
        self.counters
            .effective_error_threshold_bits
            .store(update.error_threshold_secs.to_bits(), Ordering::Relaxed);
        if let Some(secs) = update.rejuvenation_threshold_secs {
            self.counters
                .effective_rejuvenation_threshold_bits
                .store(secs.to_bits(), Ordering::Relaxed);
        }
        self.action.apply_thresholds(&update);
        self.thresholds = update;
    }

    /// The shared counters handle (clone for concurrent stats readers).
    pub fn counters(&self) -> Arc<PipelineCounters> {
        Arc::clone(&self.counters)
    }

    /// The thresholds currently in force.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// A 64-bit digest of the pipeline's replay-relevant state: serving
    /// generation, buffered row count, effective thresholds and the
    /// action's own buffer digest. A journal replay that reproduces this
    /// value has restored the adaptation state bit for bit.
    pub fn state_digest(&self) -> u64 {
        let mut digest = Digest64::new();
        digest.write_u64(self.action.generation());
        digest.write_u64(self.action.buffered() as u64);
        digest.write_f64(self.thresholds.error_threshold_secs);
        match self.thresholds.rejuvenation_threshold_secs {
            Some(secs) => {
                digest.write_u64(1);
                digest.write_f64(secs);
            }
            None => digest.write_u64(0),
        }
        digest.write_u64(self.action.state_digest());
        digest.finish()
    }

    /// Whether a sticky retrain trigger is pending (fired but not yet past
    /// the buffer gate or the in-flight job).
    pub fn retrain_pending(&self) -> bool {
        self.retrain_due
    }

    /// The drift monitor (read-only; the pipeline owns its updates).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// The retrain action.
    pub fn action(&self) -> &A {
        &self.action
    }

    /// Mutable access to the retrain action (e.g. to drain a test
    /// action's log).
    pub fn action_mut(&mut self) -> &mut A {
        &mut self.action
    }

    /// Consumes the pipeline and returns its retrain action — how a
    /// retired class's sliding buffer is recovered for draining into a
    /// merge target.
    pub fn into_action(self) -> A {
        self.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FixedThresholds;
    use crate::{DriftConfig, QuantileAdaptive};

    /// A scripted action: buffers rows, answers retrains from a queue of
    /// dispositions, and logs every call.
    #[derive(Debug)]
    struct ScriptedAction {
        rows: Vec<(Vec<f64>, f64)>,
        arity: usize,
        dispositions: Vec<RetrainDisposition>,
        retrain_calls: usize,
        generation: u64,
        applied: Vec<Thresholds>,
    }

    impl ScriptedAction {
        fn new(arity: usize, dispositions: Vec<RetrainDisposition>) -> Self {
            ScriptedAction {
                rows: Vec::new(),
                arity,
                dispositions,
                retrain_calls: 0,
                generation: 0,
                applied: Vec::new(),
            }
        }
    }

    impl RetrainAction for ScriptedAction {
        fn buffer(&mut self, features: Vec<f64>, ttf_secs: f64) -> Option<usize> {
            if features.len() != self.arity {
                return None;
            }
            self.rows.push((features, ttf_secs));
            Some(self.rows.len())
        }

        fn buffered(&self) -> usize {
            self.rows.len()
        }

        fn retrain(&mut self) -> RetrainDisposition {
            let disposition = self
                .dispositions
                .get(self.retrain_calls)
                .copied()
                .unwrap_or(RetrainDisposition::Published);
            self.retrain_calls += 1;
            if disposition == RetrainDisposition::Published {
                self.generation += 1;
            }
            disposition
        }

        fn generation(&self) -> u64 {
            self.generation
        }

        fn apply_thresholds(&mut self, thresholds: &Thresholds) {
            self.applied.push(*thresholds);
        }
    }

    fn config(min_buffer: usize, retrain_every: Option<usize>) -> AdaptConfig {
        let mut builder = AdaptConfig::builder()
            .drift(DriftConfig {
                enabled: true,
                ewma_alpha: 0.5,
                error_threshold_secs: 100.0,
                min_observations: 4,
                trend_window: 64,
                trend_tolerance_secs: 100.0,
                trend_slope_threshold: 5.0,
                cooldown_observations: 1_000,
            })
            .buffer_capacity(512)
            .min_buffer_to_retrain(min_buffer);
        if let Some(every) = retrain_every {
            builder = builder.retrain_every(every);
        }
        builder.build()
    }

    /// An untagged checkpoint (external-producer style: counts as the
    /// current generation for the policy window).
    fn cp(err: f64) -> LabelledCheckpoint {
        LabelledCheckpoint::new(vec![1.0], 100.0, Some(100.0 + err))
    }

    /// A generation-tagged checkpoint, as the fleet produces them.
    fn cp_gen(err: f64, generation: u64) -> LabelledCheckpoint {
        LabelledCheckpoint {
            predicted_generation: Some(generation),
            ..LabelledCheckpoint::new(vec![1.0], 100.0, Some(100.0 + err))
        }
    }

    #[test]
    fn sticky_trigger_waits_for_the_buffer_gate() {
        let action = ScriptedAction::new(1, vec![RetrainDisposition::Published]);
        let mut p = AdaptationPipeline::new(&config(8, None), Arc::new(FixedThresholds), action);
        // Huge errors: drift fires well before 8 rows are buffered.
        p.ingest((0..5).map(|_| cp(5_000.0)).collect());
        assert!(p.retrain_pending(), "trigger must be pending below the gate");
        assert_eq!(p.action().retrain_calls, 0);
        assert_eq!(p.counters().drift_events(), 1);
        // Quiet rows fill the buffer: the pending trigger must release.
        p.ingest((0..3).map(|_| cp(0.0)).collect());
        assert!(!p.retrain_pending());
        assert_eq!(p.action().retrain_calls, 1);
        assert_eq!(p.counters().retrains(), 1);
        assert_eq!(p.counters().ingested(), 8);
    }

    #[test]
    fn deferred_retrain_keeps_the_trigger_pending() {
        let action = ScriptedAction::new(
            1,
            vec![RetrainDisposition::Deferred, RetrainDisposition::Enqueued],
        );
        let mut p = AdaptationPipeline::new(&config(2, None), Arc::new(FixedThresholds), action);
        p.ingest((0..4).map(|_| cp(5_000.0)).collect());
        assert!(p.retrain_pending(), "Deferred must not consume the trigger");
        assert_eq!(p.action().retrain_calls, 1);
        // Next batch retries and the Enqueued disposition consumes it.
        p.ingest(vec![cp(0.0)]);
        assert!(!p.retrain_pending());
        assert_eq!(p.action().retrain_calls, 2);
        assert_eq!(p.counters().retrains(), 0, "enqueued jobs are counted by their worker");
    }

    #[test]
    fn failed_retrain_consumes_the_trigger_without_policy() {
        let action = ScriptedAction::new(1, vec![RetrainDisposition::Failed]);
        let mut p = AdaptationPipeline::new(
            &config(2, None),
            Arc::new(QuantileAdaptive { min_samples: 1, ..Default::default() }),
            action,
        );
        p.ingest((0..4).map(|_| cp(5_000.0)).collect());
        assert!(!p.retrain_pending());
        assert_eq!(p.counters().failed_retrains(), 1);
        assert!(p.action().applied.is_empty(), "no publish, no policy consult");
        assert_eq!(p.thresholds().rejuvenation_threshold_secs, None);
    }

    #[test]
    fn scheduled_retraining_is_independent_of_drift() {
        let mut cfg = config(1, Some(10));
        cfg.drift = DriftConfig::disabled();
        let action = ScriptedAction::new(1, Vec::new());
        let mut p = AdaptationPipeline::new(&cfg, Arc::new(FixedThresholds), action);
        for _ in 0..3 {
            p.ingest((0..10).map(|_| cp(0.0)).collect());
        }
        assert_eq!(p.action().retrain_calls, 3, "one scheduled retrain per 10 checkpoints");
        assert_eq!(p.counters().drift_events(), 0);
    }

    #[test]
    fn mismatched_arity_rows_are_counted_but_not_buffered() {
        let action = ScriptedAction::new(2, Vec::new());
        let mut p = AdaptationPipeline::new(&config(100, None), Arc::new(FixedThresholds), action);
        p.ingest(vec![cp(0.0)]); // arity 1 row into an arity-2 action
        assert_eq!(p.counters().ingested(), 1);
        assert_eq!(p.counters().buffered(), 0);
    }

    #[test]
    fn policy_derives_from_the_fresh_post_publish_errors() {
        let action = ScriptedAction::new(1, vec![RetrainDisposition::Published]);
        let policy = QuantileAdaptive { min_samples: 4, ..Default::default() };
        let mut p = AdaptationPipeline::new(&config(2, None), Arc::new(policy), action);
        // Huge stale-model errors trigger drift and the publish; the
        // policy must NOT derive from them — it arms on the publish and
        // waits for the new generation's error stream.
        p.ingest((0..6).map(|_| cp(5_000.0)).collect());
        assert_eq!(p.counters().retrains(), 1);
        assert_eq!(p.thresholds().error_threshold_secs, 100.0, "no fresh errors yet");
        assert!(p.action().applied.is_empty());
        // Three fresh errors: still below the policy's min_samples.
        p.ingest((0..3).map(|_| cp(150.0)).collect());
        assert_eq!(p.thresholds().error_threshold_secs, 100.0);
        // The fourth fresh error releases the derivation — from the fresh
        // constant 150 s stream: drift level 4×150 = 600, rejuvenation
        // 300 + 150 = 450. The stale 5000 s errors left no trace.
        p.ingest(vec![cp(150.0)]);
        assert_eq!(p.thresholds().error_threshold_secs, 600.0);
        assert_eq!(p.thresholds().rejuvenation_threshold_secs, Some(450.0));
        assert_eq!(p.monitor().error_threshold_secs(), 600.0);
        assert_eq!(p.counters().effective_error_threshold_secs(), 600.0);
        assert_eq!(p.counters().effective_rejuvenation_threshold_secs(), Some(450.0));
        assert_eq!(p.action().applied.len(), 1);
        // Disarmed until the next publish: more errors change nothing.
        p.ingest((0..8).map(|_| cp(40.0)).collect());
        assert_eq!(p.thresholds().error_threshold_secs, 600.0);
        assert_eq!(p.action().applied.len(), 1);
    }

    #[test]
    fn monitor_only_observations_inform_drift_but_never_train() {
        let action = ScriptedAction::new(1, Vec::new());
        let mut cfg = config(1, Some(10));
        cfg.drift = DriftConfig::disabled();
        let mut p = AdaptationPipeline::new(&cfg, Arc::new(FixedThresholds), action);
        // 30 monitor-only observations: ingested and error-tracked, but
        // no rows buffered and the periodic schedule must not tick.
        p.ingest(
            (0..30).map(|_| LabelledCheckpoint::monitor_observation(100.0, 400.0, None)).collect(),
        );
        assert_eq!(p.counters().ingested(), 30);
        assert_eq!(p.counters().buffered(), 0, "monitor-only rows never enter the buffer");
        assert_eq!(p.action().retrain_calls, 0, "monitor-only rows never tick the schedule");
        assert_eq!(p.counters().error_ewma_secs(), Some(300.0), "their errors still flow");
        // Trainable rows alongside them behave exactly as before.
        p.ingest((0..10).map(|_| cp(0.0)).collect());
        assert_eq!(p.counters().buffered(), 10);
        assert_eq!(p.action().retrain_calls, 1, "10 trainable rows tick the schedule once");
    }

    #[test]
    fn stale_generation_stragglers_are_excluded_from_the_policy_window() {
        let action = ScriptedAction::new(1, vec![RetrainDisposition::Published]);
        let policy = QuantileAdaptive { min_samples: 4, ..Default::default() };
        let mut p = AdaptationPipeline::new(&config(2, None), Arc::new(policy), action);
        // Generation-0 errors trigger drift; the retrain publishes
        // generation 1.
        p.ingest((0..6).map(|_| cp_gen(5_000.0, 0)).collect());
        assert_eq!(p.counters().retrains(), 1);
        // Straggler epochs keep delivering generation-0-labelled errors
        // after the swap (retrospective labelling): they must never enter
        // the fresh window, however many arrive.
        p.ingest((0..32).map(|_| cp_gen(5_000.0, 0)).collect());
        assert_eq!(p.thresholds().error_threshold_secs, 100.0, "stragglers must not derive");
        // A batch mixing stragglers with generation-1 errors: only the
        // four generation-1 samples count, and they alone release the
        // derivation — 4×150 = 600 / 300+150 = 450, no straggler trace.
        let mut mixed: Vec<LabelledCheckpoint> = (0..6).map(|_| cp_gen(5_000.0, 0)).collect();
        mixed.extend((0..4).map(|_| cp_gen(150.0, 1)));
        p.ingest(mixed);
        assert_eq!(p.thresholds().error_threshold_secs, 600.0);
        assert_eq!(p.thresholds().rejuvenation_threshold_secs, Some(450.0));
    }

    /// A policy that returns poisoned thresholds; the pipeline must reject
    /// them wholesale.
    #[derive(Debug)]
    struct PoisonPolicy;

    impl ThresholdPolicy for PoisonPolicy {
        fn on_publish(&self, _: &[f64], _: &Thresholds) -> Option<Thresholds> {
            Some(Thresholds {
                error_threshold_secs: f64::NAN,
                rejuvenation_threshold_secs: Some(-5.0),
            })
        }
    }

    #[test]
    fn instruments_mirror_telemetry_batchwise() {
        use aging_obs::Registry;
        let action = ScriptedAction::new(1, Vec::new());
        let mut p = AdaptationPipeline::new(&config(100, None), Arc::new(FixedThresholds), action);
        let registry = Registry::shared();
        p.set_instruments(PipelineInstruments::resolve(registry.as_ref(), "web"));
        p.ingest((0..5).map(|_| cp(5_000.0)).collect());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("adapt_drift_observations_total", Some("web")), Some(5));
        assert_eq!(
            snap.counter("adapt_drift_events_total", Some("web")),
            Some(p.counters().drift_events()),
            "instrument mirrors the shared counter"
        );
        assert!(p.counters().drift_events() > 0);
        assert_eq!(snap.gauge("adapt_buffer_occupancy_rows", Some("web")), Some(5.0));
    }

    #[test]
    fn non_finite_policy_output_is_rejected() {
        let action = ScriptedAction::new(1, vec![RetrainDisposition::Published]);
        let mut p = AdaptationPipeline::new(&config(2, None), Arc::new(PoisonPolicy), action);
        p.ingest((0..6).map(|_| cp(5_000.0)).collect());
        assert_eq!(p.counters().retrains(), 1);
        assert_eq!(p.thresholds().error_threshold_secs, 100.0, "poison must be discarded");
        assert_eq!(p.monitor().error_threshold_secs(), 100.0);
        assert!(p.action().applied.is_empty());
    }
}
