//! Drift detection over the serving model's prediction-error stream.
//!
//! The paper's central claim is that an *adaptive* predictor — retrained
//! on recent checkpoints — beats a static model once the workload moves
//! away from the training regime. The [`DriftMonitor`] decides *when* that
//! has happened by fusing two signals over the stream of retrospective
//! prediction errors:
//!
//! - an **error-level** test: an exponentially weighted moving average of
//!   the absolute TTF error crossing an absolute threshold means the model
//!   is simply wrong in the current regime, however it got there;
//! - an **error-trend** test: [`aging_ml::segment::diagnose`] over the
//!   recent error window returning `Degrading` means the error is growing
//!   steadily — the drift signature of Cherkasova et al.'s change
//!   detection, catching a deteriorating model *before* it breaches the
//!   absolute level.
//!
//! Either signal fires a [`DriftEvent`]; a cooldown then suppresses repeat
//! triggers until the retrained model has had a chance to produce fresh
//! errors.

use aging_ml::segment::{diagnose, SeriesDiagnosis};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tuning for the [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Master switch: when `false`, [`DriftMonitor::observe`] never fires
    /// (the service degenerates to a frozen-model server, which is what
    /// the single-instance parity guarantee relies on).
    pub enabled: bool,
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub ewma_alpha: f64,
    /// Error level (seconds of absolute TTF error, EWMA-smoothed) above
    /// which the model counts as drifted.
    pub error_threshold_secs: f64,
    /// Minimum observations before any trigger — a fresh monitor must not
    /// fire on its first few samples.
    pub min_observations: usize,
    /// Length of the recent-error window handed to the trend test.
    pub trend_window: usize,
    /// Residual tolerance (seconds) for the piecewise-linear fit of the
    /// trend test.
    pub trend_tolerance_secs: f64,
    /// Slope (seconds of error growth per observation) above which the
    /// trend test reports degradation.
    pub trend_slope_threshold: f64,
    /// Observations to swallow after a trigger before re-arming.
    pub cooldown_observations: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            enabled: true,
            ewma_alpha: 0.1,
            error_threshold_secs: 900.0,
            min_observations: 30,
            trend_window: 64,
            trend_tolerance_secs: 600.0,
            trend_slope_threshold: 10.0,
            cooldown_observations: 50,
        }
    }
}

impl DriftConfig {
    /// A configuration that never triggers (frozen-model behaviour).
    pub fn disabled() -> Self {
        DriftConfig { enabled: false, ..Default::default() }
    }

    /// Panics with a message when a parameter is degenerate.
    pub(crate) fn validate(&self) {
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "ewma_alpha must be in (0, 1], got {}",
            self.ewma_alpha
        );
        assert!(self.error_threshold_secs > 0.0, "error threshold must be positive");
        assert!(self.trend_window >= 2, "trend window needs at least 2 observations");
        assert!(self.trend_tolerance_secs > 0.0, "trend tolerance must be positive");
        assert!(
            self.trend_slope_threshold >= 0.0 && self.trend_slope_threshold.is_finite(),
            "trend slope threshold must be finite and non-negative (a negative value would \
             classify flat error series as drifting)"
        );
    }
}

/// Why the monitor decided the model has drifted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DriftEvent {
    /// The error EWMA breached the absolute threshold.
    ErrorLevel {
        /// The EWMA value at the trigger, seconds.
        ewma_secs: f64,
    },
    /// The recent error window diagnoses as steadily degrading.
    ErrorTrend {
        /// Length-weighted mean error growth, seconds per observation.
        mean_slope: f64,
    },
}

/// Streaming drift detector; see the module docs.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: DriftConfig,
    ewma: Option<f64>,
    recent: VecDeque<f64>,
    observations: u64,
    since_trigger: usize,
    events: u64,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configuration values (non-positive thresholds,
    /// `ewma_alpha` outside `(0, 1]`, a trend window below 2).
    pub fn new(config: DriftConfig) -> Self {
        config.validate();
        DriftMonitor {
            config,
            ewma: None,
            recent: VecDeque::with_capacity(config.trend_window),
            observations: 0,
            since_trigger: usize::MAX,
            events: 0,
        }
    }

    /// Feeds one absolute prediction error (seconds); returns the drift
    /// event when this observation tips the decision.
    ///
    /// Non-finite errors are counted but excluded from both the EWMA and
    /// the trend window, and they can never be the observation that fires
    /// the event (a poisoned error sample must not trigger — or mask — a
    /// fleet-wide retrain; the decision waits for the next finite sample).
    pub fn observe(&mut self, abs_error_secs: f64) -> Option<DriftEvent> {
        self.observations += 1;
        self.since_trigger = self.since_trigger.saturating_add(1);
        if !abs_error_secs.is_finite() {
            return None;
        }
        let alpha = self.config.ewma_alpha;
        self.ewma = Some(match self.ewma {
            None => abs_error_secs,
            Some(prev) => alpha * abs_error_secs + (1.0 - alpha) * prev,
        });
        if self.recent.len() == self.config.trend_window {
            self.recent.pop_front();
        }
        self.recent.push_back(abs_error_secs);
        if !self.config.enabled
            || self.observations < self.config.min_observations as u64
            || self.since_trigger < self.config.cooldown_observations
        {
            return None;
        }
        let event = self.decide();
        if event.is_some() {
            self.events += 1;
            self.since_trigger = 0;
        }
        event
    }

    fn decide(&self) -> Option<DriftEvent> {
        if let Some(ewma) = self.ewma {
            if ewma > self.config.error_threshold_secs {
                return Some(DriftEvent::ErrorLevel { ewma_secs: ewma });
            }
        }
        if self.recent.len() >= self.config.trend_window {
            let series: Vec<f64> = self.recent.iter().copied().collect();
            if let SeriesDiagnosis::Degrading { mean_slope } = diagnose(
                &series,
                self.config.trend_tolerance_secs,
                self.config.trend_slope_threshold,
            ) {
                return Some(DriftEvent::ErrorTrend { mean_slope });
            }
        }
        None
    }

    /// The smoothed absolute error, seconds (`None` before the first
    /// finite observation).
    pub fn error_ewma_secs(&self) -> Option<f64> {
        self.ewma
    }

    /// The error level (seconds) currently in force for the level test.
    pub fn error_threshold_secs(&self) -> f64 {
        self.config.error_threshold_secs
    }

    /// Moves the error-level threshold — the hook self-tuning
    /// [`crate::ThresholdPolicy`] implementations use to re-derive the
    /// level from observed error quantiles on every publish. Takes effect
    /// from the next observation; EWMA, trend window and cooldown state
    /// are untouched.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is non-finite or non-positive (the
    /// [`crate::AdaptationPipeline`] sanitises policy output before
    /// calling this).
    pub fn set_error_threshold_secs(&mut self, secs: f64) {
        assert!(secs.is_finite() && secs > 0.0, "error threshold must be finite and positive");
        self.config.error_threshold_secs = secs;
    }

    /// The monitor's rolling window of finite absolute errors (oldest
    /// first; at most [`DriftConfig::trend_window`] entries) — the series
    /// the *trend test* diagnoses, exposed for observability. Note this
    /// is **not** the window threshold policies derive from: the
    /// [`crate::AdaptationPipeline`] hands policies its own
    /// generation-filtered post-publish window, precisely so stale
    /// stragglers in this rolling window cannot contaminate a derivation.
    pub fn recent_errors(&self) -> Vec<f64> {
        self.recent.iter().copied().collect()
    }

    /// Total observations consumed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Drift events fired so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> DriftConfig {
        DriftConfig {
            enabled: true,
            ewma_alpha: 0.2,
            error_threshold_secs: 500.0,
            min_observations: 10,
            trend_window: 16,
            trend_tolerance_secs: 50.0,
            trend_slope_threshold: 5.0,
            cooldown_observations: 20,
        }
    }

    #[test]
    fn small_errors_never_trigger() {
        let mut m = DriftMonitor::new(quick_config());
        for _ in 0..500 {
            assert_eq!(m.observe(50.0), None);
        }
        assert_eq!(m.events(), 0);
    }

    #[test]
    fn error_level_breach_triggers_once_per_cooldown() {
        let mut m = DriftMonitor::new(quick_config());
        let mut events = Vec::new();
        for _ in 0..60 {
            if let Some(e) = m.observe(3000.0) {
                events.push(e);
            }
        }
        assert!(!events.is_empty(), "sustained huge errors must trigger");
        assert!(matches!(events[0], DriftEvent::ErrorLevel { ewma_secs } if ewma_secs > 500.0));
        // Cooldown throttles: at most one event per 20 observations.
        assert!(events.len() <= 3, "cooldown must throttle, got {}", events.len());
    }

    #[test]
    fn growing_error_triggers_trend_before_level() {
        // Errors climbing 20 s per observation: the EWMA lags well below
        // the 500 s level for a while, but the trend test sees the slope.
        let mut m = DriftMonitor::new(quick_config());
        let mut first = None;
        for i in 0..100 {
            if let Some(e) = m.observe(20.0 * i as f64) {
                first = Some((i, e));
                break;
            }
        }
        let (at, event) = first.expect("steady growth must trigger");
        match event {
            DriftEvent::ErrorTrend { mean_slope } => {
                assert!((mean_slope - 20.0).abs() < 2.0, "slope ≈ 20, got {mean_slope}");
            }
            DriftEvent::ErrorLevel { .. } => panic!("trend must fire before the level breach"),
        }
        assert!(at >= 15, "needs a full trend window first");
    }

    #[test]
    fn stationary_noisy_errors_never_trigger() {
        // A stationary error stream with deterministic "noise" riding well
        // below the threshold: neither the level test (EWMA ≈ 150 « 500)
        // nor the trend test (zero long-run slope) may ever fire.
        // Alternating jitter: flat long-run level, no sustained slope, and
        // the ±40 s amplitude sits inside the trend test's tolerance.
        let mut m = DriftMonitor::new(quick_config());
        for i in 0..2000 {
            let noise = if i % 2 == 0 { 40.0 } else { -40.0 };
            assert_eq!(m.observe(150.0 + noise), None, "observation {i} fired spuriously");
        }
        assert_eq!(m.events(), 0);
        let ewma = m.error_ewma_secs().unwrap();
        assert!((ewma - 150.0).abs() < 60.0, "EWMA must hover near the mean, got {ewma}");
    }

    #[test]
    fn error_level_step_fires_after_the_step() {
        // Quiet regime, then an injected step in the error level: the
        // event must fire — and only after the step.
        let mut m = DriftMonitor::new(quick_config());
        for _ in 0..200 {
            assert_eq!(m.observe(100.0), None, "pre-step observations must stay quiet");
        }
        let mut fired_at = None;
        for i in 0..50 {
            if m.observe(2500.0).is_some() {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("an error-level step must trigger drift");
        assert!(at < 20, "the step must register promptly, took {at} observations");
    }

    /// Mirror of the `segment::diagnose` non-finite fix at the monitor
    /// level: a monitor fed NaN/inf garbage in between must behave
    /// *identically* to one that never saw it — same EWMA, same trend
    /// window, same decisions.
    #[test]
    fn non_finite_errors_leave_the_monitor_equivalent_to_a_clean_one() {
        let mut clean = DriftMonitor::new(quick_config());
        let mut dirty = DriftMonitor::new(quick_config());
        let mut clean_events = 0;
        let mut dirty_events = 0;
        for i in 0..120 {
            // A ramp that eventually trends into a trigger.
            let err = 30.0 * i as f64;
            if clean.observe(err).is_some() {
                clean_events += 1;
            }
            if dirty.observe(err).is_some() {
                dirty_events += 1;
            }
            // Poison only the dirty monitor, every third observation.
            if i % 3 == 0 {
                assert_eq!(dirty.observe(f64::NAN), None, "NaN must never trigger");
                assert_eq!(dirty.observe(f64::INFINITY), None, "inf must never trigger");
                assert_eq!(dirty.observe(f64::NEG_INFINITY), None);
            }
        }
        assert_eq!(
            clean.error_ewma_secs().unwrap().to_bits(),
            dirty.error_ewma_secs().unwrap().to_bits(),
            "the EWMA must be bit-identical with and without non-finite noise"
        );
        // Both streams see the same finite ramp, so both must detect it;
        // only event *timing* may differ (poisoned samples still tick the
        // cooldown counter).
        assert!(clean_events >= 1, "the ramp must trigger the clean monitor");
        assert!(dirty_events >= 1, "the ramp must trigger the poisoned monitor too");
    }

    #[test]
    fn disabled_monitor_never_fires() {
        let mut m = DriftMonitor::new(DriftConfig::disabled());
        for i in 0..200 {
            assert_eq!(m.observe(1e6 + i as f64), None);
        }
        assert_eq!(m.events(), 0);
        assert!(m.error_ewma_secs().unwrap() > 0.0, "statistics still accumulate");
    }

    #[test]
    fn non_finite_errors_are_ignored_by_the_statistics() {
        let mut m = DriftMonitor::new(quick_config());
        for _ in 0..30 {
            m.observe(100.0);
        }
        let before = m.error_ewma_secs().unwrap();
        m.observe(f64::NAN);
        m.observe(f64::INFINITY);
        assert_eq!(m.error_ewma_secs().unwrap(), before);
        assert_eq!(m.observations(), 32);
    }

    #[test]
    fn min_observations_gates_the_first_trigger() {
        let mut m = DriftMonitor::new(quick_config());
        for i in 0..9 {
            assert_eq!(m.observe(5000.0), None, "observation {i} must be gated");
        }
        assert!(m.observe(5000.0).is_some(), "gate lifts at min_observations");
    }

    #[test]
    fn moving_the_level_threshold_takes_effect_immediately() {
        let mut m = DriftMonitor::new(quick_config());
        for _ in 0..50 {
            assert_eq!(m.observe(300.0), None, "300 s sits under the 500 s level");
        }
        assert_eq!(m.error_threshold_secs(), 500.0);
        // A self-tuning policy lowers the bar below the current EWMA: the
        // very next observation must fire the level test.
        m.set_error_threshold_secs(200.0);
        assert!(matches!(m.observe(300.0), Some(DriftEvent::ErrorLevel { .. })));
        // And raising it re-quiets the monitor (cooldown aside).
        m.set_error_threshold_secs(5_000.0);
        for _ in 0..100 {
            m.observe(300.0);
        }
        assert_eq!(m.events(), 1, "only the lowered-bar event may have fired");
    }

    #[test]
    fn recent_errors_exposes_the_finite_window_oldest_first() {
        let mut m = DriftMonitor::new(quick_config());
        m.observe(1.0);
        m.observe(f64::NAN);
        m.observe(2.0);
        m.observe(f64::INFINITY);
        m.observe(3.0);
        assert_eq!(m.recent_errors(), vec![1.0, 2.0, 3.0]);
        for i in 0..100 {
            m.observe(i as f64);
        }
        assert_eq!(m.recent_errors().len(), quick_config().trend_window);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_finite_threshold_update_rejected() {
        let mut m = DriftMonitor::new(quick_config());
        m.set_error_threshold_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "ewma_alpha")]
    fn degenerate_alpha_rejected() {
        let _ = DriftMonitor::new(DriftConfig { ewma_alpha: 0.0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "trend slope threshold")]
    fn negative_slope_threshold_rejected() {
        let _ =
            DriftMonitor::new(DriftConfig { trend_slope_threshold: -1.0, ..Default::default() });
    }
}
