//! The checkpoint bus: asynchronous ingestion of labelled monitoring data.
//!
//! A production deployment does not hand checkpoints to the analysis
//! subsystem in lock-step function calls — monitors push them over a
//! transport and the analysis side drains at its own pace. The
//! [`CheckpointBus`] is that transport: a multi-producer channel carrying
//! [`CheckpointBatch`]es from any number of sources (fleet shards, external
//! monitor streams, replayed traces) to one consumer (normally the
//! retrainer thread of [`crate::AdaptiveService`]). Sending never blocks
//! the producer, so the fleet's worker pool is fully decoupled from
//! retraining.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// One monitoring checkpoint with its ground-truth label, ready for the
/// sliding training buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledCheckpoint {
    /// Feature row, in the adaptation service's feature-set order.
    pub features: Vec<f64>,
    /// True (retrospective) time to failure in seconds, capped by the
    /// producer at its labelling horizon.
    pub ttf_secs: f64,
    /// The TTF the serving model predicted at this checkpoint, if one was
    /// made — the drift monitor turns `|predicted − ttf|` into its error
    /// signal.
    pub predicted_ttf_secs: Option<f64>,
}

impl LabelledCheckpoint {
    /// Absolute prediction error in seconds, if a prediction was made.
    pub fn abs_error_secs(&self) -> Option<f64> {
        self.predicted_ttf_secs.map(|p| (p - self.ttf_secs).abs())
    }
}

/// A batch of labelled checkpoints from one source — typically one
/// completed (crashed or proactively restarted) service epoch of one
/// instance, labelled retrospectively.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBatch {
    /// Producer identifier (instance name, stream name, …).
    pub source: String,
    /// The labelled checkpoints, in time order.
    pub checkpoints: Vec<LabelledCheckpoint>,
}

/// Sending half of the bus. Cheap to clone — every shard/producer holds its
/// own handle.
#[derive(Debug, Clone)]
pub struct CheckpointBus {
    tx: Sender<CheckpointBatch>,
    enqueued: Arc<AtomicU64>,
}

impl CheckpointBus {
    /// Creates a connected bus/receiver pair.
    pub fn channel() -> (CheckpointBus, BusReceiver) {
        let (tx, rx) = mpsc::channel();
        (CheckpointBus { tx, enqueued: Arc::new(AtomicU64::new(0)) }, BusReceiver { rx })
    }

    /// Publishes a batch. Returns `false` when the consumer is gone (the
    /// service shut down) — producers treat that as "adaptation disabled"
    /// and keep operating on their pinned model.
    pub fn publish(&self, batch: CheckpointBatch) -> bool {
        let n = batch.checkpoints.len() as u64;
        let sent = self.tx.send(batch).is_ok();
        if sent {
            self.enqueued.fetch_add(n, Ordering::Relaxed);
        }
        sent
    }

    /// Total checkpoints successfully published across all clones of this
    /// bus — together with the consumer's ingested count, this lets tests
    /// and examples wait for the bus to drain.
    pub fn enqueued_checkpoints(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }
}

/// Error returned by [`BusReceiver::recv_timeout`] once every producer
/// handle has been dropped and the queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusDisconnected;

impl std::fmt::Display for BusDisconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all checkpoint-bus producers disconnected")
    }
}

impl std::error::Error for BusDisconnected {}

/// Receiving half of the bus, owned by the retraining consumer.
#[derive(Debug)]
pub struct BusReceiver {
    rx: Receiver<CheckpointBatch>,
}

impl BusReceiver {
    /// Blocks for the next batch until `timeout`; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`BusDisconnected`] when every producer hung up and the
    /// queue is drained.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<CheckpointBatch>, BusDisconnected> {
        match self.rx.recv_timeout(timeout) {
            Ok(batch) => Ok(Some(batch)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(BusDisconnected),
        }
    }

    /// Drains whatever is queued right now without blocking.
    pub fn drain(&self) -> Vec<CheckpointBatch> {
        let mut out = Vec::new();
        while let Ok(batch) = self.rx.try_recv() {
            out.push(batch);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(ttf: f64, pred: Option<f64>) -> LabelledCheckpoint {
        LabelledCheckpoint { features: vec![1.0, 2.0], ttf_secs: ttf, predicted_ttf_secs: pred }
    }

    #[test]
    fn batches_arrive_in_order_per_producer() {
        let (bus, rx) = CheckpointBus::channel();
        for i in 0..5 {
            assert!(bus.publish(CheckpointBatch {
                source: format!("s{i}"),
                checkpoints: vec![cp(i as f64, None)],
            }));
        }
        let got = rx.drain();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].source, "s0");
        assert_eq!(got[4].source, "s4");
    }

    #[test]
    fn clones_share_the_channel() {
        let (bus, rx) = CheckpointBus::channel();
        let bus2 = bus.clone();
        std::thread::scope(|scope| {
            scope
                .spawn(|| bus.publish(CheckpointBatch { source: "a".into(), checkpoints: vec![] }));
            scope.spawn(|| {
                bus2.publish(CheckpointBatch { source: "b".into(), checkpoints: vec![] })
            });
        });
        let mut sources: Vec<String> = rx.drain().into_iter().map(|b| b.source).collect();
        sources.sort();
        assert_eq!(sources, vec!["a", "b"]);
    }

    #[test]
    fn publish_reports_consumer_gone() {
        let (bus, rx) = CheckpointBus::channel();
        drop(rx);
        assert!(!bus.publish(CheckpointBatch { source: "x".into(), checkpoints: vec![] }));
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_closed() {
        let (bus, rx) = CheckpointBus::channel();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(None));
        drop(bus);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(BusDisconnected));
    }

    #[test]
    fn abs_error_requires_a_prediction() {
        assert_eq!(cp(100.0, None).abs_error_secs(), None);
        assert_eq!(cp(100.0, Some(40.0)).abs_error_secs(), Some(60.0));
    }
}
