//! The checkpoint bus: asynchronous, *bounded* ingestion of labelled
//! monitoring data.
//!
//! A production deployment does not hand checkpoints to the analysis
//! subsystem in lock-step function calls — monitors push them over a
//! transport and the analysis side drains at its own pace. The
//! [`CheckpointBus`] is that transport: a multi-producer ring carrying
//! [`CheckpointBatch`]es from any number of sources (fleet shards, external
//! monitor streams, replayed traces) to one consumer (normally the
//! retraining side of [`crate::AdaptiveService`] or
//! [`crate::AdaptiveRouter`]). Sending never blocks the producer, so the
//! fleet's worker pool is fully decoupled from retraining.
//!
//! # Back-pressure
//!
//! The ring holds at most `capacity` batches. When a publish finds the
//! ring full — a stalled or slow retrainer at fleet scale — the bus sheds
//! load instead of growing: it drops the **oldest batch of the source with
//! the most batches queued** (ties broken towards the front of the ring).
//! Two consequences, both deliberate:
//!
//! - **bounded memory**: however long the consumer stalls, the bus never
//!   holds more than `capacity` batches (see the property tests);
//! - **per-source fairness**: a skewed producer sheds its *own* history
//!   first — a quiet shard's rare labelled epochs survive a neighbour's
//!   flood, so light service classes keep their training signal.
//!
//! Dropped data is counted, never silent: [`CheckpointBus::dropped_batches`]
//! / [`CheckpointBus::dropped_checkpoints`] feed `AdaptationStats` and the
//! fleet report.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use aging_obs::{EventKind, EventScope, GaugeHandle, Recorder, Registry, TraceHandle};

/// Default ring capacity (batches) for [`CheckpointBus::channel`].
pub const DEFAULT_BUS_CAPACITY: usize = 1024;

/// Most distinct [`ServiceClass`] tags the per-class shed attribution
/// tracks — the memory bound for the attribution map under a producer
/// that invents class names (sheds of classes beyond the cap still count
/// in the fleet-wide totals).
pub const DROP_ATTRIBUTION_CLASS_CAP: usize = 1024;

/// Identifies which adaptation domain a checkpoint batch (and, fleet-side,
/// an instance) belongs to.
///
/// Heterogeneous fleets run mixed scenarios with different aging
/// signatures — a memory-leak class and a swap-thrash class must not
/// pollute each other's training buffers. Producers tag every
/// [`CheckpointBatch`] with a class; the [`crate::AdaptiveRouter`] keeps
/// one model service, drift monitor and sliding buffer per class. A class
/// is orthogonal to the scenario: operators group deployments however
/// their aging behaviour clusters.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct ServiceClass(String);

impl ServiceClass {
    /// Creates a class from any string-ish id.
    pub fn new(id: impl Into<String>) -> Self {
        ServiceClass(id.into())
    }

    /// The class id.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for ServiceClass {
    /// The implicit class of a homogeneous fleet (`"default"`), used by
    /// every spec and batch that never names one.
    fn default() -> Self {
        ServiceClass("default".into())
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceClass {
    fn from(id: &str) -> Self {
        ServiceClass::new(id)
    }
}

impl From<String> for ServiceClass {
    fn from(id: String) -> Self {
        ServiceClass(id)
    }
}

/// One monitoring checkpoint with its ground-truth label, ready for the
/// sliding training buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledCheckpoint {
    /// Feature row, in the adaptation service's feature-set order.
    pub features: Vec<f64>,
    /// True (retrospective) time to failure in seconds, capped by the
    /// producer at its labelling horizon.
    pub ttf_secs: f64,
    /// The TTF the serving model predicted at this checkpoint, if one was
    /// made — the drift monitor turns `|predicted − ttf|` into its error
    /// signal.
    pub predicted_ttf_secs: Option<f64>,
    /// The model generation that produced `predicted_ttf_secs`, when the
    /// producer knows it (the fleet tags every prediction with its pinned
    /// snapshot's generation). Retrospective labelling means a batch can
    /// mix generations — an epoch that straddles a model swap carries
    /// both — and self-tuning threshold policies use this tag to derive
    /// thresholds only from errors attributable to the *current*
    /// generation. `None` (external producers) is treated as current.
    pub predicted_generation: Option<u64>,
    /// Monitor-only observations feed the drift monitor and threshold
    /// policies but never the training buffer. The fleet labels
    /// proactive-restart epochs against their counterfactual fork this
    /// way: the error signal is real, but the fork's horizon-capped TTF
    /// would bias the regression if it were trained on — and without
    /// these observations a well-adapted class (whose crashes have become
    /// rare) would starve its own drift detection and self-tuning.
    pub monitor_only: bool,
}

impl LabelledCheckpoint {
    /// A trainable checkpoint with no generation attribution (external
    /// producers; fleet-side batches tag generations explicitly).
    pub fn new(features: Vec<f64>, ttf_secs: f64, predicted_ttf_secs: Option<f64>) -> Self {
        LabelledCheckpoint {
            features,
            ttf_secs,
            predicted_ttf_secs,
            predicted_generation: None,
            monitor_only: false,
        }
    }

    /// A monitor-only error observation (no feature row, never trained
    /// on): `predicted` against `actual`, attributed to the generation
    /// that predicted.
    pub fn monitor_observation(
        actual_ttf_secs: f64,
        predicted_ttf_secs: f64,
        predicted_generation: Option<u64>,
    ) -> Self {
        LabelledCheckpoint {
            features: Vec::new(),
            ttf_secs: actual_ttf_secs,
            predicted_ttf_secs: Some(predicted_ttf_secs),
            predicted_generation,
            monitor_only: true,
        }
    }

    /// Absolute prediction error in seconds, if a prediction was made.
    pub fn abs_error_secs(&self) -> Option<f64> {
        self.predicted_ttf_secs.map(|p| (p - self.ttf_secs).abs())
    }
}

/// A journalled checkpoint row is a labelled checkpoint, field for field
/// — replay re-ingests recorded batches through the same pipelines the
/// live stream fed.
impl From<aging_journal::JournalCheckpoint> for LabelledCheckpoint {
    fn from(row: aging_journal::JournalCheckpoint) -> Self {
        LabelledCheckpoint {
            features: row.features,
            ttf_secs: row.ttf_secs,
            predicted_ttf_secs: row.predicted_ttf_secs,
            predicted_generation: row.predicted_generation,
            monitor_only: row.monitor_only,
        }
    }
}

/// A batch of labelled checkpoints from one source — typically one
/// completed (crashed or proactively restarted) service epoch of one
/// instance, labelled retrospectively.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointBatch {
    /// Producer identifier (instance name, stream name, …) — the fairness
    /// domain of the bounded ring's drop policy.
    pub source: String,
    /// Which per-class adaptation domain the batch belongs to; consumers
    /// without class routing ignore it.
    pub class: ServiceClass,
    /// The labelled checkpoints, in time order.
    pub checkpoints: Vec<LabelledCheckpoint>,
}

/// Ring state behind the mutex.
#[derive(Debug)]
struct BusState {
    queue: VecDeque<CheckpointBatch>,
    /// Checkpoints currently queued (sum over `queue`).
    queued_checkpoints: u64,
    /// Batches queued per source — the fairness accounting.
    per_source: HashMap<String, usize>,
    /// Checkpoints shed so far, attributed to the [`ServiceClass`] of the
    /// batch they rode in on (the shed happens *before* routing, so this
    /// is the only place the class tag of a dropped batch survives).
    dropped_per_class: HashMap<ServiceClass, u64>,
    consumer_alive: bool,
}

/// Telemetry hooks of one bus. The depth gauge is resolved once at
/// construction (updates are branch-plus-atomic); the registry is kept
/// only for per-class shed attribution, a rare path where re-entering the
/// registry is fine. The trace handle marks each shed in the causal event
/// stream — disabled, it is one untaken branch.
#[derive(Debug, Default)]
struct BusTelemetry {
    depth: GaugeHandle,
    registry: Option<Arc<Registry>>,
    trace: TraceHandle,
}

impl BusTelemetry {
    fn record_shed(&self, class: &ServiceClass, checkpoints: u64) {
        if let Some(registry) = &self.registry {
            registry
                .counter_with(
                    "adapt_bus_shed_checkpoints_total",
                    "Checkpoints shed by the bounded checkpoint bus, by class",
                    "class",
                    class.as_str(),
                )
                .add(checkpoints);
        }
        let _ = self
            .trace
            .emit(EventScope::root().class(class.as_str()), EventKind::BusShed { checkpoints });
    }
}

#[derive(Debug)]
struct BusShared {
    state: Mutex<BusState>,
    available: Condvar,
    capacity: usize,
    /// Producer handles alive (bus clones).
    producers: AtomicUsize,
    /// Checkpoints accepted by `publish` across all producers, *including*
    /// any later shed by the drop policy.
    enqueued: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_checkpoints: AtomicU64,
    telemetry: BusTelemetry,
}

/// Sending half of the bus. Cheap to clone — every shard/producer holds its
/// own handle.
#[derive(Debug)]
pub struct CheckpointBus {
    shared: Arc<BusShared>,
}

impl Clone for CheckpointBus {
    fn clone(&self) -> Self {
        self.shared.producers.fetch_add(1, Ordering::Relaxed);
        CheckpointBus { shared: Arc::clone(&self.shared) }
    }
}

impl Drop for CheckpointBus {
    fn drop(&mut self) {
        if self.shared.producers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last producer gone: wake the consumer so a blocked
            // `recv_timeout` can report the disconnect immediately.
            let _guard = self.shared.state.lock().expect("bus state poisoned");
            self.shared.available.notify_all();
        }
    }
}

impl CheckpointBus {
    /// Creates a connected bus/receiver pair with the default ring
    /// capacity ([`DEFAULT_BUS_CAPACITY`] batches).
    pub fn channel() -> (CheckpointBus, BusReceiver) {
        CheckpointBus::bounded(DEFAULT_BUS_CAPACITY)
    }

    /// Creates a connected bus/receiver pair whose ring holds at most
    /// `capacity` batches (see the module docs for the drop policy).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero — a ring that can hold nothing would
    /// silently discard every publish.
    pub fn bounded(capacity: usize) -> (CheckpointBus, BusReceiver) {
        Self::build(capacity, BusTelemetry::default())
    }

    /// Like [`CheckpointBus::bounded`], but instrumented: queue depth is
    /// tracked in the `adapt_bus_depth_batches` gauge and every shed
    /// checkpoint increments `adapt_bus_shed_checkpoints_total` for its
    /// class in `registry`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero, like [`CheckpointBus::bounded`].
    pub fn bounded_with_telemetry(
        capacity: usize,
        registry: Arc<Registry>,
    ) -> (CheckpointBus, BusReceiver) {
        Self::bounded_instrumented(capacity, Some(registry), TraceHandle::disabled())
    }

    /// The fully instrumented constructor the service/router builders use:
    /// optional metrics registry plus an (independently optional) trace
    /// sink for `BusShed` events.
    pub(crate) fn bounded_instrumented(
        capacity: usize,
        registry: Option<Arc<Registry>>,
        trace: TraceHandle,
    ) -> (CheckpointBus, BusReceiver) {
        let depth = match &registry {
            Some(registry) => {
                let depth = registry.gauge(
                    "adapt_bus_depth_batches",
                    "Batches currently queued on the checkpoint bus",
                );
                depth.set(0.0);
                depth
            }
            None => GaugeHandle::disabled(),
        };
        Self::build(capacity, BusTelemetry { depth, registry, trace })
    }

    fn build(capacity: usize, telemetry: BusTelemetry) -> (CheckpointBus, BusReceiver) {
        assert!(capacity > 0, "bus capacity must be positive");
        let shared = Arc::new(BusShared {
            state: Mutex::new(BusState {
                queue: VecDeque::new(),
                queued_checkpoints: 0,
                per_source: HashMap::new(),
                dropped_per_class: HashMap::new(),
                consumer_alive: true,
            }),
            available: Condvar::new(),
            capacity,
            producers: AtomicUsize::new(1),
            enqueued: AtomicU64::new(0),
            dropped_batches: AtomicU64::new(0),
            dropped_checkpoints: AtomicU64::new(0),
            telemetry,
        });
        (CheckpointBus { shared: Arc::clone(&shared) }, BusReceiver { shared })
    }

    /// Publishes a batch; never blocks. Returns `false` when the consumer
    /// is gone (the service shut down) — producers treat that as
    /// "adaptation disabled" and keep operating on their pinned model.
    ///
    /// When the ring is full the publish still succeeds: the oldest batch
    /// of the most-queued source is shed to make room (counted in
    /// [`CheckpointBus::dropped_batches`]).
    pub fn publish(&self, batch: CheckpointBatch) -> bool {
        let n = batch.checkpoints.len() as u64;
        let mut state = self.shared.state.lock().expect("bus state poisoned");
        if !state.consumer_alive {
            return false;
        }
        *state.per_source.entry(batch.source.clone()).or_insert(0) += 1;
        state.queued_checkpoints += n;
        state.queue.push_back(batch);
        self.shared.enqueued.fetch_add(n, Ordering::Relaxed);
        if state.queue.len() > self.shared.capacity {
            self.shed_one(&mut state);
        }
        self.shared.telemetry.depth.set(state.queue.len() as f64);
        self.shared.available.notify_one();
        true
    }

    /// Drops the oldest batch of the heaviest source (most batches
    /// queued); ties resolve to whichever tied source has the older batch,
    /// i.e. the scan from the front wins.
    fn shed_one(&self, state: &mut BusState) {
        let heaviest = *state.per_source.values().max().expect("queue is non-empty");
        let victim = state
            .queue
            .iter()
            .position(|b| state.per_source[&b.source] == heaviest)
            .expect("some queued batch belongs to the heaviest source");
        let batch = state.queue.remove(victim).expect("index from position");
        let count = state.per_source.get_mut(&batch.source).expect("source was counted");
        *count -= 1;
        if *count == 0 {
            state.per_source.remove(&batch.source);
        }
        // `saturating_sub`, not `-=`: the depth gauge must never wrap. The
        // invariant (queued == Σ pushed − Σ popped − Σ shed) is asserted in
        // debug builds and property-tested under interleaved shed/pop.
        debug_assert!(
            state.queued_checkpoints >= batch.checkpoints.len() as u64,
            "shed of {} checkpoints would underflow the depth gauge ({} queued)",
            batch.checkpoints.len(),
            state.queued_checkpoints
        );
        state.queued_checkpoints =
            state.queued_checkpoints.saturating_sub(batch.checkpoints.len() as u64);
        // The attribution map is keyed by producer-supplied class tags, so
        // it must stay bounded like everything else on this bus: beyond
        // the cap, sheds of *new* classes are counted only in the
        // fleet-wide total (classes already tracked keep attributing).
        // Real fleets register a handful of classes; only a misbehaving
        // producer inventing class names per batch ever hits this.
        let shed_checkpoints = batch.checkpoints.len() as u64;
        self.shared.telemetry.record_shed(&batch.class, shed_checkpoints);
        if state.dropped_per_class.contains_key(&batch.class)
            || state.dropped_per_class.len() < DROP_ATTRIBUTION_CLASS_CAP
        {
            *state.dropped_per_class.entry(batch.class).or_insert(0) += shed_checkpoints;
        }
        self.shared.dropped_batches.fetch_add(1, Ordering::Relaxed);
        self.shared.dropped_checkpoints.fetch_add(shed_checkpoints, Ordering::Relaxed);
    }

    /// Total checkpoints accepted by `publish` across all clones of this
    /// bus, including any later shed by the drop policy. Together with the
    /// consumer's ingested count and [`CheckpointBus::dropped_checkpoints`]
    /// this lets tests and examples wait for the bus to drain.
    pub fn enqueued_checkpoints(&self) -> u64 {
        self.shared.enqueued.load(Ordering::Relaxed)
    }

    /// Checkpoints shed by the bounded ring's drop policy so far.
    pub fn dropped_checkpoints(&self) -> u64 {
        self.shared.dropped_checkpoints.load(Ordering::Relaxed)
    }

    /// Checkpoints shed so far that were tagged with `class` — the
    /// per-class attribution behind `RouterStats`' per-class
    /// `dropped_checkpoints`. Sums (over every class that ever published)
    /// to [`CheckpointBus::dropped_checkpoints`].
    pub fn dropped_checkpoints_for(&self, class: &ServiceClass) -> u64 {
        self.shared
            .state
            .lock()
            .expect("bus state poisoned")
            .dropped_per_class
            .get(class)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the per-class shed attribution (classes in unspecified
    /// order; only classes with at least one dropped checkpoint appear).
    pub fn dropped_checkpoints_by_class(&self) -> Vec<(ServiceClass, u64)> {
        self.shared
            .state
            .lock()
            .expect("bus state poisoned")
            .dropped_per_class
            .iter()
            .map(|(class, &n)| (class.clone(), n))
            .collect()
    }

    /// Batches shed by the bounded ring's drop policy so far.
    pub fn dropped_batches(&self) -> u64 {
        self.shared.dropped_batches.load(Ordering::Relaxed)
    }

    /// Batches currently queued (≤ [`CheckpointBus::capacity`], always).
    pub fn queued_batches(&self) -> usize {
        self.shared.state.lock().expect("bus state poisoned").queue.len()
    }

    /// Checkpoints currently queued.
    pub fn queued_checkpoints(&self) -> u64 {
        self.shared.state.lock().expect("bus state poisoned").queued_checkpoints
    }

    /// The ring capacity, in batches.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

/// Error returned by [`BusReceiver::recv_timeout`] once every producer
/// handle has been dropped and the ring is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusDisconnected;

impl fmt::Display for BusDisconnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all checkpoint-bus producers disconnected")
    }
}

impl std::error::Error for BusDisconnected {}

/// Receiving half of the bus, owned by the retraining consumer.
#[derive(Debug)]
pub struct BusReceiver {
    shared: Arc<BusShared>,
}

impl Drop for BusReceiver {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("bus state poisoned");
        state.consumer_alive = false;
    }
}

impl BusReceiver {
    fn pop(state: &mut BusState) -> Option<CheckpointBatch> {
        let batch = state.queue.pop_front()?;
        // Mirror of `shed_one`: a double-pop or shed/pop interleaving must
        // clamp the gauge, never wrap it (`debug_assert!` catches the
        // accounting bug in development; release clamps to zero).
        debug_assert!(
            state.queued_checkpoints >= batch.checkpoints.len() as u64,
            "pop of {} checkpoints would underflow the depth gauge ({} queued)",
            batch.checkpoints.len(),
            state.queued_checkpoints
        );
        state.queued_checkpoints =
            state.queued_checkpoints.saturating_sub(batch.checkpoints.len() as u64);
        let count = state.per_source.get_mut(&batch.source).expect("source was counted");
        *count -= 1;
        if *count == 0 {
            state.per_source.remove(&batch.source);
        }
        Some(batch)
    }

    /// Blocks for the next batch until `timeout`; `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`BusDisconnected`] when every producer hung up and the
    /// ring is drained.
    pub fn recv_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Option<CheckpointBatch>, BusDisconnected> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("bus state poisoned");
        loop {
            if let Some(batch) = Self::pop(&mut state) {
                self.shared.telemetry.depth.set(state.queue.len() as f64);
                return Ok(Some(batch));
            }
            if self.shared.producers.load(Ordering::Acquire) == 0 {
                return Err(BusDisconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (next, result) = self
                .shared
                .available
                .wait_timeout(state, deadline - now)
                .expect("bus state poisoned");
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                // Re-check the disconnect before reporting an empty wait.
                if self.shared.producers.load(Ordering::Acquire) == 0 {
                    return Err(BusDisconnected);
                }
                return Ok(None);
            }
        }
    }

    /// Drains whatever is queued right now without blocking.
    pub fn drain(&self) -> Vec<CheckpointBatch> {
        let mut state = self.shared.state.lock().expect("bus state poisoned");
        let mut out = Vec::with_capacity(state.queue.len());
        while let Some(batch) = Self::pop(&mut state) {
            out.push(batch);
        }
        self.shared.telemetry.depth.set(0.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(ttf: f64, pred: Option<f64>) -> LabelledCheckpoint {
        LabelledCheckpoint::new(vec![1.0, 2.0], ttf, pred)
    }

    fn batch(source: &str, checkpoints: Vec<LabelledCheckpoint>) -> CheckpointBatch {
        CheckpointBatch { source: source.into(), class: ServiceClass::default(), checkpoints }
    }

    #[test]
    fn batches_arrive_in_order_per_producer() {
        let (bus, rx) = CheckpointBus::channel();
        for i in 0..5 {
            assert!(bus.publish(batch(&format!("s{i}"), vec![cp(i as f64, None)])));
        }
        let got = rx.drain();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].source, "s0");
        assert_eq!(got[4].source, "s4");
    }

    #[test]
    fn clones_share_the_channel() {
        let (bus, rx) = CheckpointBus::channel();
        let bus2 = bus.clone();
        std::thread::scope(|scope| {
            scope.spawn(|| bus.publish(batch("a", vec![])));
            scope.spawn(|| bus2.publish(batch("b", vec![])));
        });
        let mut sources: Vec<String> = rx.drain().into_iter().map(|b| b.source).collect();
        sources.sort();
        assert_eq!(sources, vec!["a", "b"]);
    }

    #[test]
    fn publish_reports_consumer_gone() {
        let (bus, rx) = CheckpointBus::channel();
        drop(rx);
        assert!(!bus.publish(batch("x", vec![])));
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_closed() {
        let (bus, rx) = CheckpointBus::channel();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(None));
        drop(bus);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(BusDisconnected));
    }

    #[test]
    fn abs_error_requires_a_prediction() {
        assert_eq!(cp(100.0, None).abs_error_secs(), None);
        assert_eq!(cp(100.0, Some(40.0)).abs_error_secs(), Some(60.0));
    }

    #[test]
    fn full_ring_sheds_oldest_of_single_source() {
        let (bus, rx) = CheckpointBus::bounded(3);
        for i in 0..7 {
            assert!(bus.publish(batch("s", vec![cp(i as f64, None)])));
            assert!(bus.queued_batches() <= 3);
        }
        assert_eq!(bus.dropped_batches(), 4);
        assert_eq!(bus.dropped_checkpoints(), 4);
        let kept: Vec<f64> = rx.drain().iter().map(|b| b.checkpoints[0].ttf_secs).collect();
        assert_eq!(kept, vec![4.0, 5.0, 6.0], "the most recent batches survive, in order");
    }

    #[test]
    fn skewed_producer_sheds_its_own_batches_first() {
        let (bus, rx) = CheckpointBus::bounded(6);
        // Two quiet batches, then a flood from one noisy source.
        bus.publish(batch("quiet", vec![cp(1.0, None)]));
        bus.publish(batch("quiet", vec![cp(2.0, None)]));
        for i in 0..20 {
            bus.publish(batch("noisy", vec![cp(100.0 + i as f64, None)]));
        }
        let got = rx.drain();
        let quiet: Vec<f64> =
            got.iter().filter(|b| b.source == "quiet").map(|b| b.checkpoints[0].ttf_secs).collect();
        assert_eq!(quiet, vec![1.0, 2.0], "the quiet source's history must survive the flood");
        assert_eq!(got.len(), 6);
        assert_eq!(bus.dropped_batches(), 16, "every shed batch came from the noisy source");
    }

    #[test]
    fn disconnect_after_drop_still_drains_queued_batches() {
        let (bus, rx) = CheckpointBus::bounded(8);
        for i in 0..4 {
            bus.publish(batch("s", vec![cp(i as f64, None)]));
        }
        drop(bus);
        for i in 0..4 {
            let got = rx.recv_timeout(Duration::from_millis(5)).unwrap().unwrap();
            assert_eq!(got.checkpoints[0].ttf_secs, i as f64);
        }
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(BusDisconnected));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = CheckpointBus::bounded(0);
    }

    #[test]
    fn sheds_are_attributed_to_the_dropped_batch_class() {
        let (bus, _stalled_rx) = CheckpointBus::bounded(2);
        let classed = |class: &str, source: &str, n: usize| CheckpointBatch {
            source: source.into(),
            class: ServiceClass::new(class),
            checkpoints: vec![cp(1.0, None); n],
        };
        // One "web" batch, then a "db" flood from one heavy source: every
        // shed comes out of the heavy source, i.e. the "db" class.
        bus.publish(classed("web", "quiet", 3));
        for _ in 0..6 {
            bus.publish(classed("db", "noisy", 2));
        }
        assert_eq!(bus.dropped_checkpoints_for(&ServiceClass::new("db")), 10);
        assert_eq!(bus.dropped_checkpoints_for(&ServiceClass::new("web")), 0);
        assert_eq!(bus.dropped_checkpoints_for(&ServiceClass::new("never-seen")), 0);
        let by_class = bus.dropped_checkpoints_by_class();
        assert_eq!(by_class, vec![(ServiceClass::new("db"), 10)]);
        assert_eq!(
            by_class.iter().map(|(_, n)| n).sum::<u64>(),
            bus.dropped_checkpoints(),
            "per-class attribution must sum to the fleet-wide total"
        );
    }

    #[test]
    fn telemetry_tracks_depth_and_attributes_sheds() {
        let registry = Registry::shared();
        let (bus, rx) = CheckpointBus::bounded_with_telemetry(2, Arc::clone(&registry));
        let classed = |class: &str, n: usize| CheckpointBatch {
            source: "s".into(),
            class: ServiceClass::new(class),
            checkpoints: vec![cp(1.0, None); n],
        };
        for _ in 0..5 {
            bus.publish(classed("db", 3));
        }
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("adapt_bus_depth_batches", None), Some(2.0));
        assert_eq!(
            snap.counter("adapt_bus_shed_checkpoints_total", Some("db")),
            Some(bus.dropped_checkpoints()),
            "per-class shed telemetry matches the bus's own accounting"
        );
        assert_eq!(bus.dropped_checkpoints(), 9, "3 of 5 batches shed");
        let _ = rx.drain();
        assert_eq!(
            registry.snapshot().gauge("adapt_bus_depth_batches", None),
            Some(0.0),
            "drain resets the depth gauge"
        );
    }

    #[test]
    fn service_class_defaults_and_displays() {
        assert_eq!(ServiceClass::default().as_str(), "default");
        assert_eq!(ServiceClass::from("db").to_string(), "db");
        assert_eq!(ServiceClass::new(String::from("web")), ServiceClass::from("web"));
    }
}
