//! Property-based guarantees of the policy-search building blocks:
//!
//! 1. **replay determinism** — scoring any sampled candidate against any
//!    recorded journal twice yields bit-identical digests and objectives
//!    (the foundation the promotion gate's measurements stand on);
//! 2. **gate strictness** — the promotion gate never promotes ties or
//!    within-margin wins, never promotes an unscoreable candidate, and
//!    is monotone in the margin: anything a stricter gate promotes, a
//!    looser gate promotes too;
//! 3. **clamp validity** — clamping is idempotent and every clamped
//!    point (however mangled the input) lowers into a spec that passes
//!    the validating builders.

use aging_dataset::Dataset;
use aging_journal::{Journal, JournalCheckpoint, JournalRecord};
use aging_ml::linreg::LinRegLearner;
use aging_ml::{Learner, Regressor};
use aging_tune::{Evaluator, PolicyPoint, PromotionGate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tune-props-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn line_model() -> Arc<dyn Regressor> {
    let mut ds = Dataset::new(vec!["x".into()], "y");
    for i in 0..30 {
        ds.push_row(vec![i as f64], 2.0 * i as f64).unwrap();
    }
    Arc::from(LinRegLearner::default().fit_boxed(&ds).unwrap())
}

/// Journals `labels` as single-feature checkpoint batches, lacing in one
/// monitor-only (empty-feature) observation per batch to exercise the
/// scorer's skip path.
fn write_journal(dir: &PathBuf, labels: &[f64]) {
    let journal = Journal::open(dir).unwrap();
    for (chunk_idx, chunk) in labels.chunks(16).enumerate() {
        let mut rows: Vec<JournalCheckpoint> = chunk
            .iter()
            .enumerate()
            .map(|(i, &ttf)| {
                let x = (chunk_idx * 16 + i) as f64;
                JournalCheckpoint {
                    features: vec![x],
                    ttf_secs: ttf,
                    predicted_ttf_secs: Some(2.0 * x),
                    predicted_generation: Some(0),
                    monitor_only: false,
                }
            })
            .collect();
        rows.push(JournalCheckpoint {
            features: Vec::new(),
            ttf_secs: 300.0,
            predicted_ttf_secs: Some(250.0),
            predicted_generation: Some(0),
            monitor_only: true,
        });
        journal.append(&JournalRecord::Checkpoints { class: "svc".into(), rows }).unwrap();
    }
    journal.sync().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Invariant 1: replay under identical specs is digest-identical
    // run-to-run, for any journal contents and any sampled candidate —
    // objectives compare bit for bit, so a search can trust them.
    #[test]
    fn replay_under_identical_specs_is_digest_identical(
        seed in 0u64..1_000_000,
        labels in prop::collection::vec(1.0f64..5000.0, 8..48),
    ) {
        let dir = tmp_dir("digest");
        write_journal(&dir, &labels);
        let candidate = PolicyPoint::sample(&mut StdRng::seed_from_u64(seed)).clamped();
        let evaluator = Evaluator::new(
            &dir,
            vec!["x".into()],
            aging_adapt::ServiceClass::new("svc"),
            line_model(),
        );
        let first = evaluator.evaluate(&candidate).unwrap();
        let second = evaluator.evaluate(&candidate).unwrap();
        prop_assert_eq!(first.digest, second.digest, "state digests must match run-to-run");
        prop_assert_eq!(
            first.objective_secs.to_bits(),
            second.objective_secs.to_bits(),
            "objectives must be bit-identical: {} vs {}",
            first.objective_secs,
            second.objective_secs
        );
        prop_assert_eq!(first.scored_rows, second.scored_rows);
        prop_assert_eq!(first.retrains, second.retrains);
        prop_assert_eq!(first.generation, second.generation);
        // Monitor-only rows never reach the scorer.
        prop_assert_eq!(first.scored_rows, labels.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Invariant 2a: ties and within-margin wins never promote, whatever
    // the margin — `frac` sweeps the candidate across the whole
    // not-good-enough region [incumbent × (1 − margin), ∞).
    #[test]
    fn gate_never_promotes_ties_or_within_margin_wins(
        incumbent in 0.0f64..100_000.0,
        margin in 0.0f64..0.99,
        frac in 0.0f64..3.0,
    ) {
        let gate = PromotionGate::new(margin);
        prop_assert!(!gate.promotes(incumbent, incumbent), "ties must never promote");
        let candidate = incumbent * (1.0 - margin) * (1.0 + frac);
        prop_assert!(
            !gate.promotes(candidate, incumbent),
            "candidate {} is not below incumbent {} × (1 − {})",
            candidate, incumbent, margin
        );
        prop_assert!(
            !gate.promotes(f64::INFINITY, incumbent),
            "an unscoreable candidate must never promote"
        );
        prop_assert!(
            !gate.promotes(f64::NAN, incumbent),
            "a NaN objective must never promote"
        );
    }

    // Invariant 2b: the gate is monotone in the margin — a promotion
    // through a stricter gate always passes a looser one.
    #[test]
    fn gate_is_monotone_in_the_margin(
        candidate in 0.0f64..100_000.0,
        incumbent in 0.0f64..100_000.0,
        margin_lo in 0.0f64..0.9,
        bump in 0.0f64..0.09,
    ) {
        let strict = PromotionGate::new(margin_lo + bump);
        let loose = PromotionGate::new(margin_lo);
        if strict.promotes(candidate, incumbent) {
            prop_assert!(
                loose.promotes(candidate, incumbent),
                "margin {} promoted {}/{} but margin {} rejected it",
                margin_lo + bump, candidate, incumbent, margin_lo
            );
        }
        // Any finite candidate displaces an unscoreable incumbent.
        prop_assert!(strict.promotes(candidate, f64::INFINITY));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 3: clamping is idempotent and always produces a point the
    // validating spec builders accept — even from mangled inputs laced
    // with NaN/∞/negatives and zero-sized buffers.
    #[test]
    fn clamping_is_idempotent_and_always_lowers_into_a_valid_spec(
        seed in 0u64..1_000_000,
        raw in prop::collection::vec(-1.0e12f64..1.0e12, 8),
        mangle in 0u8..7,
    ) {
        let mut point = PolicyPoint::sample(&mut StdRng::seed_from_u64(seed));
        point.ewma_alpha = raw[0];
        point.error_threshold_secs = raw[1];
        point.drift_quantile = raw[2];
        point.drift_margin = raw[3];
        point.rejuvenation_quantile = raw[4];
        point.rejuvenation_slack_secs = raw[5];
        point.min_observations = raw[6].abs() as usize;
        point.buffer_capacity = raw[7].abs() as usize;
        point.min_buffer_to_retrain = point.buffer_capacity.wrapping_mul(3);
        match mangle {
            0 => point.ewma_alpha = f64::NAN,
            1 => point.error_threshold_secs = f64::INFINITY,
            2 => point.drift_margin = f64::NEG_INFINITY,
            3 => point.buffer_capacity = 0,
            4 => point.retrain_every = Some(0),
            5 => point.retrain_every = Some(usize::MAX),
            _ => point.min_samples = 0,
        }
        let clamped = point.clamped();
        prop_assert_eq!(&clamped, &clamped.clamped(), "clamping must be idempotent");
        prop_assert!(
            clamped.min_buffer_to_retrain <= clamped.buffer_capacity,
            "retrain gate {} above buffer capacity {}",
            clamped.min_buffer_to_retrain, clamped.buffer_capacity
        );
        // The real guarantee: lowering never panics, because the clamped
        // point satisfies every builder validation. (`to_spec` clamps
        // internally, so even the mangled point lowers fine.)
        let _ = clamped.to_spec(line_model());
        let _ = point.to_spec(line_model());
    }
}
