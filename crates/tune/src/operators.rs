//! Destroy/repair neighbourhood operators and their adaptive selection
//! weights (the ALNS machinery).

use crate::point::{PolicyPoint, AXES, RETRAIN_EVERY_BOUNDS};
use aging_ml::LearnerKind;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A destroy/repair neighbourhood move over [`PolicyPoint`]s.
///
/// Each operator takes the current search position (and the incumbent,
/// for crossover) and produces a candidate; [`PolicyPoint::clamped`]
/// projects the result back into the valid region, so operators are free
/// to overshoot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operator {
    /// Perturb one uniformly chosen axis: floats get a log-uniform factor
    /// in `[½, 2]` (quantiles an additive jitter), integers scale the
    /// same way, booleans flip, and the retrain cadence toggles between
    /// scheduled and drift-only.
    PerturbOneAxis,
    /// Swap the learner for a different [`LearnerKind`], leaving every
    /// numeric axis alone.
    SwapLearner,
    /// Uniform crossover with the incumbent: each axis independently
    /// keeps the current value or takes the incumbent's.
    CrossoverWithIncumbent,
    /// Forget the current position and sample a fresh uniform point —
    /// the diversification escape hatch.
    RandomRestart,
}

impl Operator {
    /// Every operator, in selection-bank order.
    pub const ALL: [Operator; 4] = [
        Operator::PerturbOneAxis,
        Operator::SwapLearner,
        Operator::CrossoverWithIncumbent,
        Operator::RandomRestart,
    ];

    /// Stable operator name for traces and artifacts.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Operator::PerturbOneAxis => "perturb-one-axis",
            Operator::SwapLearner => "swap-learner",
            Operator::CrossoverWithIncumbent => "crossover-with-incumbent",
            Operator::RandomRestart => "random-restart",
        }
    }

    /// Generates a candidate from `current` (and `incumbent`, for
    /// crossover). The result is **not** clamped; callers clamp.
    #[must_use]
    pub(crate) fn apply(
        &self,
        current: &PolicyPoint,
        incumbent: &PolicyPoint,
        rng: &mut StdRng,
    ) -> PolicyPoint {
        match self {
            Operator::PerturbOneAxis => perturb_one_axis(current, rng),
            Operator::SwapLearner => swap_learner(current, rng),
            Operator::CrossoverWithIncumbent => crossover(current, incumbent, rng),
            Operator::RandomRestart => PolicyPoint::sample(rng),
        }
    }
}

/// Log-uniform multiplier in `[½, 2]`.
fn factor(rng: &mut StdRng) -> f64 {
    2f64.powf(rng.gen_range(-1.0..=1.0))
}

fn scale_usize(v: usize, rng: &mut StdRng) -> usize {
    ((v as f64 * factor(rng)).round() as usize).max(1)
}

fn perturb_one_axis(current: &PolicyPoint, rng: &mut StdRng) -> PolicyPoint {
    let mut p = current.clone();
    match rng.gen_range(0..AXES) {
        0 => p.drift_enabled = !p.drift_enabled,
        1 => p.ewma_alpha *= factor(rng),
        2 => p.error_threshold_secs *= factor(rng),
        3 => p.min_observations = scale_usize(p.min_observations, rng),
        4 => p.cooldown_observations = scale_usize(p.cooldown_observations, rng),
        5 => p.drift_quantile += rng.gen_range(-0.2..=0.2),
        6 => p.drift_margin *= factor(rng),
        7 => p.rejuvenation_quantile += rng.gen_range(-0.2..=0.2),
        8 => p.rejuvenation_slack_secs += rng.gen_range(-300.0..=300.0),
        9 => p.min_samples = scale_usize(p.min_samples, rng),
        10 => p.buffer_capacity = scale_usize(p.buffer_capacity, rng),
        11 => p.min_buffer_to_retrain = scale_usize(p.min_buffer_to_retrain, rng),
        _ => {
            p.retrain_every = match p.retrain_every {
                Some(every) => {
                    if rng.gen_bool(0.25) {
                        None
                    } else {
                        Some(scale_usize(every, rng))
                    }
                }
                None => Some(rng.gen_range(RETRAIN_EVERY_BOUNDS.0..=RETRAIN_EVERY_BOUNDS.1)),
            }
        }
    }
    p
}

fn swap_learner(current: &PolicyPoint, rng: &mut StdRng) -> PolicyPoint {
    let mut p = current.clone();
    let others: Vec<LearnerKind> =
        LearnerKind::ALL.into_iter().filter(|k| *k != p.learner).collect();
    p.learner = others[rng.gen_range(0..others.len())];
    p
}

fn crossover(current: &PolicyPoint, incumbent: &PolicyPoint, rng: &mut StdRng) -> PolicyPoint {
    let mut p = current.clone();
    // One gen_bool per axis keeps the draw count fixed, which keeps the
    // RNG stream (and therefore the whole search) reproducible.
    if rng.gen_bool(0.5) {
        p.learner = incumbent.learner;
    }
    if rng.gen_bool(0.5) {
        p.drift_enabled = incumbent.drift_enabled;
    }
    if rng.gen_bool(0.5) {
        p.ewma_alpha = incumbent.ewma_alpha;
    }
    if rng.gen_bool(0.5) {
        p.error_threshold_secs = incumbent.error_threshold_secs;
    }
    if rng.gen_bool(0.5) {
        p.min_observations = incumbent.min_observations;
    }
    if rng.gen_bool(0.5) {
        p.cooldown_observations = incumbent.cooldown_observations;
    }
    if rng.gen_bool(0.5) {
        p.drift_quantile = incumbent.drift_quantile;
    }
    if rng.gen_bool(0.5) {
        p.drift_margin = incumbent.drift_margin;
    }
    if rng.gen_bool(0.5) {
        p.rejuvenation_quantile = incumbent.rejuvenation_quantile;
    }
    if rng.gen_bool(0.5) {
        p.rejuvenation_slack_secs = incumbent.rejuvenation_slack_secs;
    }
    if rng.gen_bool(0.5) {
        p.min_samples = incumbent.min_samples;
    }
    if rng.gen_bool(0.5) {
        p.buffer_capacity = incumbent.buffer_capacity;
        p.min_buffer_to_retrain = incumbent.min_buffer_to_retrain;
    }
    if rng.gen_bool(0.5) {
        p.retrain_every = incumbent.retrain_every;
    }
    p
}

/// Realised-improvement reward for finding a new global best.
pub(crate) const REWARD_NEW_BEST: f64 = 3.0;
/// Reward for improving on the current search position.
pub(crate) const REWARD_IMPROVED: f64 = 1.5;
/// Reward for a candidate accepted by simulated annealing only.
pub(crate) const REWARD_ACCEPTED: f64 = 0.5;

/// Adaptive roulette over the operator set.
///
/// Classic ALNS weight adaptation: operator weights start uniform,
/// selection is weight-proportional, and after each candidate the chosen
/// operator's weight moves toward the realised reward tier —
/// `w ← (1−ρ)·w + ρ·σ` with reaction factor `ρ`. Operators that keep
/// producing improvements are drawn more; useless ones decay toward
/// (but never reach) zero weight.
#[derive(Debug, Clone)]
pub struct OperatorBank {
    weights: [f64; Operator::ALL.len()],
    reaction: f64,
}

impl OperatorBank {
    /// Uniform bank with the given reaction factor `ρ ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `reaction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(reaction: f64) -> Self {
        assert!(
            reaction > 0.0 && reaction <= 1.0,
            "ALNS reaction factor must be in (0, 1], got {reaction}"
        );
        OperatorBank { weights: [1.0; Operator::ALL.len()], reaction }
    }

    /// Weight-proportional roulette selection.
    pub fn select(&self, rng: &mut StdRng) -> Operator {
        let total: f64 = self.weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        for (operator, weight) in Operator::ALL.into_iter().zip(self.weights) {
            if draw < weight {
                return operator;
            }
            draw -= weight;
        }
        // Floating-point tail: the draw consumed every slice.
        Operator::ALL[Operator::ALL.len() - 1]
    }

    /// Moves `operator`'s weight toward `reward` (one of the tier
    /// constants, or 0 for a rejected candidate). A small floor keeps
    /// every operator selectable — pure exploitation would never rescue
    /// an operator that was unlucky early.
    pub fn reward(&mut self, operator: Operator, reward: f64) {
        let i = Operator::ALL.iter().position(|o| *o == operator).expect("operator in bank");
        self.weights[i] =
            ((1.0 - self.reaction) * self.weights[i] + self.reaction * reward).max(0.05);
    }

    /// Current `(operator, weight)` pairs, in bank order.
    #[must_use]
    pub fn weights(&self) -> Vec<(Operator, f64)> {
        Operator::ALL.into_iter().zip(self.weights).collect()
    }
}
