//! The search space: a serialisable point in the rejuvenation policy
//! space, with validity clamps.

use aging_adapt::{AdaptConfig, ClassSpec, DriftConfig, QuantileAdaptive, ThresholdPolicy};
use aging_ml::{LearnerKind, Regressor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Inclusive bounds of one `f64` search axis.
pub const EWMA_ALPHA_BOUNDS: (f64, f64) = (0.01, 1.0);
/// Bounds of the drift error-level threshold, seconds.
pub const ERROR_THRESHOLD_BOUNDS_SECS: (f64, f64) = (30.0, 21_600.0);
/// Bounds of the drift-monitor debounce (minimum observations).
pub const MIN_OBSERVATIONS_BOUNDS: (usize, usize) = (4, 512);
/// Bounds of the post-trigger cooldown, observations.
pub const COOLDOWN_BOUNDS: (usize, usize) = (8, 4096);
/// Bounds of both threshold-policy anchor quantiles.
pub const QUANTILE_BOUNDS: (f64, f64) = (0.05, 0.95);
/// Bounds of the drift-level margin multiplier.
pub const DRIFT_MARGIN_BOUNDS: (f64, f64) = (1.0, 16.0);
/// Bounds of the rejuvenation slack, seconds.
pub const REJUVENATION_SLACK_BOUNDS_SECS: (f64, f64) = (0.0, 3600.0);
/// Bounds of the policy's minimum error-sample count.
pub const MIN_SAMPLES_BOUNDS: (usize, usize) = (8, 256);
/// Bounds of the sliding training-buffer capacity, rows.
pub const BUFFER_CAPACITY_BOUNDS: (usize, usize) = (128, 16_384);
/// Lower bound of the retrain gate, rows (the upper bound is the clamped
/// buffer capacity).
pub const MIN_BUFFER_TO_RETRAIN_FLOOR: usize = 16;
/// Bounds of the periodic retrain cadence, ingested rows, when scheduled.
pub const RETRAIN_EVERY_BOUNDS: (usize, usize) = (16, 4096);

/// Number of independent axes the neighbourhood operators may touch.
pub(crate) const AXES: usize = 13;

/// One point in the rejuvenation policy space: everything a
/// [`ClassSpec`] freezes at spawn, as plain serialisable data.
///
/// A `PolicyPoint` is the unit the search loop mutates, scores and
/// promotes. [`PolicyPoint::clamped`] projects any point back into the
/// valid region (the bounds above), and [`PolicyPoint::to_spec`] lowers a
/// point into a ready [`ClassSpec`] — via the validating builders, so a
/// point that somehow escaped the clamps still fails fast rather than
/// mid-replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// Training algorithm for refits.
    pub learner: LearnerKind,
    /// Whether prediction-error drift detection runs at all.
    pub drift_enabled: bool,
    /// Drift-monitor EWMA smoothing factor, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Drift error-level threshold, seconds.
    pub error_threshold_secs: f64,
    /// Drift-monitor debounce: observations before the detector may fire.
    pub min_observations: usize,
    /// Observations the monitor stays quiet after firing.
    pub cooldown_observations: usize,
    /// Quantile anchoring the self-tuned drift level.
    pub drift_quantile: f64,
    /// Multiplier lifting the drift level above its anchor (≥ 1).
    pub drift_margin: f64,
    /// Quantile anchoring the self-tuned rejuvenation trigger.
    pub rejuvenation_quantile: f64,
    /// Safety margin added to the rejuvenation anchor, seconds.
    pub rejuvenation_slack_secs: f64,
    /// Minimum error samples before the policy moves thresholds.
    pub min_samples: usize,
    /// Sliding training-buffer capacity, rows.
    pub buffer_capacity: usize,
    /// Labelled rows required before a triggered retrain runs.
    pub min_buffer_to_retrain: usize,
    /// Periodic retrain cadence in ingested rows; `None` retrains on
    /// drift only.
    pub retrain_every: Option<usize>,
}

impl Default for PolicyPoint {
    /// The workspace defaults: M5P, [`DriftConfig::default`],
    /// [`AdaptConfig::default`] sizing and [`QuantileAdaptive::default`]
    /// quantiles.
    fn default() -> Self {
        let drift = DriftConfig::default();
        let adapt = AdaptConfig::default();
        let policy = QuantileAdaptive::default();
        PolicyPoint {
            learner: LearnerKind::M5p,
            drift_enabled: drift.enabled,
            ewma_alpha: drift.ewma_alpha,
            error_threshold_secs: drift.error_threshold_secs,
            min_observations: drift.min_observations,
            cooldown_observations: drift.cooldown_observations,
            drift_quantile: policy.drift_quantile,
            drift_margin: policy.drift_margin,
            rejuvenation_quantile: policy.rejuvenation_quantile,
            rejuvenation_slack_secs: policy.rejuvenation_slack_secs,
            min_samples: policy.min_samples,
            buffer_capacity: adapt.buffer_capacity,
            min_buffer_to_retrain: adapt.min_buffer_to_retrain,
            retrain_every: adapt.retrain_every,
        }
    }
}

fn clamp_f64(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if v.is_finite() {
        v.clamp(lo, hi)
    } else {
        lo
    }
}

fn clamp_usize(v: usize, (lo, hi): (usize, usize)) -> usize {
    v.clamp(lo, hi)
}

impl PolicyPoint {
    /// Projects the point into the valid region: every axis is clamped to
    /// its documented bounds, non-finite floats collapse to the lower
    /// bound, and the retrain gate is capped by the (clamped) buffer
    /// capacity. Clamping is idempotent, and a clamped point always
    /// passes the [`ClassSpec`] builder's validation.
    #[must_use]
    pub fn clamped(&self) -> PolicyPoint {
        let buffer_capacity = clamp_usize(self.buffer_capacity, BUFFER_CAPACITY_BOUNDS);
        PolicyPoint {
            learner: self.learner,
            drift_enabled: self.drift_enabled,
            ewma_alpha: clamp_f64(self.ewma_alpha, EWMA_ALPHA_BOUNDS),
            error_threshold_secs: clamp_f64(self.error_threshold_secs, ERROR_THRESHOLD_BOUNDS_SECS),
            min_observations: clamp_usize(self.min_observations, MIN_OBSERVATIONS_BOUNDS),
            cooldown_observations: clamp_usize(self.cooldown_observations, COOLDOWN_BOUNDS),
            drift_quantile: clamp_f64(self.drift_quantile, QUANTILE_BOUNDS),
            drift_margin: clamp_f64(self.drift_margin, DRIFT_MARGIN_BOUNDS),
            rejuvenation_quantile: clamp_f64(self.rejuvenation_quantile, QUANTILE_BOUNDS),
            rejuvenation_slack_secs: clamp_f64(
                self.rejuvenation_slack_secs,
                REJUVENATION_SLACK_BOUNDS_SECS,
            ),
            min_samples: clamp_usize(self.min_samples, MIN_SAMPLES_BOUNDS),
            buffer_capacity,
            min_buffer_to_retrain: clamp_usize(
                self.min_buffer_to_retrain,
                (MIN_BUFFER_TO_RETRAIN_FLOOR, buffer_capacity),
            ),
            retrain_every: self.retrain_every.map(|n| clamp_usize(n, RETRAIN_EVERY_BOUNDS)),
        }
    }

    /// Samples a uniformly random valid point — the random-restart
    /// operator's repair step.
    #[must_use]
    pub fn sample(rng: &mut StdRng) -> PolicyPoint {
        let learner = LearnerKind::ALL[rng.gen_range(0..LearnerKind::ALL.len())];
        let buffer_capacity = rng.gen_range(BUFFER_CAPACITY_BOUNDS.0..=BUFFER_CAPACITY_BOUNDS.1);
        PolicyPoint {
            learner,
            drift_enabled: rng.gen_bool(0.75),
            ewma_alpha: rng.gen_range(EWMA_ALPHA_BOUNDS.0..=EWMA_ALPHA_BOUNDS.1),
            error_threshold_secs: rng
                .gen_range(ERROR_THRESHOLD_BOUNDS_SECS.0..=ERROR_THRESHOLD_BOUNDS_SECS.1),
            min_observations: rng.gen_range(MIN_OBSERVATIONS_BOUNDS.0..=MIN_OBSERVATIONS_BOUNDS.1),
            cooldown_observations: rng.gen_range(COOLDOWN_BOUNDS.0..=COOLDOWN_BOUNDS.1),
            drift_quantile: rng.gen_range(QUANTILE_BOUNDS.0..=QUANTILE_BOUNDS.1),
            drift_margin: rng.gen_range(DRIFT_MARGIN_BOUNDS.0..=DRIFT_MARGIN_BOUNDS.1),
            rejuvenation_quantile: rng.gen_range(QUANTILE_BOUNDS.0..=QUANTILE_BOUNDS.1),
            rejuvenation_slack_secs: rng
                .gen_range(REJUVENATION_SLACK_BOUNDS_SECS.0..=REJUVENATION_SLACK_BOUNDS_SECS.1),
            min_samples: rng.gen_range(MIN_SAMPLES_BOUNDS.0..=MIN_SAMPLES_BOUNDS.1),
            buffer_capacity,
            min_buffer_to_retrain: rng.gen_range(MIN_BUFFER_TO_RETRAIN_FLOOR..=buffer_capacity),
            retrain_every: rng
                .gen_bool(0.5)
                .then(|| rng.gen_range(RETRAIN_EVERY_BOUNDS.0..=RETRAIN_EVERY_BOUNDS.1)),
        }
    }

    /// Lowers the (clamped) point into a ready [`ClassSpec`] serving
    /// `initial` as generation 0.
    ///
    /// Goes through [`ClassSpec::builder`] and [`AdaptConfig::builder`],
    /// so the result is validated exactly like a hand-written spec.
    /// Fields this crate does not search (trend-segmentation tuning, the
    /// policy's threshold clamps) keep their workspace defaults.
    #[must_use]
    pub fn to_spec(&self, initial: Arc<dyn Regressor>) -> ClassSpec {
        let p = self.clamped();
        let drift = if p.drift_enabled {
            DriftConfig {
                ewma_alpha: p.ewma_alpha,
                error_threshold_secs: p.error_threshold_secs,
                min_observations: p.min_observations,
                cooldown_observations: p.cooldown_observations,
                ..Default::default()
            }
        } else {
            DriftConfig::disabled()
        };
        let mut config = AdaptConfig::builder()
            .drift(drift)
            .buffer_capacity(p.buffer_capacity)
            .min_buffer_to_retrain(p.min_buffer_to_retrain);
        if let Some(every) = p.retrain_every {
            config = config.retrain_every(every);
        }
        let policy: Arc<dyn ThresholdPolicy> = Arc::new(QuantileAdaptive {
            drift_quantile: p.drift_quantile,
            drift_margin: p.drift_margin,
            rejuvenation_quantile: p.rejuvenation_quantile,
            rejuvenation_slack_secs: p.rejuvenation_slack_secs,
            min_samples: p.min_samples,
            ..Default::default()
        });
        ClassSpec::builder(p.learner.learner(), initial)
            .config(config.build())
            .policy(policy)
            .build()
    }
}
