//! `aging-tune` — self-optimising policy search over the rejuvenation
//! space, scored by counterfactual journal replay.
//!
//! The paper's adaptive loop tunes *thresholds* on-line, but the policy
//! *shape* around them — which learner retrains each class, how hard the
//! drift detector debounces, how big the sliding training buffer is,
//! whether refits also run on a schedule — is frozen when the fleet
//! spawns. This crate searches that frozen space while the system runs,
//! using the one evaluator that is both faithful and free of production
//! risk: the recorded checkpoint journal, deterministically re-executed
//! under a candidate configuration via
//! [`aging_adapt::replay::replay_scored`].
//!
//! # The loop
//!
//! - [`PolicyPoint`] is a serialisable point in the search space
//!   (learner kind, drift debounce/EWMA, threshold-policy quantiles,
//!   buffer and refit cadence) with validity clamps.
//! - [`Operator`]s are ALNS-style destroy/repair moves
//!   (perturb-one-axis, swap-learner, crossover-with-incumbent,
//!   random-restart); an [`OperatorBank`] re-weights their selection by
//!   realised improvement.
//! - [`Evaluator`] replays the journal under a candidate and reduces the
//!   outcome to one objective: replayed mean TTF error plus a
//!   per-retrain penalty, with an optional digest-stability self-check.
//! - [`Tuner::search`] runs seeded simulated annealing over those moves —
//!   bit-reproducible for a fixed seed.
//! - [`PromotionGate`] only lets a winner displace the incumbent when it
//!   beats it by a configured margin; ties and within-margin wins never
//!   promote.
//! - [`FleetTuner`] round-robins searches over a live fleet's classes;
//!   the fleet engine applies approved [`Promotion`]s to the running
//!   router as ordinary generation-style spec publishes.
//!
//! Every stage threads `aging-obs`: `tune_*` metrics (rounds, candidate
//! and acceptance counters, per-class incumbent-objective gauges) and
//! `CandidateEvaluated` / `TuneRoundCompleted` / `PolicyPromoted` trace
//! events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluator;
pub mod operators;
pub mod point;
pub mod tuner;

pub use evaluator::{Evaluation, Evaluator};
pub use operators::{Operator, OperatorBank};
pub use point::PolicyPoint;
pub use tuner::{
    CandidateRecord, ClassTuneStats, FleetTuner, OperatorWeight, Promotion, PromotionGate,
    SearchOutcome, TuneConfig, TuneStats, TunedClass, Tuner,
};
