//! Scores candidate policies by counterfactual journal replay.

use crate::point::PolicyPoint;
use aging_adapt::replay::replay_scored;
use aging_adapt::{ClassReplay, ServiceClass};
use aging_ml::Regressor;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// What one replay said about one candidate.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Scalar replay objective, **lower is better**: mean absolute TTF
    /// error plus the configured per-retrain penalty. `f64::INFINITY`
    /// when the candidate was unscoreable — no labelled rows reached the
    /// scorer, or the digest-stability check failed.
    pub objective_secs: f64,
    /// Mean `|predicted − observed|` TTF error over the replay, seconds.
    pub mean_abs_error_secs: Option<f64>,
    /// Rows that contributed to the error mean.
    pub scored_rows: u64,
    /// Successful refits during the replay.
    pub retrains: u64,
    /// Drift triggers during the replay.
    pub drift_events: u64,
    /// Model generation after the last replayed batch.
    pub generation: u64,
    /// Final pipeline state digest.
    pub digest: u64,
    /// `false` when the double-replay digest check was on and disagreed.
    pub digest_stable: bool,
}

/// Replays the recorded journal under a candidate [`PolicyPoint`] and
/// reduces the outcome to one comparable objective.
///
/// The evaluator owns everything a replay needs — journal directory,
/// feature order, the class under search and its generation-0 model — so
/// scoring a candidate is one call. The objective is
/// `mean_abs_error_secs + retrain_penalty_secs × retrains`: the penalty
/// term prices the disruption of a refit (and of the model swap it
/// publishes), so a search cannot win by retraining on every batch for a
/// marginal error shave.
///
/// With [`Evaluator::verify_digest_stability`] the journal is replayed
/// twice and the final state digests must agree; a mismatch marks the
/// candidate unscoreable. Replay is single-threaded and deterministic,
/// so this is a pure self-check (it doubles evaluation cost) — it exists
/// for search configurations that must never promote on an unstable
/// measurement.
#[derive(Debug, Clone)]
pub struct Evaluator {
    journal_dir: PathBuf,
    feature_names: Vec<String>,
    class: ServiceClass,
    initial: Arc<dyn Regressor>,
    retrain_penalty_secs: f64,
    verify_digest_stability: bool,
}

impl Evaluator {
    /// An evaluator for `class`, replaying the journal at `journal_dir`
    /// with `initial` as every candidate's generation-0 model. No retrain
    /// penalty, no digest check.
    #[must_use]
    pub fn new(
        journal_dir: impl Into<PathBuf>,
        feature_names: Vec<String>,
        class: ServiceClass,
        initial: Arc<dyn Regressor>,
    ) -> Self {
        Evaluator {
            journal_dir: journal_dir.into(),
            feature_names,
            class,
            initial,
            retrain_penalty_secs: 0.0,
            verify_digest_stability: false,
        }
    }

    /// Prices each replayed retrain at `secs` seconds of objective.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is negative or non-finite.
    #[must_use]
    pub fn retrain_penalty_secs(mut self, secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "retrain penalty must be finite and ≥ 0");
        self.retrain_penalty_secs = secs;
        self
    }

    /// Replays every candidate twice and rejects digest mismatches.
    #[must_use]
    pub fn verify_digest_stability(mut self) -> Self {
        self.verify_digest_stability = true;
        self
    }

    /// The class this evaluator scores.
    #[must_use]
    pub fn class(&self) -> &ServiceClass {
        &self.class
    }

    /// Scores one candidate point.
    ///
    /// # Errors
    ///
    /// Propagates journal read failures (missing directory, I/O errors,
    /// mid-log corruption). An *unscoreable but readable* journal is not
    /// an error — it yields an infinite objective.
    pub fn evaluate(&self, point: &PolicyPoint) -> io::Result<Evaluation> {
        let replayed = self.replay_once(point)?;
        let mut digest_stable = true;
        if self.verify_digest_stability {
            let again = self.replay_once(point)?;
            digest_stable = again.digest == replayed.digest;
        }
        let mut objective_secs = match replayed.mean_abs_error_secs {
            Some(mean) => mean + self.retrain_penalty_secs * replayed.retrains as f64,
            None => f64::INFINITY,
        };
        if !digest_stable {
            objective_secs = f64::INFINITY;
        }
        Ok(Evaluation {
            objective_secs,
            mean_abs_error_secs: replayed.mean_abs_error_secs,
            scored_rows: replayed.scored_rows,
            retrains: replayed.retrains,
            drift_events: replayed.drift_events,
            generation: replayed.generation,
            digest: replayed.digest,
            digest_stable,
        })
    }

    fn replay_once(&self, point: &PolicyPoint) -> io::Result<ClassReplay> {
        let spec = point.to_spec(Arc::clone(&self.initial));
        let outcome = replay_scored(
            &self.journal_dir,
            self.feature_names.clone(),
            vec![(self.class.clone(), spec)],
        )?;
        Ok(outcome.classes.into_iter().next().expect("one class in, one class out"))
    }
}
