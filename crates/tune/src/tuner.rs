//! The search loop (simulated-annealing ALNS), the promotion gate, and
//! the live fleet harness.

use crate::evaluator::Evaluator;
use crate::operators::{Operator, OperatorBank, REWARD_ACCEPTED, REWARD_IMPROVED, REWARD_NEW_BEST};
use crate::point::PolicyPoint;
use aging_adapt::ServiceClass;
use aging_ml::Regressor;
use aging_obs::{
    CounterHandle, EventKind, EventScope, GaugeHandle, HistogramHandle, Recorder, Registry,
    TraceHandle, Unit,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Maps a possibly-infinite objective to its serialisable form.
fn finite(objective_secs: f64) -> Option<f64> {
    objective_secs.is_finite().then_some(objective_secs)
}

/// Decides whether a searched candidate may displace the incumbent.
///
/// The gate is deliberately strict: the candidate's objective must be
/// finite and beat the incumbent's by more than the configured
/// fractional margin — `candidate < incumbent × (1 − min_improvement)`.
/// Ties and within-margin wins never promote, so measurement noise
/// cannot churn the live configuration. Objectives are non-negative
/// seconds; an infinite (unscoreable) incumbent is beaten by any finite
/// candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PromotionGate {
    /// Required fractional improvement over the incumbent, in `[0, 1)`.
    /// `0.0` still rejects ties (the comparison is strict).
    pub min_improvement: f64,
}

impl Default for PromotionGate {
    /// A 5 % margin.
    fn default() -> Self {
        PromotionGate { min_improvement: 0.05 }
    }
}

impl PromotionGate {
    /// A gate requiring `min_improvement` fractional improvement.
    ///
    /// # Panics
    ///
    /// Panics unless `min_improvement` is in `[0, 1)`.
    #[must_use]
    pub fn new(min_improvement: f64) -> Self {
        let gate = PromotionGate { min_improvement };
        gate.validate();
        gate
    }

    pub(crate) fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.min_improvement),
            "promotion margin must be in [0, 1), got {}",
            self.min_improvement
        );
    }

    /// `true` when `candidate_objective_secs` beats
    /// `incumbent_objective_secs` by more than the margin.
    #[must_use]
    pub fn promotes(&self, candidate_objective_secs: f64, incumbent_objective_secs: f64) -> bool {
        candidate_objective_secs.is_finite()
            && candidate_objective_secs < incumbent_objective_secs * (1.0 - self.min_improvement)
    }
}

/// Tuning for one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneConfig {
    /// RNG seed — same seed, same journal, same incumbent ⇒ bit-identical
    /// search.
    pub seed: u64,
    /// Candidates evaluated per search.
    pub candidates: u64,
    /// Initial annealing temperature as a fraction of the incumbent
    /// objective (floored at 1 s; 1 s flat when the incumbent is
    /// unscoreable).
    pub initial_temperature: f64,
    /// Geometric cooling factor per candidate, in `(0, 1]`.
    pub cooling: f64,
    /// ALNS weight-update reaction factor `ρ`, in `(0, 1]`.
    pub reaction: f64,
    /// Objective seconds charged per replayed retrain.
    pub retrain_penalty_secs: f64,
    /// Replay every candidate twice and reject digest mismatches.
    pub verify_digest_stability: bool,
    /// The promotion gate.
    pub gate: PromotionGate,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 42,
            candidates: 24,
            initial_temperature: 0.1,
            cooling: 0.92,
            reaction: 0.2,
            retrain_penalty_secs: 0.0,
            verify_digest_stability: false,
            gate: PromotionGate::default(),
        }
    }
}

impl TuneConfig {
    pub(crate) fn validate(&self) {
        assert!(self.candidates > 0, "a search needs at least one candidate");
        assert!(
            self.cooling > 0.0 && self.cooling <= 1.0,
            "cooling factor must be in (0, 1], got {}",
            self.cooling
        );
        assert!(
            self.initial_temperature.is_finite() && self.initial_temperature >= 0.0,
            "initial temperature fraction must be finite and ≥ 0"
        );
        assert!(
            self.reaction > 0.0 && self.reaction <= 1.0,
            "reaction factor must be in (0, 1], got {}",
            self.reaction
        );
        assert!(
            self.retrain_penalty_secs.is_finite() && self.retrain_penalty_secs >= 0.0,
            "retrain penalty must be finite and ≥ 0"
        );
        self.gate.validate();
    }
}

/// One scored candidate in a search trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateRecord {
    /// Zero-based candidate index.
    pub round: u64,
    /// The operator that generated the candidate.
    pub operator: Operator,
    /// The candidate's objective (seconds); `None` when unscoreable.
    pub objective_secs: Option<f64>,
    /// Whether simulated annealing accepted it as the new position.
    pub accepted: bool,
    /// Whether it became the best point seen so far.
    pub new_best: bool,
    /// Best objective *after* this candidate — a monotone non-increasing
    /// trajectory by construction, which `check_tune` asserts.
    pub best_objective_secs: Option<f64>,
}

/// Final selection weight of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorWeight {
    /// The operator.
    pub operator: Operator,
    /// Its weight when the search ended.
    pub weight: f64,
}

/// Everything one search run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The incumbent the search tried to beat.
    pub incumbent: PolicyPoint,
    /// The incumbent's replayed objective (seconds).
    pub incumbent_objective_secs: Option<f64>,
    /// The best point found (the incumbent itself if nothing beat it).
    pub best: PolicyPoint,
    /// The best point's objective (seconds).
    pub best_objective_secs: Option<f64>,
    /// Fractional improvement over the incumbent, when both are finite.
    pub improvement: Option<f64>,
    /// Whether the promotion gate fired for `best`.
    pub promoted: bool,
    /// Candidates accepted by simulated annealing.
    pub accepted: u64,
    /// The full per-candidate trajectory, in evaluation order.
    pub candidates: Vec<CandidateRecord>,
    /// Final ALNS selection weights.
    pub operator_weights: Vec<OperatorWeight>,
}

/// One seeded simulated-annealing ALNS search over [`PolicyPoint`]s.
///
/// The loop is classic destroy-and-repair: an adaptively weighted
/// [`OperatorBank`] proposes a neighbour of the current position, the
/// [`Evaluator`] replays the journal under it, and acceptance is
/// simulated annealing — improving candidates always move the position,
/// worse ones move it with probability `exp(−Δ/T)` under a geometrically
/// cooling temperature. Everything is driven by one seeded
/// [`StdRng`], so a search is bit-reproducible given the same journal,
/// incumbent and config.
#[derive(Debug, Clone)]
pub struct Tuner {
    config: TuneConfig,
    trace: TraceHandle,
}

impl Tuner {
    /// A tuner with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero candidates, a
    /// cooling or reaction factor outside `(0, 1]`, a bad gate margin…).
    #[must_use]
    pub fn new(config: TuneConfig) -> Self {
        config.validate();
        Tuner { config, trace: TraceHandle::disabled() }
    }

    /// Emits `CandidateEvaluated` events for every scored candidate.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The tuner's configuration.
    #[must_use]
    pub fn config(&self) -> &TuneConfig {
        &self.config
    }

    /// Runs one full search against `incumbent`, scoring candidates with
    /// `evaluator`.
    ///
    /// # Errors
    ///
    /// Propagates journal read failures from the evaluator.
    pub fn search(
        &self,
        evaluator: &Evaluator,
        incumbent: &PolicyPoint,
    ) -> io::Result<SearchOutcome> {
        let incumbent = incumbent.clamped();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut bank = OperatorBank::new(self.config.reaction);
        let incumbent_objective = evaluator.evaluate(&incumbent)?.objective_secs;

        let mut current = incumbent.clone();
        let mut current_objective = incumbent_objective;
        let mut best = incumbent.clone();
        let mut best_objective = incumbent_objective;
        let mut temperature = if incumbent_objective.is_finite() {
            (self.config.initial_temperature * incumbent_objective.abs()).max(1.0)
        } else {
            1.0
        };
        let mut accepted_count = 0u64;
        let mut candidates = Vec::with_capacity(self.config.candidates as usize);

        for round in 0..self.config.candidates {
            let operator = bank.select(&mut rng);
            let candidate = operator.apply(&current, &incumbent, &mut rng).clamped();
            let objective = evaluator.evaluate(&candidate)?.objective_secs;

            let improved = objective < current_objective;
            let accepted = if improved {
                true
            } else if objective.is_finite() && current_objective.is_finite() {
                // Metropolis: Δ ≥ 0, so exp(−Δ/T) ∈ (0, 1].
                rng.gen_bool(((current_objective - objective) / temperature).exp().min(1.0))
            } else {
                false
            };
            let new_best = objective < best_objective;

            if new_best {
                best = candidate.clone();
                best_objective = objective;
            }
            if accepted {
                current = candidate;
                current_objective = objective;
                accepted_count += 1;
            }
            bank.reward(
                operator,
                if new_best {
                    REWARD_NEW_BEST
                } else if improved {
                    REWARD_IMPROVED
                } else if accepted {
                    REWARD_ACCEPTED
                } else {
                    0.0
                },
            );
            temperature = (temperature * self.config.cooling).max(f64::MIN_POSITIVE);

            self.trace.emit(
                EventScope::root().class(evaluator.class().as_str()),
                EventKind::CandidateEvaluated {
                    round,
                    operator: operator.name().to_string(),
                    objective_secs: finite(objective),
                    accepted,
                },
            );
            candidates.push(CandidateRecord {
                round,
                operator,
                objective_secs: finite(objective),
                accepted,
                new_best,
                best_objective_secs: finite(best_objective),
            });
        }

        let promoted = self.config.gate.promotes(best_objective, incumbent_objective);
        let improvement = (incumbent_objective.is_finite()
            && best_objective.is_finite()
            && incumbent_objective > 0.0)
            .then(|| (incumbent_objective - best_objective) / incumbent_objective);
        Ok(SearchOutcome {
            incumbent,
            incumbent_objective_secs: finite(incumbent_objective),
            best,
            best_objective_secs: finite(best_objective),
            improvement,
            promoted,
            accepted: accepted_count,
            candidates,
            operator_weights: bank
                .weights()
                .into_iter()
                .map(|(operator, weight)| OperatorWeight { operator, weight })
                .collect(),
        })
    }
}

/// One class under live tuning.
#[derive(Debug, Clone)]
pub struct TunedClass {
    /// The routed service class.
    pub class: ServiceClass,
    /// The currently deployed policy, as a search point.
    pub incumbent: PolicyPoint,
    /// The generation-0 model every counterfactual replay starts from.
    pub initial: Arc<dyn Regressor>,
}

/// A gate-approved configuration change for one class.
#[derive(Debug, Clone)]
pub struct Promotion {
    /// The class to re-configure.
    pub class: ServiceClass,
    /// The winning point. [`PolicyPoint::to_spec`] lowers it into the
    /// [`ClassSpec`](aging_adapt::ClassSpec) to publish.
    pub point: PolicyPoint,
    /// The displaced incumbent's replayed objective (seconds).
    pub incumbent_objective_secs: Option<f64>,
    /// The winner's replayed objective (seconds).
    pub candidate_objective_secs: Option<f64>,
}

/// Live per-class tuning state.
#[derive(Debug)]
struct ClassTunerState {
    class: ServiceClass,
    incumbent: PolicyPoint,
    initial: Arc<dyn Regressor>,
    incumbent_objective_secs: Option<f64>,
    rounds: u64,
    promotions: u64,
    objective_gauge: GaugeHandle,
}

/// Telemetry handles, resolved once when a registry is attached.
#[derive(Debug)]
struct TuneInstruments {
    rounds: CounterHandle,
    candidates: CounterHandle,
    accepted: CounterHandle,
    promotions: CounterHandle,
    round_duration: HistogramHandle,
}

impl TuneInstruments {
    fn disabled() -> Self {
        TuneInstruments {
            rounds: CounterHandle::disabled(),
            candidates: CounterHandle::disabled(),
            accepted: CounterHandle::disabled(),
            promotions: CounterHandle::disabled(),
            round_duration: HistogramHandle::disabled(),
        }
    }

    fn resolve(registry: &Registry) -> Self {
        TuneInstruments {
            rounds: registry.counter("tune_rounds_total", "Policy-search rounds completed"),
            candidates: registry
                .counter("tune_candidates_total", "Policy-search candidates evaluated"),
            accepted: registry
                .counter("tune_accepted_total", "Candidates accepted by simulated annealing"),
            promotions: registry
                .counter("tune_promotions_total", "Policies promoted through the gate"),
            round_duration: registry.histogram(
                "tune_round_seconds",
                "Wall-clock duration of one policy-search round",
                Unit::Seconds,
            ),
        }
    }
}

/// Serialisable snapshot of what a [`FleetTuner`] has done so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneStats {
    /// Search rounds completed across all classes.
    pub rounds: u64,
    /// Candidates evaluated in total.
    pub candidates: u64,
    /// Candidates accepted by simulated annealing.
    pub accepted: u64,
    /// Promotions that fired.
    pub promotions: u64,
    /// Per-class state, in registration order.
    pub classes: Vec<ClassTuneStats>,
}

/// One class's slice of [`TuneStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassTuneStats {
    /// The class name.
    pub class: String,
    /// Search rounds run against this class.
    pub rounds: u64,
    /// Promotions this class received.
    pub promotions: u64,
    /// The replayed objective of the current incumbent (seconds), from
    /// the most recent round.
    pub incumbent_objective_secs: Option<f64>,
    /// The current incumbent point.
    pub incumbent: PolicyPoint,
}

/// Drives repeated search rounds against a live fleet's journal.
///
/// The harness round-robins over its classes: each [`FleetTuner::step`]
/// runs one full seeded search for one class off the recorded journal,
/// updates that class's incumbent when the gate fires, and returns the
/// promotions for the caller (the fleet engine's tuner thread) to publish
/// into the [`AdaptiveRouter`](aging_adapt::AdaptiveRouter) via
/// `apply_spec`. Per-round seeds derive from the base seed, the class
/// index and the class's round counter, so every individual search stays
/// reproducible even though wall-clock decides how many rounds a live
/// run fits.
#[derive(Debug)]
pub struct FleetTuner {
    journal_dir: PathBuf,
    feature_names: Vec<String>,
    config: TuneConfig,
    classes: Vec<ClassTunerState>,
    next_class: usize,
    rounds: u64,
    candidates: u64,
    accepted: u64,
    promotions: u64,
    trace: TraceHandle,
    instruments: TuneInstruments,
}

impl FleetTuner {
    /// A tuner over the journal at `journal_dir` for the given classes.
    ///
    /// # Panics
    ///
    /// Panics when `config` is degenerate (see [`Tuner::new`]).
    #[must_use]
    pub fn new(
        journal_dir: impl Into<PathBuf>,
        feature_names: Vec<String>,
        config: TuneConfig,
        classes: Vec<TunedClass>,
    ) -> Self {
        config.validate();
        FleetTuner {
            journal_dir: journal_dir.into(),
            feature_names,
            config,
            classes: classes
                .into_iter()
                .map(|c| ClassTunerState {
                    class: c.class,
                    incumbent: c.incumbent.clamped(),
                    initial: c.initial,
                    incumbent_objective_secs: None,
                    rounds: 0,
                    promotions: 0,
                    objective_gauge: GaugeHandle::disabled(),
                })
                .collect(),
            next_class: 0,
            rounds: 0,
            candidates: 0,
            accepted: 0,
            promotions: 0,
            trace: TraceHandle::disabled(),
            instruments: TuneInstruments::disabled(),
        }
    }

    /// Resolves the `tune_*` metric families against `registry`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.instruments = TuneInstruments::resolve(registry);
        for state in &mut self.classes {
            state.objective_gauge = registry.gauge_with(
                "tune_incumbent_objective_secs",
                "Replayed objective of the deployed policy",
                "class",
                state.class.as_str(),
            );
        }
    }

    /// Emits `CandidateEvaluated` / `TuneRoundCompleted` /
    /// `PolicyPromoted` events through `trace`.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Runs one search round for the next class in round-robin order and
    /// returns any promotion the gate approved (the incumbent is already
    /// advanced internally).
    ///
    /// # Errors
    ///
    /// Propagates journal read failures — expected while the journal
    /// directory does not exist yet; callers skip and retry.
    pub fn step(&mut self) -> io::Result<Vec<Promotion>> {
        if self.classes.is_empty() {
            return Ok(Vec::new());
        }
        let idx = self.next_class;
        self.next_class = (self.next_class + 1) % self.classes.len();

        let state = &self.classes[idx];
        let evaluator = {
            let mut e = Evaluator::new(
                self.journal_dir.clone(),
                self.feature_names.clone(),
                state.class.clone(),
                Arc::clone(&state.initial),
            )
            .retrain_penalty_secs(self.config.retrain_penalty_secs);
            if self.config.verify_digest_stability {
                e = e.verify_digest_stability();
            }
            e
        };
        // Re-seed per round: reproducible searches, fresh neighbourhoods.
        let seed = self
            .config
            .seed
            .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(state.rounds.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let tuner =
            Tuner::new(TuneConfig { seed, ..self.config.clone() }).with_trace(self.trace.clone());

        let span = self.instruments.round_duration.span();
        let outcome = tuner.search(&evaluator, &state.incumbent)?;
        span.finish();

        let state = &mut self.classes[idx];
        state.rounds += 1;
        self.rounds += 1;
        self.candidates += outcome.candidates.len() as u64;
        self.accepted += outcome.accepted;
        self.instruments.rounds.inc();
        self.instruments.candidates.add(outcome.candidates.len() as u64);
        self.instruments.accepted.add(outcome.accepted);

        self.trace.emit(
            EventScope::root().class(state.class.as_str()),
            EventKind::TuneRoundCompleted {
                round: state.rounds - 1,
                best_objective_secs: outcome.best_objective_secs,
                incumbent_objective_secs: outcome.incumbent_objective_secs,
            },
        );

        let mut promotions = Vec::new();
        if outcome.promoted {
            state.incumbent = outcome.best.clone();
            state.incumbent_objective_secs = outcome.best_objective_secs;
            state.promotions += 1;
            self.promotions += 1;
            self.instruments.promotions.inc();
            self.trace.emit(
                EventScope::root().class(state.class.as_str()),
                EventKind::PolicyPromoted {
                    incumbent_objective_secs: outcome.incumbent_objective_secs,
                    candidate_objective_secs: outcome.best_objective_secs,
                },
            );
            promotions.push(Promotion {
                class: state.class.clone(),
                point: outcome.best,
                incumbent_objective_secs: outcome.incumbent_objective_secs,
                candidate_objective_secs: outcome.best_objective_secs,
            });
        } else {
            state.incumbent_objective_secs = outcome.incumbent_objective_secs;
        }
        if let Some(objective) = state.incumbent_objective_secs {
            state.objective_gauge.set(objective);
        }
        Ok(promotions)
    }

    /// The initial model for `class`, for lowering a promotion into a
    /// spec.
    #[must_use]
    pub fn initial_for(&self, class: &ServiceClass) -> Option<Arc<dyn Regressor>> {
        self.classes.iter().find(|s| &s.class == class).map(|s| Arc::clone(&s.initial))
    }

    /// Snapshot of everything the tuner has done so far.
    #[must_use]
    pub fn stats(&self) -> TuneStats {
        TuneStats {
            rounds: self.rounds,
            candidates: self.candidates,
            accepted: self.accepted,
            promotions: self.promotions,
            classes: self
                .classes
                .iter()
                .map(|s| ClassTuneStats {
                    class: s.class.as_str().to_string(),
                    rounds: s.rounds,
                    promotions: s.promotions,
                    incumbent_objective_secs: s.incumbent_objective_secs,
                    incumbent: s.incumbent.clone(),
                })
                .collect(),
        }
    }
}
