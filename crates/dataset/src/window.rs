//! The paper's *sliding window average* (Section 2.2) and the consumption
//! speed tracker built on top of it.
//!
//! The paper derives, for every monitored resource, an (instantaneous)
//! consumption speed per checkpoint and then smooths it with a *sliding
//! window average* over the last `X` observations: "a long window is more
//! noise tolerant, but also makes the method slower to reflect changes in
//! the input".

use std::collections::VecDeque;

/// Fixed-capacity sliding window over `f64` observations with O(1) mean.
///
/// # Example
///
/// ```
/// use aging_dataset::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// assert_eq!(w.mean(), 2.0);
/// w.push(10.0); // evicts 1.0
/// assert_eq!(w.mean(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindow {
    /// Creates a window keeping the last `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow { capacity, buf: VecDeque::with_capacity(capacity), sum: 0.0 }
    }

    /// Window capacity (the paper's `X`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of observations currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no observations yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has been completely filled at least once.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Pushes an observation, evicting the oldest when full. Returns the
    /// evicted value, if any.
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let evicted = if self.buf.len() == self.capacity {
            let old = self.buf.pop_front().expect("full window is non-empty");
            self.sum -= old;
            Some(old)
        } else {
            None
        };
        self.buf.push_back(x);
        self.sum += x;
        evicted
    }

    /// Mean of the observations currently in the window; `0.0` when empty.
    ///
    /// This is the paper's *sliding window average* (SWA).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            // Recompute lazily from the buffer when the incremental sum may
            // have accumulated rounding error on long runs: the buffer is
            // tiny (X is ~12 in the paper), so this is cheap and exact.
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    /// Most recent observation, if any.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Oldest observation still in the window, if any.
    pub fn oldest(&self) -> Option<f64> {
        self.buf.front().copied()
    }

    /// Iterates over observations from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Clears all observations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Tracks the smoothed consumption speed of one resource.
///
/// At each checkpoint the monitor feeds the current resource level; the
/// tracker differentiates consecutive levels into an instantaneous speed
/// (units per second) and maintains its sliding-window average, exactly as
/// the paper's derived `SWA variation` variables (Table 2).
///
/// # Example
///
/// ```
/// use aging_dataset::RateTracker;
///
/// let mut t = RateTracker::new(4);
/// t.observe(0.0, 100.0);
/// t.observe(15.0, 130.0); // +2 units/s
/// assert_eq!(t.smoothed_speed(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateTracker {
    window: SlidingWindow,
    last: Option<(f64, f64)>,
}

impl RateTracker {
    /// Creates a tracker whose speed is averaged over the last
    /// `window_len` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize) -> Self {
        RateTracker { window: SlidingWindow::new(window_len), last: None }
    }

    /// Feeds the resource level `value` observed at time `t_secs`.
    ///
    /// Observations at non-increasing timestamps are ignored (no speed can
    /// be derived from them).
    pub fn observe(&mut self, t_secs: f64, value: f64) {
        if let Some((t0, v0)) = self.last {
            let dt = t_secs - t0;
            if dt > 0.0 {
                self.window.push((value - v0) / dt);
                self.last = Some((t_secs, value));
            }
        } else {
            self.last = Some((t_secs, value));
        }
    }

    /// Instantaneous speed of the most recent interval; `0.0` before two
    /// observations have been seen.
    pub fn instant_speed(&self) -> f64 {
        self.window.last().unwrap_or(0.0)
    }

    /// Sliding-window-averaged speed (the paper's SWA variation); `0.0`
    /// before two observations have been seen.
    pub fn smoothed_speed(&self) -> f64 {
        self.window.mean()
    }

    /// Inverse of the smoothed speed (the paper's `1/SWA` derived variable).
    ///
    /// Returns `cap` when the speed is zero or non-consuming (≤ 0): an idle
    /// resource implies an unbounded time to exhaustion, which must still be
    /// representable as a finite feature value.
    pub fn inverse_speed(&self, cap: f64) -> f64 {
        let s = self.smoothed_speed();
        if s <= 0.0 {
            cap
        } else {
            (1.0 / s).min(cap)
        }
    }

    /// Number of speed samples currently in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// Resets the tracker (used when the monitored process is rejuvenated).
    pub fn reset(&mut self) {
        self.window.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_mean_and_eviction() {
        let mut w = SlidingWindow::new(2);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.push(4.0), None);
        assert_eq!(w.push(6.0), None);
        assert!(w.is_full());
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.push(10.0), Some(4.0));
        assert_eq!(w.mean(), 8.0);
        assert_eq!(w.last(), Some(10.0));
        assert_eq!(w.oldest(), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn window_clear() {
        let mut w = SlidingWindow::new(3);
        w.push(1.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn window_iterates_oldest_first() {
        let mut w = SlidingWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let v: Vec<f64> = w.iter().collect();
        assert_eq!(v, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn tracker_differentiates() {
        let mut t = RateTracker::new(3);
        t.observe(0.0, 0.0);
        assert_eq!(t.smoothed_speed(), 0.0);
        t.observe(10.0, 50.0); // 5/s
        t.observe(20.0, 150.0); // 10/s
        assert_eq!(t.instant_speed(), 10.0);
        assert!((t.smoothed_speed() - 7.5).abs() < 1e-12);
        assert_eq!(t.samples(), 2);
    }

    #[test]
    fn tracker_smooths_noise() {
        // Alternating instantaneous rates average out over the window.
        let mut t = RateTracker::new(4);
        let mut level = 0.0;
        for i in 0..9 {
            t.observe(i as f64 * 15.0, level);
            level += if i % 2 == 0 { 30.0 } else { 0.0 };
        }
        let swa = t.smoothed_speed();
        assert!(swa > 0.4 && swa < 1.6, "smoothed speed {swa} should be near 1.0");
    }

    #[test]
    fn tracker_ignores_non_advancing_time() {
        let mut t = RateTracker::new(3);
        t.observe(5.0, 10.0);
        t.observe(5.0, 99.0); // ignored
        t.observe(4.0, 99.0); // ignored
        assert_eq!(t.samples(), 0);
        t.observe(10.0, 20.0);
        assert_eq!(t.instant_speed(), 2.0);
    }

    #[test]
    fn inverse_speed_caps() {
        let mut t = RateTracker::new(2);
        t.observe(0.0, 0.0);
        t.observe(1.0, 0.0); // zero speed
        assert_eq!(t.inverse_speed(1e4), 1e4);
        t.observe(2.0, -5.0); // releasing: negative speed also capped
        assert_eq!(t.inverse_speed(1e4), 1e4);
        let mut t2 = RateTracker::new(1);
        t2.observe(0.0, 0.0);
        t2.observe(1.0, 4.0);
        assert_eq!(t2.inverse_speed(1e4), 0.25);
    }

    #[test]
    fn tracker_reset() {
        let mut t = RateTracker::new(2);
        t.observe(0.0, 0.0);
        t.observe(1.0, 1.0);
        t.reset();
        assert_eq!(t.samples(), 0);
        assert_eq!(t.smoothed_speed(), 0.0);
    }
}
