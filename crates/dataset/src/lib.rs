//! Tabular dataset foundation for the software-aging prediction reproduction.
//!
//! This crate provides the data plumbing shared by every other crate in the
//! workspace:
//!
//! - [`Dataset`]: a named-column, row-oriented numeric table with a designated
//!   regression target (the paper's *time to failure*),
//! - [`stats`]: streaming and batch descriptive statistics,
//! - [`window`]: the paper's *sliding window average* (Section 2.2) used to
//!   smooth per-resource consumption speeds,
//! - [`io`]: CSV and WEKA-ARFF serialisation (the original paper published its
//!   training/test sets in ARFF format).
//!
//! # Example
//!
//! ```
//! use aging_dataset::Dataset;
//!
//! let mut ds = Dataset::new(vec!["mem_used".into(), "threads".into()], "ttf");
//! ds.push_row(vec![100.0, 32.0], 600.0)?;
//! ds.push_row(vec![150.0, 40.0], 300.0)?;
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds.n_attributes(), 2);
//! # Ok::<(), aging_dataset::DatasetError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod error;
pub mod io;
pub mod stats;
pub mod window;

pub use dataset::{Dataset, RowView};
pub use error::DatasetError;
pub use window::{RateTracker, SlidingWindow};
