//! Descriptive statistics used throughout the reproduction.
//!
//! Batch helpers operate on slices; [`Running`] is a numerically-stable
//! (Welford) streaming accumulator used by the monitoring subsystem and by
//! M5P's standard-deviation-reduction split search.

/// Arithmetic mean of `xs`; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(aging_dataset::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of `xs`; `0.0` for fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of `xs`.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between `xs` and `ys`.
///
/// Returns `0.0` when either side has zero variance or the slices are empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation requires equal-length slices");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Linear interpolation quantile (`q` in `[0, 1]`) of `xs`.
///
/// Non-finite values are treated as **missing observations** — the same
/// convention the segmentation and drift layers use — and never enter the
/// order statistics. Sorting with `total_cmp` alone would place NaNs
/// *after* `+inf`, silently poisoning every high quantile (and the median
/// of NaN-heavy input); filtering keeps one stray NaN in a monitoring
/// stream from corrupting every threshold derived from it.
///
/// Returns `None` for an empty slice or when no finite value remains.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median of `xs` (see [`quantile`]).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm), with min/max tracking.
///
/// # Example
///
/// ```
/// use aging_dataset::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 6.0] { r.push(x); }
/// assert_eq!(r.count(), 3);
/// assert_eq!(r.mean(), 4.0);
/// assert!(r.std_dev() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(correlation(&[], &[]), 0.0);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn correlation_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_constant_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantile_treats_non_finite_as_missing() {
        // `total_cmp` sorts NaN after +inf, so before the fix one stray NaN
        // poisoned every high quantile: quantile(&[1, 2, NaN], 1.0) was NaN.
        let clean = [1.0, 2.0, 3.0, 4.0];
        let laced = [f64::NAN, 1.0, f64::INFINITY, 2.0, 3.0, f64::NEG_INFINITY, 4.0, f64::NAN];
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                quantile(&laced, q),
                quantile(&clean, q),
                "q={q}: non-finite lacing must not move the quantile"
            );
            assert!(quantile(&laced, q).unwrap().is_finite());
        }
        assert_eq!(quantile(&laced, 1.0), Some(4.0), "the top quantile must not be NaN/inf");
    }

    #[test]
    fn median_of_nan_heavy_input_stays_finite() {
        // Majority-NaN input: the median of the *finite* survivors.
        let xs = [f64::NAN, f64::NAN, 10.0, f64::NAN, 20.0, f64::NAN, f64::NAN];
        assert_eq!(median(&xs), Some(15.0));
    }

    #[test]
    fn all_non_finite_input_yields_none() {
        assert_eq!(quantile(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY], 0.5), None);
        assert_eq!(median(&[f64::NAN]), None);
    }

    #[test]
    fn running_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut r = Running::new();
        for &x in &xs {
            r.push(x);
        }
        assert!((r.mean() - mean(&xs)).abs() < 1e-12);
        assert!((r.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.max(), Some(9.0));
    }

    #[test]
    fn running_merge_matches_concatenation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut ra = Running::new();
        for &x in &a {
            ra.push(x);
        }
        let mut rb = Running::new();
        for &x in &b {
            rb.push(x);
        }
        let mut rc = Running::new();
        for &x in a.iter().chain(&b) {
            rc.push(x);
        }
        ra.merge(&rb);
        assert_eq!(ra.count(), rc.count());
        assert!((ra.mean() - rc.mean()).abs() < 1e-12);
        assert!((ra.variance() - rc.variance()).abs() < 1e-9);
    }

    #[test]
    fn running_merge_with_empty() {
        let mut r = Running::new();
        r.push(5.0);
        let empty = Running::new();
        let before = r;
        r.merge(&empty);
        assert_eq!(r, before);
        let mut e = Running::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
