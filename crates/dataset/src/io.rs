//! CSV and WEKA-ARFF serialisation for [`Dataset`].
//!
//! The original paper published its training and test sets in WEKA's ARFF
//! format; [`write_arff`] produces the equivalent file for our datasets so
//! results can be compared or post-processed with the same tooling.

use crate::{Dataset, DatasetError};
use std::io::{BufRead, Write};

/// Writes `ds` as CSV with a header row: attribute columns first, target
/// column last.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
///
/// # Example
///
/// ```
/// use aging_dataset::{Dataset, io};
///
/// let mut ds = Dataset::new(vec!["x".into()], "y");
/// ds.push_row(vec![1.5], 3.0)?;
/// let mut out = Vec::new();
/// io::write_csv(&ds, &mut out)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "x,y\n1.5,3\n");
/// # Ok::<(), aging_dataset::DatasetError>(())
/// ```
pub fn write_csv<W: Write>(ds: &Dataset, mut w: W) -> Result<(), DatasetError> {
    let mut header: Vec<&str> = ds.attribute_names().iter().map(String::as_str).collect();
    header.push(ds.target_name());
    writeln!(w, "{}", header.join(","))?;
    for row in ds.iter() {
        for v in row.values() {
            write!(w, "{v},")?;
        }
        writeln!(w, "{}", row.target())?;
    }
    Ok(())
}

/// Reads a CSV (as produced by [`write_csv`]) back into a [`Dataset`].
///
/// The last column is taken as the target.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] on malformed input (missing header, bad
/// numbers, ragged rows) and propagates I/O failures.
pub fn read_csv<R: BufRead>(r: R) -> Result<Dataset, DatasetError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or(DatasetError::Parse { line: 1, message: "empty input: missing header".into() })?;
    let header = header?;
    let mut cols: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if cols.len() < 2 {
        return Err(DatasetError::Parse {
            line: 1,
            message: format!("need at least 2 columns, got {}", cols.len()),
        });
    }
    let target = cols.pop().expect("checked len >= 2");
    let n_attrs = cols.len();
    let mut ds = Dataset::new(cols, target);
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut vals = Vec::with_capacity(n_attrs + 1);
        for tok in line.split(',') {
            let v: f64 = tok.trim().parse().map_err(|e| DatasetError::Parse {
                line: lineno,
                message: format!("bad number `{tok}`: {e}"),
            })?;
            vals.push(v);
        }
        if vals.len() != n_attrs + 1 {
            return Err(DatasetError::Parse {
                line: lineno,
                message: format!("expected {} values, got {}", n_attrs + 1, vals.len()),
            });
        }
        let target = vals.pop().expect("non-empty row");
        ds.push_row(vals, target)
            .map_err(|e| DatasetError::Parse { line: lineno, message: e.to_string() })?;
    }
    Ok(ds)
}

/// Writes `ds` in WEKA ARFF format under relation name `relation`.
///
/// All attributes (including the target, emitted last, as WEKA expects for
/// regression) are declared `numeric`. Attribute names containing spaces or
/// quotes are quoted per the ARFF grammar.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_arff<W: Write>(ds: &Dataset, relation: &str, mut w: W) -> Result<(), DatasetError> {
    writeln!(w, "@RELATION {}", arff_quote(relation))?;
    writeln!(w)?;
    for name in ds.attribute_names() {
        writeln!(w, "@ATTRIBUTE {} NUMERIC", arff_quote(name))?;
    }
    writeln!(w, "@ATTRIBUTE {} NUMERIC", arff_quote(ds.target_name()))?;
    writeln!(w)?;
    writeln!(w, "@DATA")?;
    for row in ds.iter() {
        for v in row.values() {
            write!(w, "{v},")?;
        }
        writeln!(w, "{}", row.target())?;
    }
    Ok(())
}

fn arff_quote(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.') {
        name.to_string()
    } else {
        format!("'{}'", name.replace('\'', "\\'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b speed".into()], "ttf");
        ds.push_row(vec![1.0, 2.5], 100.0).unwrap();
        ds.push_row(vec![-3.0, 0.0], 0.5).unwrap();
        ds
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let input = "x,y\n1,2\n\n3,4\n";
        let ds = read_csv(input.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.target(1), 4.0);
    }

    #[test]
    fn csv_rejects_empty_input() {
        let err = read_csv("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn csv_rejects_single_column() {
        let err = read_csv("only\n1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("2 columns"));
    }

    #[test]
    fn csv_rejects_bad_number_with_line_info() {
        let err = read_csv("x,y\n1,2\n1,oops\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got: {msg}");
        assert!(msg.contains("oops"));
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let err = read_csv("x,y\n1,2,3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 values"));
    }

    #[test]
    fn arff_structure() {
        let ds = sample();
        let mut buf = Vec::new();
        write_arff(&ds, "aging run", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("@RELATION 'aging run'"));
        assert!(text.contains("@ATTRIBUTE a NUMERIC"));
        assert!(text.contains("@ATTRIBUTE 'b speed' NUMERIC"));
        assert!(text.contains("@ATTRIBUTE ttf NUMERIC"));
        assert!(text.contains("@DATA"));
        assert!(text.contains("1,2.5,100"));
    }

    #[test]
    fn arff_quoting_rules() {
        assert_eq!(arff_quote("plain_name-1.2"), "plain_name-1.2");
        assert_eq!(arff_quote("has space"), "'has space'");
        assert_eq!(arff_quote("it's"), "'it\\'s'");
    }
}
