use crate::error::DatasetError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A numeric, row-oriented table with named attribute columns and a single
/// designated regression target column.
///
/// This mirrors the shape of the WEKA instances the original paper trained
/// M5P on: every *checkpoint* of a monitored execution becomes one row whose
/// attributes are the Table-2 variables and whose target is the time to
/// failure in seconds.
///
/// Rows are stored in a flat `Vec<f64>` (row-major) for cache-friendly
/// scanning during tree induction; targets are stored separately.
///
/// # Example
///
/// ```
/// use aging_dataset::Dataset;
///
/// let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
/// ds.push_row(vec![1.0, 2.0], 10.0)?;
/// assert_eq!(ds.row(0).values(), &[1.0, 2.0]);
/// assert_eq!(ds.target(0), 10.0);
/// # Ok::<(), aging_dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    attribute_names: Vec<String>,
    target_name: String,
    /// Row-major attribute values; length = rows * attribute_names.len().
    values: Vec<f64>,
    targets: Vec<f64>,
}

/// Borrowed view of a single dataset row (attributes plus target).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowView<'a> {
    values: &'a [f64],
    target: f64,
}

impl<'a> RowView<'a> {
    /// The attribute values of this row.
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// The regression target of this row.
    pub fn target(&self) -> f64 {
        self.target
    }
}

impl Dataset {
    /// Creates an empty dataset with the given attribute column names and
    /// target column name.
    ///
    /// # Example
    ///
    /// ```
    /// let ds = aging_dataset::Dataset::new(vec!["x".into()], "ttf");
    /// assert!(ds.is_empty());
    /// ```
    pub fn new(attribute_names: Vec<String>, target_name: impl Into<String>) -> Self {
        Dataset {
            attribute_names,
            target_name: target_name.into(),
            values: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset holds no rows.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Number of attribute columns (excluding the target).
    pub fn n_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// Attribute column names, in column order.
    pub fn attribute_names(&self) -> &[String] {
        &self.attribute_names
    }

    /// Name of the target column.
    pub fn target_name(&self) -> &str {
        &self.target_name
    }

    /// Index of the attribute column called `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.attribute_names.iter().position(|n| n == name)
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ArityMismatch`] if `values.len()` differs from
    /// the schema arity and [`DatasetError::NonFinite`] if any value (or the
    /// target) is NaN or infinite.
    pub fn push_row(&mut self, values: Vec<f64>, target: f64) -> Result<(), DatasetError> {
        if values.len() != self.attribute_names.len() {
            return Err(DatasetError::ArityMismatch {
                expected: self.attribute_names.len(),
                got: values.len(),
            });
        }
        if let Some(bad) = values.iter().position(|v| !v.is_finite()) {
            return Err(DatasetError::NonFinite { column: self.attribute_names[bad].clone() });
        }
        if !target.is_finite() {
            return Err(DatasetError::NonFinite { column: self.target_name.clone() });
        }
        self.values.extend_from_slice(&values);
        self.targets.push(target);
        Ok(())
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> RowView<'_> {
        let n = self.n_attributes();
        RowView { values: &self.values[i * n..(i + 1) * n], target: self.targets[i] }
    }

    /// The target value of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets, in row order.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// Value at row `i`, attribute column `col`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value(&self, i: usize, col: usize) -> f64 {
        self.values[i * self.n_attributes() + col]
    }

    /// Iterator over row views.
    pub fn iter(&self) -> impl Iterator<Item = RowView<'_>> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Copies the values of attribute column `col` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ColumnOutOfRange`] for a bad index.
    pub fn column(&self, col: usize) -> Result<Vec<f64>, DatasetError> {
        let n = self.n_attributes();
        if col >= n {
            return Err(DatasetError::ColumnOutOfRange { index: col, len: n });
        }
        Ok((0..self.len()).map(|i| self.value(i, col)).collect())
    }

    /// Appends all rows of `other` (which must share the exact schema).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ArityMismatch`] when schemas differ.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), DatasetError> {
        if other.attribute_names != self.attribute_names {
            return Err(DatasetError::ArityMismatch {
                expected: self.n_attributes(),
                got: other.n_attributes(),
            });
        }
        self.values.extend_from_slice(&other.values);
        self.targets.extend_from_slice(&other.targets);
        Ok(())
    }

    /// Returns a new dataset containing only the named attribute columns
    /// (targets are kept unchanged). This is the *feature selection*
    /// operation of the paper's Experiment 4.3.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::UnknownColumn`] if any name is absent.
    pub fn select_columns(&self, names: &[&str]) -> Result<Dataset, DatasetError> {
        let mut idx = Vec::with_capacity(names.len());
        for &name in names {
            idx.push(
                self.column_index(name)
                    .ok_or_else(|| DatasetError::UnknownColumn(name.to_string()))?,
            );
        }
        let mut out =
            Dataset::new(names.iter().map(|s| s.to_string()).collect(), self.target_name.clone());
        for i in 0..self.len() {
            let row: Vec<f64> = idx.iter().map(|&c| self.value(i, c)).collect();
            out.push_row(row, self.targets[i])
                .expect("selected row has matching arity and finite values");
        }
        Ok(out)
    }

    /// Returns a dataset containing the rows whose indices satisfy `keep`.
    pub fn filter_rows(&self, mut keep: impl FnMut(usize, RowView<'_>) -> bool) -> Dataset {
        let mut out = Dataset::new(self.attribute_names.clone(), self.target_name.clone());
        for i in 0..self.len() {
            let row = self.row(i);
            if keep(i, row) {
                out.push_row(row.values().to_vec(), row.target())
                    .expect("filtered row comes from a valid dataset");
            }
        }
        out
    }

    /// Splits into `(head, tail)` at row `at` (head gets rows `0..at`).
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        assert!(at <= self.len(), "split point {at} beyond {} rows", self.len());
        let head = self.filter_rows(|i, _| i < at);
        let tail = self.filter_rows(|i, _| i >= at);
        (head, tail)
    }

    /// Returns a copy with rows shuffled by `rng` (used for cross-validation
    /// folds; training itself is deterministic).
    pub fn shuffled<R: Rng>(&self, rng: &mut R) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let mut out = Dataset::new(self.attribute_names.clone(), self.target_name.clone());
        for &i in &order {
            out.push_row(self.row(i).values().to_vec(), self.targets[i])
                .expect("shuffled row comes from a valid dataset");
        }
        out
    }

    /// Mean of the target column; `None` when empty.
    pub fn target_mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(crate::stats::mean(&self.targets))
        }
    }

    /// Population standard deviation of the target column; `None` when empty.
    pub fn target_std(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(crate::stats::std_dev(&self.targets))
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = RowView<'a>;
    type IntoIter = Box<dyn Iterator<Item = RowView<'a>> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new((0..self.len()).map(move |i| self.row(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
        ds.push_row(vec![1.0, 10.0], 100.0).unwrap();
        ds.push_row(vec![2.0, 20.0], 200.0).unwrap();
        ds.push_row(vec![3.0, 30.0], 300.0).unwrap();
        ds
    }

    #[test]
    fn push_and_read_back() {
        let ds = sample();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.n_attributes(), 2);
        assert_eq!(ds.row(1).values(), &[2.0, 20.0]);
        assert_eq!(ds.target(2), 300.0);
        assert_eq!(ds.value(2, 1), 30.0);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut ds = sample();
        let err = ds.push_row(vec![1.0], 5.0).unwrap_err();
        assert!(matches!(err, DatasetError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn non_finite_is_rejected_with_column_name() {
        let mut ds = sample();
        let err = ds.push_row(vec![1.0, f64::NAN], 5.0).unwrap_err();
        match err {
            DatasetError::NonFinite { column } => assert_eq!(column, "b"),
            other => panic!("unexpected error {other:?}"),
        }
        let err = ds.push_row(vec![1.0, 2.0], f64::INFINITY).unwrap_err();
        match err {
            DatasetError::NonFinite { column } => assert_eq!(column, "y"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn column_extraction() {
        let ds = sample();
        assert_eq!(ds.column(0).unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(ds.column(5).is_err());
    }

    #[test]
    fn column_index_lookup() {
        let ds = sample();
        assert_eq!(ds.column_index("b"), Some(1));
        assert_eq!(ds.column_index("zzz"), None);
    }

    #[test]
    fn select_columns_projects_and_preserves_targets() {
        let ds = sample();
        let proj = ds.select_columns(&["b"]).unwrap();
        assert_eq!(proj.n_attributes(), 1);
        assert_eq!(proj.attribute_names(), &["b".to_string()]);
        assert_eq!(proj.row(2).values(), &[30.0]);
        assert_eq!(proj.targets(), ds.targets());
        assert!(ds.select_columns(&["nope"]).is_err());
    }

    #[test]
    fn select_columns_can_reorder() {
        let ds = sample();
        let proj = ds.select_columns(&["b", "a"]).unwrap();
        assert_eq!(proj.row(0).values(), &[10.0, 1.0]);
    }

    #[test]
    fn filter_and_split() {
        let ds = sample();
        let even = ds.filter_rows(|i, _| i % 2 == 0);
        assert_eq!(even.len(), 2);
        assert_eq!(even.target(1), 300.0);
        let (h, t) = ds.split_at(1);
        assert_eq!(h.len(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.target(0), 200.0);
    }

    #[test]
    #[should_panic(expected = "split point")]
    fn split_beyond_len_panics() {
        sample().split_at(4);
    }

    #[test]
    fn extend_from_requires_same_schema() {
        let mut ds = sample();
        let other = sample();
        ds.extend_from(&other).unwrap();
        assert_eq!(ds.len(), 6);
        let different = Dataset::new(vec!["x".into(), "b".into()], "y");
        assert!(ds.extend_from(&different).is_err());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let ds = sample();
        let mut rng = StdRng::seed_from_u64(7);
        let sh = ds.shuffled(&mut rng);
        let mut a: Vec<f64> = sh.targets().to_vec();
        let mut b: Vec<f64> = ds.targets().to_vec();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn target_summary() {
        let ds = sample();
        assert!((ds.target_mean().unwrap() - 200.0).abs() < 1e-12);
        assert!(ds.target_std().unwrap() > 0.0);
        let empty = Dataset::new(vec!["a".into()], "y");
        assert_eq!(empty.target_mean(), None);
        assert_eq!(empty.target_std(), None);
    }

    #[test]
    fn iteration_matches_rows() {
        let ds = sample();
        let collected: Vec<f64> = ds.iter().map(|r| r.target()).collect();
        assert_eq!(collected, vec![100.0, 200.0, 300.0]);
        let via_into: Vec<f64> = (&ds).into_iter().map(|r| r.target()).collect();
        assert_eq!(via_into, collected);
    }
}
