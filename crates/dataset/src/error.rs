use std::fmt;

/// Error type for dataset construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// A row was pushed whose arity does not match the schema.
    ArityMismatch {
        /// Number of attributes declared in the schema.
        expected: usize,
        /// Number of values in the offending row.
        got: usize,
    },
    /// A column name was referenced that does not exist in the schema.
    UnknownColumn(String),
    /// A column index was out of range.
    ColumnOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attribute columns.
        len: usize,
    },
    /// A non-finite value (NaN or infinity) was pushed into the table.
    NonFinite {
        /// Column name where the non-finite value appeared.
        column: String,
    },
    /// Parse failure while reading CSV input.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: expected {expected} values, got {got}")
            }
            DatasetError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            DatasetError::ColumnOutOfRange { index, len } => {
                write!(f, "column index {index} out of range for {len} attributes")
            }
            DatasetError::NonFinite { column } => {
                write!(f, "non-finite value in column `{column}`")
            }
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DatasetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e = DatasetError::UnknownColumn("ttf".into());
        assert!(e.to_string().contains("ttf"));
        let e = DatasetError::ColumnOutOfRange { index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        let e = DatasetError::NonFinite { column: "mem".into() };
        assert!(e.to_string().contains("mem"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let inner = std::io::Error::other("boom");
        let e = DatasetError::from(inner);
        assert!(e.source().is_some());
    }
}
