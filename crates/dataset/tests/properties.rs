//! Property-based tests for the dataset foundation.

use aging_dataset::{io, stats, Dataset, RateTracker, SlidingWindow};
use proptest::prelude::*;

/// Finite, reasonably-sized floats that survive CSV round-trips exactly
/// enough for comparison (we compare parsed values, not strings).
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-1.0e9..1.0e9f64, Just(0.0), Just(-0.0), -1.0..1.0f64,]
}

proptest! {
    #[test]
    fn dataset_push_then_read_back(rows in prop::collection::vec((finite_f64(), finite_f64(), finite_f64()), 1..50)) {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
        for (a, b, y) in &rows {
            ds.push_row(vec![*a, *b], *y).unwrap();
        }
        prop_assert_eq!(ds.len(), rows.len());
        for (i, (a, b, y)) in rows.iter().enumerate() {
            prop_assert_eq!(ds.row(i).values(), &[*a, *b]);
            prop_assert_eq!(ds.target(i), *y);
        }
    }

    #[test]
    fn csv_round_trip_preserves_dataset(rows in prop::collection::vec((finite_f64(), finite_f64()), 1..40)) {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for (x, y) in &rows {
            ds.push_row(vec![*x], *y).unwrap();
        }
        let mut buf = Vec::new();
        io::write_csv(&ds, &mut buf).unwrap();
        let back = io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert!((back.value(i, 0) - ds.value(i, 0)).abs() < 1e-9_f64.max(ds.value(i, 0).abs() * 1e-12));
            prop_assert!((back.target(i) - ds.target(i)).abs() < 1e-9_f64.max(ds.target(i).abs() * 1e-12));
        }
    }

    #[test]
    fn select_columns_preserves_rows_and_targets(
        rows in prop::collection::vec((finite_f64(), finite_f64(), finite_f64()), 1..30)
    ) {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into()], "y");
        for (a, b, c) in &rows {
            ds.push_row(vec![*a, *b, *c], a + b).unwrap();
        }
        let proj = ds.select_columns(&["c", "a"]).unwrap();
        prop_assert_eq!(proj.len(), ds.len());
        prop_assert_eq!(proj.targets(), ds.targets());
        for i in 0..ds.len() {
            prop_assert_eq!(proj.value(i, 0), ds.value(i, 2));
            prop_assert_eq!(proj.value(i, 1), ds.value(i, 0));
        }
    }

    #[test]
    fn sliding_window_mean_matches_naive(values in prop::collection::vec(-1.0e6..1.0e6f64, 1..100), cap in 1usize..20) {
        let mut w = SlidingWindow::new(cap);
        for (i, &v) in values.iter().enumerate() {
            w.push(v);
            let start = (i + 1).saturating_sub(cap);
            let tail = &values[start..=i];
            let naive = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((w.mean() - naive).abs() < 1e-6, "at {i}: {} vs {naive}", w.mean());
            prop_assert!(w.len() <= cap);
        }
    }

    #[test]
    fn running_stats_match_batch(values in prop::collection::vec(-1.0e6..1.0e6f64, 2..200)) {
        let mut r = stats::Running::new();
        for &v in &values {
            r.push(v);
        }
        prop_assert!((r.mean() - stats::mean(&values)).abs() < 1e-4);
        prop_assert!((r.variance() - stats::variance(&values)).abs() < stats::variance(&values).max(1.0) * 1e-6);
    }

    #[test]
    fn running_merge_equals_concatenation(
        a in prop::collection::vec(-1.0e3..1.0e3f64, 0..50),
        b in prop::collection::vec(-1.0e3..1.0e3f64, 0..50),
    ) {
        let mut ra = stats::Running::new();
        a.iter().for_each(|&x| ra.push(x));
        let mut rb = stats::Running::new();
        b.iter().for_each(|&x| rb.push(x));
        let mut rc = stats::Running::new();
        a.iter().chain(&b).for_each(|&x| rc.push(x));
        ra.merge(&rb);
        prop_assert_eq!(ra.count(), rc.count());
        if ra.count() > 0 {
            prop_assert!((ra.mean() - rc.mean()).abs() < 1e-6);
            prop_assert!((ra.variance() - rc.variance()).abs() < 1e-4);
        }
    }

    #[test]
    fn correlation_is_symmetric_and_bounded(
        pairs in prop::collection::vec((-1.0e3..1.0e3f64, -1.0e3..1.0e3f64), 2..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let c1 = stats::correlation(&xs, &ys);
        let c2 = stats::correlation(&ys, &xs);
        prop_assert!((c1 - c2).abs() < 1e-9);
        prop_assert!((-1.0001..=1.0001).contains(&c1));
    }

    #[test]
    fn rate_tracker_constant_slope_is_recovered(
        slope in -100.0..100.0f64,
        start in -1.0e3..1.0e3f64,
        n in 3usize..50,
        window in 1usize..20,
    ) {
        let mut t = RateTracker::new(window);
        for i in 0..n {
            t.observe(i as f64 * 15.0, start + slope * i as f64 * 15.0);
        }
        prop_assert!((t.smoothed_speed() - slope).abs() < 1e-6_f64.max(slope.abs() * 1e-9));
    }

    #[test]
    fn quantile_is_monotone(values in prop::collection::vec(-1.0e6..1.0e6f64, 1..100)) {
        let q25 = stats::quantile(&values, 0.25).unwrap();
        let q50 = stats::quantile(&values, 0.50).unwrap();
        let q75 = stats::quantile(&values, 0.75).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn quantile_is_insensitive_to_non_finite_lacing(
        values in prop::collection::vec(-1.0e6..1.0e6f64, 1..60),
        lacing in prop::collection::vec((0usize..60, 0u8..3), 0..20),
        q in 0.0..=1.0f64,
    ) {
        // Splice NaN/±inf at arbitrary positions: every quantile must be
        // identical to the clean stream's (non-finite = missing
        // observation, the segment/drift convention).
        let mut laced = values.clone();
        for (pos, kind) in lacing {
            let poison = match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            laced.insert(pos.min(laced.len()), poison);
        }
        let clean = stats::quantile(&values, q).unwrap();
        let poisoned = stats::quantile(&laced, q).unwrap();
        prop_assert_eq!(clean.to_bits(), poisoned.to_bits());
    }
}
