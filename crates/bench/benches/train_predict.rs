//! Criterion micro-benchmarks: training and prediction cost of every
//! learner. The paper picks M5P partly for its "low training and prediction
//! costs" — these benches quantify that claim for our implementation.

use aging_bench::experiments::common::{self, BASE_SEED};
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::regtree::RegTreeLearner;
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn training_dataset() -> aging_dataset::Dataset {
    let trace = common::leak_run("bench-train", 100, 15).run(BASE_SEED + 900);
    build_dataset(&[&trace], &FeatureSet::exp42(), TTF_CAP_SECS)
}

fn bench_training(c: &mut Criterion) {
    let ds = training_dataset();
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.bench_function(format!("m5p_paper_{}rows", ds.len()), |b| {
        b.iter(|| M5pLearner::paper_default().fit(black_box(&ds)).unwrap())
    });
    group.bench_function(format!("linreg_{}rows", ds.len()), |b| {
        b.iter(|| LinRegLearner::default().fit(black_box(&ds)).unwrap())
    });
    group.bench_function(format!("regtree_{}rows", ds.len()), |b| {
        b.iter(|| RegTreeLearner::default().fit(black_box(&ds)).unwrap())
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let ds = training_dataset();
    let m5p = M5pLearner::paper_default().fit(&ds).unwrap();
    let linreg = LinRegLearner::default().fit(&ds).unwrap();
    let row: Vec<f64> = ds.row(ds.len() / 2).values().to_vec();
    let mut group = c.benchmark_group("predict");
    group.bench_function("m5p_smoothed", |b| b.iter(|| m5p.predict(black_box(&row))));
    group.bench_function("linreg", |b| b.iter(|| Regressor::predict(&linreg, black_box(&row))));
    group.finish();
}

fn bench_online_pipeline(c: &mut Criterion) {
    // Full on-line path: checkpoint -> derived variables -> M5P prediction.
    let trace = common::leak_run("bench-online", 100, 15).run(BASE_SEED + 901);
    let fs = FeatureSet::exp42();
    let ds = build_dataset(&[&trace], &fs, TTF_CAP_SECS);
    let model = M5pLearner::paper_default().fit(&ds).unwrap();
    c.bench_function("online_checkpoint_to_prediction", |b| {
        b.iter_batched(
            || aging_core::OnlineTtfPredictor::new(&model, fs.clone()),
            |mut online| {
                for s in trace.samples.iter().take(50) {
                    black_box(online.observe(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_training, bench_prediction, bench_online_pipeline);
criterion_main!(benches);
