//! One criterion benchmark per paper artefact (table/figure), at reduced
//! scale: a quarter-size heap makes every experiment crash in simulated
//! minutes so a full train-and-evaluate cycle fits in a benchmark
//! iteration. `repro` runs the full-scale versions; these benches keep
//! every experiment path exercised and timed.

use aging_bench::experiments::common::{self, BASE_SEED};
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::Learner;
use aging_monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use aging_testbed::{MemLeakSpec, PeriodicSpec, Scenario, ThreadLeakSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_leak_run(name: &str, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .config(common::small_scale_config())
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

/// Figure 1: constant leak until crash, staircase series extraction.
fn bench_fig1(c: &mut Criterion) {
    let scenario = small_leak_run("fig1-small", 100, 8);
    c.bench_function("artefact_fig1_staircase", |b| {
        b.iter(|| {
            let trace = scenario.run(BASE_SEED);
            black_box(aging_bench::experiments::figures::fig1_from_trace(&trace))
        })
    });
}

/// Figure 2: periodic pattern, OS vs JVM view extraction.
fn bench_fig2(c: &mut Criterion) {
    let spec = PeriodicSpec { acquire_n: 8, release_n: 20, phase_secs: 120, chunk_mb: 1.0 };
    let scenario = Scenario::builder("fig2-small")
        .config(common::small_scale_config())
        .emulated_browsers(100)
        .periodic_cycles_no_retention(spec, 3)
        .build();
    c.bench_function("artefact_fig2_viewpoints", |b| {
        b.iter(|| {
            let trace = scenario.run(BASE_SEED);
            black_box(aging_bench::experiments::figures::fig2_from_trace(&trace))
        })
    });
}

/// Table 3: train at two workloads, evaluate M5P vs LinReg at a third.
fn bench_table3(c: &mut Criterion) {
    let features = FeatureSet::exp41();
    let traces = [
        small_leak_run("t3-a", 50, 8).run(BASE_SEED),
        small_leak_run("t3-b", 200, 8).run(BASE_SEED + 1),
    ];
    let refs: Vec<_> = traces.iter().collect();
    let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
    let test = small_leak_run("t3-test", 100, 8).run(BASE_SEED + 2);
    let actuals = label_ttf(&test, TTF_CAP_SECS);
    let mut group = c.benchmark_group("artefact_table3");
    group.sample_size(10);
    group.bench_function("train_and_eval_both_models", |b| {
        b.iter(|| {
            let m5p = M5pLearner::paper_default().fit(&ds).unwrap();
            let lr = LinRegLearner::default().fit(&ds).unwrap();
            let e1 = aging_core::predictor::evaluate_regressor_on_trace(
                &m5p, &features, &test, &actuals,
            );
            let e2 =
                aging_core::predictor::evaluate_regressor_on_trace(&lr, &features, &test, &actuals);
            black_box((e1.mae, e2.mae))
        })
    });
    group.finish();
}

/// Figure 3 / Exp 4.2: dynamic rates with frozen-rate ground truth.
fn bench_exp42(c: &mut Criterion) {
    let train = small_leak_run("e42-train", 100, 8).run(BASE_SEED + 3);
    let features = FeatureSet::exp42();
    let predictor = aging_core::AgingPredictor::train_on_traces(
        &M5pLearner::paper_default(),
        &[&train],
        features,
    )
    .unwrap();
    let test = Scenario::builder("e42-test")
        .config(common::small_scale_config())
        .emulated_browsers(100)
        .idle_phase_minutes(2)
        .leak_phase_minutes(2, MemLeakSpec::new(16), None)
        .final_leak_phase(MemLeakSpec::new(8), None)
        .build();
    let mut group = c.benchmark_group("artefact_fig3_exp42");
    group.sample_size(10);
    group.bench_function("frozen_truth_evaluation", |b| {
        b.iter(|| {
            black_box(
                predictor.evaluate_scenario_frozen_truth(&test, BASE_SEED + 4).unwrap().evaluation,
            )
        })
    });
    group.finish();
}

/// Table 4 / Figure 4 / Exp 4.3: masked aging with feature selection.
fn bench_exp43(c: &mut Criterion) {
    let train = small_leak_run("e43-train", 100, 8).run(BASE_SEED + 5);
    let refs = [&train];
    let spec = PeriodicSpec { acquire_n: 8, release_n: 20, phase_secs: 120, chunk_mb: 1.0 };
    let test = Scenario::builder("e43-test")
        .config(common::small_scale_config())
        .emulated_browsers(100)
        .periodic_cycles(spec, 30)
        .run_to_crash()
        .build()
        .run(BASE_SEED + 6);
    let actuals = label_ttf(&test, TTF_CAP_SECS);
    let mut group = c.benchmark_group("artefact_table4_fig4_exp43");
    group.sample_size(10);
    group.bench_function("feature_selection_comparison", |b| {
        b.iter(|| {
            let mut maes = Vec::new();
            for features in [FeatureSet::exp43_full(), FeatureSet::exp43_heap()] {
                let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
                let m5p = M5pLearner::paper_default().fit(&ds).unwrap();
                maes.push(
                    aging_core::predictor::evaluate_regressor_on_trace(
                        &m5p, &features, &test, &actuals,
                    )
                    .mae,
                );
            }
            black_box(maes)
        })
    });
    group.finish();
}

/// Figure 5 / Exp 4.4: two-resource aging and root cause.
fn bench_exp44(c: &mut Criterion) {
    let cfg = common::small_scale_config();
    let mem_train = small_leak_run("e44-mem", 100, 8).run(BASE_SEED + 7);
    let thr_train = Scenario::builder("e44-thr")
        .config(cfg)
        .emulated_browsers(100)
        .thread_leak(ThreadLeakSpec::new(45, 30))
        .run_to_crash()
        .build()
        .run(BASE_SEED + 8);
    let features = FeatureSet::exp44();
    let test = Scenario::builder("e44-test")
        .config(cfg)
        .emulated_browsers(100)
        .phase(
            aging_testbed::Phase::leak("both", None, MemLeakSpec::new(12))
                .with_threads(ThreadLeakSpec::new(30, 40)),
        )
        .run_to_crash()
        .build()
        .run(BASE_SEED + 9);
    let actuals = label_ttf(&test, TTF_CAP_SECS);
    let mut group = c.benchmark_group("artefact_fig5_exp44");
    group.sample_size(10);
    group.bench_function("two_resource_train_eval_rootcause", |b| {
        b.iter(|| {
            let ds = build_dataset(&[&mem_train, &thr_train], &features, TTF_CAP_SECS);
            let m5p = M5pLearner::paper_default().fit(&ds).unwrap();
            let eval = aging_core::predictor::evaluate_regressor_on_trace(
                &m5p, &features, &test, &actuals,
            );
            let rc = aging_core::RootCauseReport::from_model(&m5p);
            black_box((eval.mae, rc.suspected.len()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_table3,
    bench_exp42,
    bench_exp43,
    bench_exp44
);
criterion_main!(benches);
