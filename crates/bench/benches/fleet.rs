//! Fleet-engine benchmarks: batched inference against per-sample
//! prediction at fleet-representative matrix sizes (one row per live
//! instance in a shard epoch), end-to-end fleet throughput by instance
//! count, and the telemetry overhead gate.
//!
//! The batched path must win at 100+ instances — that is the point of
//! `Regressor::predict_batch` (M5P amortises its smoothing-path buffer
//! across rows; per-sample prediction reallocates it every call).
//!
//! The `fleet_telemetry_overhead` group is the ISSUE 6 acceptance gate,
//! extended to a 2×2 over metrics × tracing: the same fleet run with a
//! live registry and/or a live flight recorder attached must stay within
//! ~2% checkpoints/sec of the uninstrumented run — the instruments record
//! one clock read per phase per epoch, never per checkpoint row, and a
//! frozen run's tracer emits one ring write per epoch (the leader mark).

use aging_core::{AgingPredictor, RejuvenationConfig, RejuvenationPolicy};
use aging_fleet::{Fleet, FleetConfig};
use aging_ml::{FeatureMatrix, Regressor};
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_obs::{FlightRecorder, Registry};
use aging_testbed::{MemLeakSpec, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const BASE_SEED: u64 = 42;

fn leaky_scenario() -> Scenario {
    Scenario::builder("bench-leak")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build()
}

fn trained_predictor() -> AgingPredictor {
    AgingPredictor::train(&[leaky_scenario()], FeatureSet::exp42(), BASE_SEED).unwrap()
}

/// Feature rows shaped exactly like a shard's per-epoch matrix, cycled out
/// of a real monitored execution.
fn feature_matrix(rows: usize) -> Vec<Vec<f64>> {
    let trace = leaky_scenario().run(BASE_SEED + 1);
    let ds = build_dataset(&[&trace], &FeatureSet::exp42(), TTF_CAP_SECS);
    (0..rows).map(|i| ds.row(i % ds.len()).values().to_vec()).collect()
}

fn bench_batched_vs_per_sample(c: &mut Criterion) {
    let predictor = trained_predictor();
    let model: &dyn Regressor = predictor.model();
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    for rows in [10usize, 100, 1000] {
        let matrix = feature_matrix(rows);
        group.bench_function(format!("per_sample_{rows}rows"), |b| {
            b.iter(|| {
                let preds: Vec<f64> =
                    matrix.iter().map(|row| model.predict(black_box(row))).collect();
                black_box(preds)
            })
        });
        group.bench_function(format!("predict_batch_{rows}rows"), |b| {
            b.iter(|| black_box(model.predict_batch(black_box(&matrix))))
        });
        // The flat row-major path the shard hot loop actually uses: same
        // rows, one contiguous buffer, no per-row Vec.
        let mut flat = FeatureMatrix::with_capacity(matrix[0].len(), rows);
        for row in &matrix {
            flat.push_row(row);
        }
        group.bench_function(format!("predict_matrix_{rows}rows"), |b| {
            b.iter(|| black_box(model.predict_matrix(black_box(&flat))))
        });
    }
    group.finish();
}

fn bench_fleet_throughput(c: &mut Criterion) {
    let predictor = trained_predictor();
    let scenario = leaky_scenario();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let mut group = c.benchmark_group("fleet_checkpoints_per_sec");
    group.sample_size(10);
    for instances in [10usize, 100] {
        group.bench_function(format!("{instances}instances_4shards_30min"), |b| {
            b.iter(|| {
                let config = FleetConfig {
                    shards: 4,
                    rejuvenation: RejuvenationConfig { horizon_secs: 1800.0, ..Default::default() },
                    // The counterfactual fork is a diagnostic, not part of
                    // the hot path being measured.
                    counterfactual_horizon_secs: 0.0,
                };
                let fleet = Fleet::uniform(&scenario, policy, instances, 7_000, config).unwrap();
                black_box(fleet.run_with_predictor(&predictor))
            })
        });
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let predictor = trained_predictor();
    let scenario = leaky_scenario();
    let policy = RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 };
    let config = FleetConfig {
        shards: 4,
        rejuvenation: RejuvenationConfig { horizon_secs: 1800.0, ..Default::default() },
        counterfactual_horizon_secs: 0.0,
    };
    let mut group = c.benchmark_group("fleet_telemetry_overhead");
    group.sample_size(10);
    // Baseline: disabled handles — the no-op `Recorder` / `TraceHandle`
    // defaults — so the hot loop pays one untaken branch per phase and
    // zero clock reads.
    group.bench_function("noop_recorder_100instances", |b| {
        b.iter(|| {
            let fleet = Fleet::uniform(&scenario, policy, 100, 7_000, config).unwrap();
            black_box(fleet.run_with_predictor(&predictor))
        })
    });
    // Instrumented: a fresh live registry per iteration (matching what
    // `--metrics` attaches), phase spans and barrier waits recording.
    group.bench_function("live_registry_100instances", |b| {
        b.iter(|| {
            let fleet = Fleet::uniform(&scenario, policy, 100, 7_000, config)
                .unwrap()
                .with_telemetry(Registry::shared());
            black_box(fleet.run_with_predictor(&predictor))
        })
    });
    // Traced: a fresh live flight recorder per iteration (matching what
    // `--trace` attaches) — one ring write per epoch on a frozen run.
    group.bench_function("live_trace_100instances", |b| {
        b.iter(|| {
            let fleet = Fleet::uniform(&scenario, policy, 100, 7_000, config)
                .unwrap()
                .with_trace(FlightRecorder::shared());
            black_box(fleet.run_with_predictor(&predictor))
        })
    });
    // Both instruments live at once — the configuration CI's smoke runs
    // exercise with `--metrics --trace`.
    group.bench_function("live_registry_and_trace_100instances", |b| {
        b.iter(|| {
            let fleet = Fleet::uniform(&scenario, policy, 100, 7_000, config)
                .unwrap()
                .with_telemetry(Registry::shared())
                .with_trace(FlightRecorder::shared());
            black_box(fleet.run_with_predictor(&predictor))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batched_vs_per_sample,
    bench_fleet_throughput,
    bench_telemetry_overhead
);
criterion_main!(benches);
