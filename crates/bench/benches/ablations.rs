//! Criterion ablation benchmarks for the design knobs DESIGN.md calls out:
//! M5P leaf size, smoothing, pruning, and the sliding-window length of the
//! derived variables.

use aging_bench::experiments::common::{self, BASE_SEED};
use aging_ml::m5p::M5pLearner;
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, FeatureExtractor, FeatureSet, TTF_CAP_SECS};
use aging_testbed::{MemLeakSpec, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn training_trace() -> aging_testbed::RunTrace {
    Scenario::builder("abl-train")
        .config(common::small_scale_config())
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(8))
        .run_to_crash()
        .build()
        .run(BASE_SEED + 20)
}

fn bench_leaf_size(c: &mut Criterion) {
    let trace = training_trace();
    let ds = build_dataset(&[&trace], &FeatureSet::exp42(), TTF_CAP_SECS);
    let mut group = c.benchmark_group("ablation_m5p_leaf_size");
    group.sample_size(10);
    for m in [4usize, 10, 50] {
        group.bench_function(format!("min_instances_{m}"), |b| {
            b.iter(|| {
                black_box(M5pLearner::default().with_min_instances(m).fit(&ds).unwrap().n_leaves())
            })
        });
    }
    group.finish();
}

fn bench_smoothing_pruning(c: &mut Criterion) {
    let trace = training_trace();
    let ds = build_dataset(&[&trace], &FeatureSet::exp42(), TTF_CAP_SECS);
    let smoothed = M5pLearner::paper_default().with_smoothing(true).fit(&ds).unwrap();
    let raw = M5pLearner::paper_default().with_smoothing(false).fit(&ds).unwrap();
    let row: Vec<f64> = ds.row(ds.len() / 2).values().to_vec();
    let mut group = c.benchmark_group("ablation_m5p_smoothing");
    group.bench_function("predict_smoothed", |b| b.iter(|| smoothed.predict(black_box(&row))));
    group.bench_function("predict_unsmoothed", |b| b.iter(|| raw.predict(black_box(&row))));
    group.finish();

    let mut group = c.benchmark_group("ablation_m5p_pruning");
    group.sample_size(10);
    group.bench_function("train_pruned", |b| {
        b.iter(|| black_box(M5pLearner::paper_default().with_pruning(true).fit(&ds).unwrap()))
    });
    group.bench_function("train_unpruned", |b| {
        b.iter(|| black_box(M5pLearner::paper_default().with_pruning(false).fit(&ds).unwrap()))
    });
    group.finish();
}

fn bench_window_length(c: &mut Criterion) {
    let trace = training_trace();
    let mut group = c.benchmark_group("ablation_window_length");
    for window in [4usize, 12, 48] {
        group.bench_function(format!("extract_X{window}"), |b| {
            b.iter(|| {
                let mut fx = FeatureExtractor::new(window);
                for s in &trace.samples {
                    black_box(fx.push(s));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leaf_size, bench_smoothing_pruning, bench_window_length);
criterion_main!(benches);
