//! Criterion benchmarks of the testbed simulator itself: raw event-loop
//! throughput, checkpoint stepping, and the frozen-rate ground-truth fork
//! (the expensive primitive behind Experiments 4.2 and 4.4).

use aging_bench::experiments::common::BASE_SEED;
use aging_testbed::{MemLeakSpec, Scenario, Simulator, StepOutcome};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ten_minute_scenario(ebs: u64) -> Scenario {
    Scenario::builder(format!("bench-{ebs}eb")).emulated_browsers(ebs).duration_minutes(10).build()
}

fn bench_run_to_completion(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_10min");
    group.sample_size(10);
    for ebs in [25u64, 100, 200] {
        let scenario = ten_minute_scenario(ebs);
        group.bench_function(format!("{ebs}eb"), |b| b.iter(|| black_box(scenario.run(BASE_SEED))));
    }
    group.finish();
}

fn bench_checkpoint_step(c: &mut Criterion) {
    let scenario = Scenario::builder("bench-step")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(30))
        .run_to_crash()
        .build();
    c.bench_function("step_one_checkpoint", |b| {
        let mut sim = Simulator::new(&scenario, BASE_SEED);
        b.iter(|| match sim.step() {
            StepOutcome::Checkpoint(s) => black_box(s.time_secs),
            // Restart when the run ends mid-measurement.
            _ => {
                sim = Simulator::new(&scenario, BASE_SEED);
                0.0
            }
        })
    });
}

fn bench_frozen_fork(c: &mut Criterion) {
    let scenario = Scenario::builder("bench-fork")
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(15))
        .run_to_crash()
        .build();
    // Advance ~10 minutes in, then measure the fork cost.
    let mut sim = Simulator::new(&scenario, BASE_SEED);
    let mut t = 0.0;
    while t < 600.0 {
        match sim.step() {
            StepOutcome::Checkpoint(s) => t = s.time_secs,
            _ => break,
        }
    }
    let mut group = c.benchmark_group("frozen_ground_truth");
    group.sample_size(10);
    group.bench_function("fork_until_crash", |b| {
        b.iter(|| black_box(sim.frozen_time_to_crash(10_800.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_run_to_completion, bench_checkpoint_step, bench_frozen_fork);
criterion_main!(benches);
