//! Benchmark and reproduction harness.
//!
//! Each module under [`experiments`] regenerates one table or figure of the
//! paper; the `repro` binary dispatches to them, and the criterion benches
//! measure training/prediction/simulation cost plus the ablations called
//! out in `DESIGN.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::common;
