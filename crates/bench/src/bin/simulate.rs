//! `simulate` — run a testbed scenario from a JSON description and write
//! the monitoring trace.
//!
//! This is the adoption-oriented entry point: downstream users can describe
//! their own aging scenarios declaratively and feed the traces to any
//! analysis stack.
//!
//! ```text
//! # print a template scenario
//! simulate template > scenario.json
//!
//! # run it (seed optional, defaults to 0) and write trace JSON + CSV
//! simulate run scenario.json --seed 7 --out trace
//! #   -> trace.json (full RunTrace)  trace.csv (one row per checkpoint)
//! ```

use aging_testbed::{MemLeakSpec, RunTrace, Scenario, ThreadLeakSpec};
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("template") => {
            println!("{}", template_json());
            ExitCode::SUCCESS
        }
        Some("run") => match run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: simulate template | simulate run <scenario.json> [--seed N] [--out PREFIX]"
            );
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing scenario file")?;
    let mut seed = 0u64;
    let mut out_prefix = "trace".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).ok_or("--seed needs a value")?.parse()?;
                i += 2;
            }
            "--out" => {
                out_prefix = args.get(i + 1).ok_or("--out needs a value")?.clone();
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`").into()),
        }
    }

    let text = fs::read_to_string(path)?;
    let scenario: Scenario = serde_json::from_str(&text)?;
    let problems = scenario.config.validate();
    if !problems.is_empty() {
        return Err(format!("invalid configuration: {problems:?}").into());
    }

    eprintln!(
        "running `{}` ({} phases, {} EBs, seed {seed}) …",
        scenario.name,
        scenario.phases.len(),
        scenario.config.workload.emulated_browsers
    );
    let trace = scenario.run(seed);

    let json_path = format!("{out_prefix}.json");
    fs::write(&json_path, serde_json::to_string_pretty(&trace)?)?;
    let csv_path = format!("{out_prefix}.csv");
    fs::write(&csv_path, trace_csv(&trace))?;

    match trace.crash {
        Some(crash) => eprintln!(
            "crashed after {:.0} s ({:?}); {} checkpoints -> {json_path}, {csv_path}",
            crash.time_secs,
            crash.kind,
            trace.samples.len()
        ),
        None => eprintln!(
            "completed without crash after {:.0} s; {} checkpoints -> {json_path}, {csv_path}",
            trace.duration_secs,
            trace.samples.len()
        ),
    }
    Ok(())
}

/// Renders a RunTrace as CSV, one checkpoint per row.
fn trace_csv(trace: &RunTrace) -> String {
    let mut out = String::from(
        "time_secs,throughput_rps,workload_ebs,response_time_ms,system_load,disk_used_mb,\
         swap_free_mb,num_processes,system_mem_used_mb,tomcat_mem_mb,num_threads,\
         http_connections,mysql_connections,young_max_mb,old_max_mb,young_used_mb,\
         old_used_mb,heap_used_mb,gc_minor,gc_major,old_resizes,refused\n",
    );
    for s in &trace.samples {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            s.time_secs,
            s.throughput_rps,
            s.workload_ebs,
            s.response_time_ms,
            s.system_load,
            s.disk_used_mb,
            s.swap_free_mb,
            s.num_processes,
            s.system_mem_used_mb,
            s.tomcat_mem_mb,
            s.num_threads,
            s.http_connections,
            s.mysql_connections,
            s.young_max_mb,
            s.old_max_mb,
            s.young_used_mb,
            s.old_used_mb,
            s.heap_used_mb,
            s.gc_minor,
            s.gc_major,
            s.old_resizes,
            s.refused,
        ));
    }
    out
}

/// A ready-to-edit scenario: the paper's Experiment 4.2 shape.
fn template_json() -> String {
    let scenario = Scenario::builder("my-dynamic-aging")
        .emulated_browsers(100)
        .idle_phase_minutes(20)
        .leak_phase_minutes(20, MemLeakSpec::new(30), None)
        .leak_phase_minutes(20, MemLeakSpec::new(15), Some(ThreadLeakSpec::new(30, 90)))
        .final_leak_phase(MemLeakSpec::new(75), None)
        .build();
    serde_json::to_string_pretty(&scenario).expect("scenario serializes")
}
