//! Validates `TRACE_*.json` flight-recorder artifacts: each file must be
//! valid Chrome trace-event JSON (the object form with a `traceEvents`
//! array), every non-metadata entry must carry the event envelope
//! (`ph`/`ts`/`pid`/`tid`/`name` and `args.seq`), sequence numbers must be
//! strictly monotone in file order, and every non-root `args.parent` must
//! resolve to an already-seen seq — unless the ring overflowed
//! (`droppedEvents > 0`), in which case a parent may be gone but must
//! still point strictly backwards.
//!
//! ```text
//! cargo run --release -p aging-bench --bin check_trace -- TRACE_*.json
//! ```
//!
//! Exits non-zero on the first malformed file; CI runs it over every
//! trace the example smoke runs emit.

use serde::Value;
use std::collections::HashSet;
use std::process::ExitCode;

fn field<'a>(entry: &'a Value, name: &str) -> Option<&'a Value> {
    entry.as_obj()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn u64_field(entry: &Value, name: &str) -> Option<u64> {
    match field(entry, name) {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    }
}

/// Checks one artifact; returns a short summary line on success.
fn check(text: &str) -> Result<String, String> {
    let root = serde::parse_value(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let entries = match field(&root, "traceEvents") {
        Some(Value::Arr(entries)) => entries,
        Some(other) => return Err(format!("traceEvents must be an array, got {}", other.kind())),
        None => return Err("missing traceEvents array".into()),
    };
    let dropped = u64_field(&root, "droppedEvents").ok_or("missing droppedEvents count")?;

    let mut seen: HashSet<u64> = HashSet::new();
    let mut last_seq: Option<u64> = None;
    let mut events = 0u64;
    let mut durations = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        let ph = match field(entry, "ph") {
            Some(Value::Str(ph)) => ph.as_str(),
            _ => return Err(format!("entry {i}: missing ph")),
        };
        for required in ["name", "pid"] {
            if field(entry, required).is_none() {
                return Err(format!("entry {i}: missing {required}"));
            }
        }
        if ph == "M" {
            // Metadata entries (process/thread names) carry no event
            // envelope beyond name/pid.
            continue;
        }
        for required in ["ts", "tid", "args"] {
            if field(entry, required).is_none() {
                return Err(format!("entry {i}: missing {required}"));
            }
        }
        let args = field(entry, "args").expect("checked above");
        let Some(seq) = u64_field(args, "seq") else {
            return Err(format!("entry {i}: missing args.seq"));
        };
        if last_seq.is_some_and(|last| seq <= last) {
            return Err(format!(
                "entry {i}: seq {seq} not strictly after {}",
                last_seq.expect("checked")
            ));
        }
        match field(args, "parent") {
            None | Some(Value::Null) => {}
            Some(Value::U64(parent)) => {
                if !seen.contains(parent) && dropped == 0 {
                    return Err(format!("entry {i}: seq {seq} parents on unseen {parent}"));
                }
                if *parent >= seq {
                    return Err(format!("entry {i}: seq {seq} parents forwards on {parent}"));
                }
            }
            Some(other) => {
                return Err(format!("entry {i}: args.parent must be a seq, got {}", other.kind()))
            }
        }
        seen.insert(seq);
        last_seq = Some(seq);
        events += 1;
        if ph == "X" {
            durations += 1;
        }
    }
    Ok(format!("{events} events ({durations} duration spans), {dropped} dropped"))
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: check_trace TRACE_*.json …");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| check(&t)) {
            Ok(summary) => println!("{path}: OK — {summary}"),
            Err(e) => {
                eprintln!("{path}: FAILED — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    fn wrap(entries: &str, dropped: u64) -> String {
        format!("{{\"traceEvents\":[{entries}],\"droppedEvents\":{dropped}}}")
    }

    fn instant(seq: u64, parent: Option<u64>) -> String {
        let parent = parent.map_or("null".to_string(), |p| p.to_string());
        format!(
            "{{\"name\":\"DriftObserved\",\"cat\":\"adapt\",\"ph\":\"i\",\"ts\":1.0,\
             \"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{{\"seq\":{seq},\"parent\":{parent}}}}}"
        )
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let text = wrap(&format!("{},{}", instant(0, None), instant(1, Some(0))), 0);
        assert!(check(&text).is_ok(), "{:?}", check(&text));
    }

    #[test]
    fn rejects_out_of_order_seqs() {
        let text = wrap(&format!("{},{}", instant(1, None), instant(0, None)), 0);
        assert!(check(&text).unwrap_err().contains("not strictly after"));
    }

    #[test]
    fn rejects_unresolved_parents_when_nothing_was_dropped() {
        let text = wrap(&instant(5, Some(3)), 0);
        assert!(check(&text).unwrap_err().contains("unseen"));
    }

    #[test]
    fn tolerates_missing_parents_after_ring_overflow() {
        let text = wrap(&instant(5, Some(3)), 2);
        assert!(check(&text).is_ok());
    }

    #[test]
    fn rejects_forward_parents_even_after_overflow() {
        let text = wrap(&instant(5, Some(9)), 2);
        assert!(check(&text).unwrap_err().contains("forwards"));
    }

    #[test]
    fn rejects_non_json_and_missing_wrapper() {
        assert!(check("not json").is_err());
        assert!(check("{\"events\":[]}").is_err());
    }

    #[test]
    fn metadata_entries_are_exempt_from_the_event_envelope() {
        let meta = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\
                    \"args\":{\"name\":\"software-aging\"}}";
        let text = wrap(&format!("{meta},{}", instant(0, None)), 0);
        assert!(check(&text).is_ok(), "{:?}", check(&text));
    }
}
