//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p aging-bench --release --bin repro -- <target>
//!
//! targets:
//!   fig1        Figure 1: non-linear memory behaviour, GC-resize staircase
//!   fig2        Figure 2: OS vs JVM viewpoints on the same resource
//!   table3      Experiment 4.1 / Table 3: deterministic aging
//!   exp42       Experiment 4.2 / Figure 3: dynamic aging
//!   exp43       Experiment 4.3 / Table 4 + Figure 4: masked aging
//!   exp44       Experiment 4.4 / Figure 5 + root cause: two resources
//!   rootcause   Just the root-cause analysis of the Exp 4.4 model
//!   rejuvenation  Extension: rejuvenation policy comparison
//!   baselines   Extension: regression tree / naive / ARMA / board zoo
//!   ablations   Extension: window, leaf size, smoothing, margin sweeps
//!   sophisticated Extension: bagging / boosting / kNN trade-off study
//!   segmentation  Extension: piecewise-LR drift detection (rel. work \[15\])
//!   mixes       Extension: TPC-W Browsing/Shopping/Ordering sensitivity
//!   datasets    Export every experiment dataset in WEKA-ARFF format
//!   catalog     Print the Table 2 variable catalogue and feature sets
//!   all         Everything above, in order
//! ```

use aging_bench::experiments::{
    ablations, common, datasets, exp41, exp42, exp43, exp44, extensions, figures, mixes,
    segmentation, sophisticated,
};
use std::time::Instant;

fn main() {
    let target = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let started = Instant::now();
    match target.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "table3" | "exp41" => run_exp41(),
        "exp42" | "fig3" => run_exp42(),
        "exp43" | "table4" | "fig4" => run_exp43(),
        "exp44" | "fig5" => run_exp44(),
        "rootcause" => run_rootcause(),
        "rejuvenation" => run_rejuvenation(),
        "baselines" => run_baselines(),
        "ablations" => run_ablations(),
        "catalog" => run_catalog(),
        "sophisticated" | "ensembles" => run_sophisticated(),
        "mixes" => run_mixes(),
        "segmentation" | "drift" => run_segmentation(),
        "datasets" | "arff" => run_datasets(),
        "all" => {
            run_fig1();
            run_fig2();
            run_exp41();
            run_exp42();
            run_exp43();
            run_exp44();
            run_rejuvenation();
            run_baselines();
            run_ablations();
            run_sophisticated();
            run_mixes();
            run_segmentation();
            run_datasets();
            run_catalog();
        }
        other => {
            eprintln!("unknown target `{other}`; see the module docs for the list");
            std::process::exit(2);
        }
    }
    eprintln!("\n[{}s elapsed]", started.elapsed().as_secs());
}

fn banner(name: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{name}");
    println!("{}", "=".repeat(78));
}

fn run_fig1() {
    banner("Figure 1");
    println!("{}", figures::render_fig1(&figures::fig1()));
}

fn run_fig2() {
    banner("Figure 2");
    println!("{}", figures::render_fig2(&figures::fig2()));
}

fn run_exp41() {
    banner("Experiment 4.1 / Table 3");
    println!("{}", exp41::render(&exp41::run()));
}

fn run_exp42() {
    banner("Experiment 4.2 / Figure 3");
    println!("{}", exp42::render(&exp42::run()));
}

fn run_exp43() {
    banner("Experiment 4.3 / Table 4 + Figure 4");
    println!("{}", exp43::render(&exp43::run()));
}

fn run_exp44() {
    banner("Experiment 4.4 / Figure 5 + root cause");
    println!("{}", exp44::render(&exp44::run()));
}

fn run_rootcause() {
    banner("Root cause (Section 4.4)");
    let r = exp44::run();
    println!("{}", r.root_cause.summary());
    println!("First two levels of the learned tree:\n{}", r.tree_top);
}

fn run_rejuvenation() {
    banner("Extension: rejuvenation policies");
    println!("{}", extensions::render_rejuvenation(&extensions::rejuvenation()));
}

fn run_baselines() {
    banner("Extension: baseline zoo");
    println!("{}", extensions::render_baselines(&extensions::baselines()));
}

fn run_ablations() {
    banner("Extension: ablations");
    println!("{}", ablations::render_all());
}

fn run_sophisticated() {
    banner("Extension: sophisticated learners (bagging/boosting/kNN)");
    println!("{}", sophisticated::render(&sophisticated::run()));
}

fn run_mixes() {
    banner("Extension: TPC-W mix sensitivity");
    println!("{}", mixes::render(&mixes::run()));
}

fn run_segmentation() {
    banner("Extension: piecewise-LR drift detection");
    println!("{}", segmentation::render(&segmentation::run()));
}

fn run_datasets() {
    banner("WEKA-ARFF dataset export");
    match datasets::run() {
        Ok(files) => println!("{}", datasets::render(&files)),
        Err(e) => eprintln!("dataset export failed: {e}"),
    }
}

fn run_catalog() {
    banner("Table 2: variable catalogue & per-experiment feature sets");
    use aging_monitor::FeatureSet;
    println!("full catalogue ({} variables):", aging_monitor::catalog::ALL_VARIABLES.len());
    for chunk in aging_monitor::catalog::ALL_VARIABLES.chunks(4) {
        println!("  {}", chunk.join(", "));
    }
    println!();
    for fs in [
        FeatureSet::exp41(),
        FeatureSet::exp42(),
        FeatureSet::exp43_full(),
        FeatureSet::exp43_heap(),
        FeatureSet::exp44(),
    ] {
        println!("{:<22} {:>2} variables, window X={}", fs.name(), fs.len(), fs.window());
    }
    println!("\nbase seed for all experiments: {}", common::BASE_SEED);
}
