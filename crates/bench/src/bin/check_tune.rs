//! Validates `TUNE_*.json` policy-search artifacts: the per-class
//! candidate trail must show a monotone non-increasing incumbent-best
//! objective (the search never forgets its best), and every recorded
//! promotion must clear the configured promotion margin — a candidate
//! objective strictly below `incumbent × (1 − min_improvement)`. A class
//! flagged `promoted` must itself beat its starting incumbent by that
//! margin.
//!
//! ```text
//! cargo run --release -p aging-bench --bin check_tune -- TUNE_*.json
//! ```
//!
//! Exits non-zero on the first malformed file; CI runs it over the
//! artifact the `tuned_fleet` example smoke leaves behind.

use serde::Value;
use std::process::ExitCode;

fn field<'a>(entry: &'a Value, name: &str) -> Option<&'a Value> {
    entry.as_obj()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Numeric field as `f64`; `null` (an unscoreable objective) maps to
/// `None`, a missing field is the caller's problem.
fn f64_field(entry: &Value, name: &str) -> Result<Option<f64>, String> {
    match field(entry, name) {
        Some(Value::F64(x)) => Ok(Some(*x)),
        Some(Value::U64(n)) => Ok(Some(*n as f64)),
        Some(Value::I64(n)) => Ok(Some(*n as f64)),
        Some(Value::Null) => Ok(None),
        Some(other) => Err(format!("{name} must be a number or null, got {}", other.kind())),
        None => Err(format!("missing {name}")),
    }
}

fn bool_field(entry: &Value, name: &str) -> Result<bool, String> {
    match field(entry, name) {
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("{name} must be a bool, got {}", other.kind())),
        None => Err(format!("missing {name}")),
    }
}

/// `None` objectives are unscoreable — order them as `+∞`.
fn as_objective(value: Option<f64>) -> f64 {
    value.unwrap_or(f64::INFINITY)
}

/// The promotion-gate predicate, NaN-hostile: a candidate clears the
/// margin only if it is *strictly* below the discounted incumbent.
fn clears_margin(candidate: f64, incumbent: f64, min_improvement: f64) -> bool {
    candidate < incumbent * (1.0 - min_improvement)
}

/// Checks one class's candidate trail and promotion records.
fn check_class(class: &Value, min_improvement: f64) -> Result<(u64, u64), String> {
    let name = match field(class, "class") {
        Some(Value::Str(name)) => name.clone(),
        _ => return Err("class entry missing class name".into()),
    };
    let Some(Value::Arr(candidates)) = field(class, "candidates") else {
        return Err(format!("class {name}: missing candidates array"));
    };
    let mut best = f64::INFINITY;
    for (i, candidate) in candidates.iter().enumerate() {
        let recorded = as_objective(
            f64_field(candidate, "best_objective_secs")
                .map_err(|e| format!("class {name} candidate {i}: {e}"))?,
        );
        if recorded > best {
            return Err(format!(
                "class {name} candidate {i}: best objective rose {best} → {recorded} \
                 (must be monotone non-increasing)"
            ));
        }
        best = recorded;
    }
    let Some(Value::Arr(promotions)) = field(class, "promotions") else {
        return Err(format!("class {name}: missing promotions array"));
    };
    for (i, promotion) in promotions.iter().enumerate() {
        let incumbent = as_objective(
            f64_field(promotion, "incumbent_objective_secs")
                .map_err(|e| format!("class {name} promotion {i}: {e}"))?,
        );
        let candidate = as_objective(
            f64_field(promotion, "candidate_objective_secs")
                .map_err(|e| format!("class {name} promotion {i}: {e}"))?,
        );
        if !candidate.is_finite() {
            return Err(format!("class {name} promotion {i}: candidate objective not finite"));
        }
        if !clears_margin(candidate, incumbent, min_improvement) {
            return Err(format!(
                "class {name} promotion {i}: candidate {candidate} does not beat \
                 incumbent {incumbent} by the {min_improvement} margin"
            ));
        }
    }
    if bool_field(class, "promoted").map_err(|e| format!("class {name}: {e}"))? {
        let incumbent = as_objective(
            f64_field(class, "incumbent_objective_secs")
                .map_err(|e| format!("class {name}: {e}"))?,
        );
        let class_best = as_objective(
            f64_field(class, "best_objective_secs").map_err(|e| format!("class {name}: {e}"))?,
        );
        if !clears_margin(class_best, incumbent, min_improvement) {
            return Err(format!(
                "class {name}: flagged promoted but best {class_best} does not beat \
                 incumbent {incumbent} by the {min_improvement} margin"
            ));
        }
    }
    Ok((candidates.len() as u64, promotions.len() as u64))
}

/// Checks one artifact; returns a short summary line on success.
fn check(text: &str) -> Result<String, String> {
    let root = serde::parse_value(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let min_improvement =
        f64_field(&root, "min_improvement")?.ok_or("min_improvement must not be null")?;
    if !(0.0..1.0).contains(&min_improvement) {
        return Err(format!("min_improvement {min_improvement} outside [0, 1)"));
    }
    let classes = match field(&root, "classes") {
        Some(Value::Arr(classes)) if !classes.is_empty() => classes,
        Some(Value::Arr(_)) => return Err("classes array is empty".into()),
        _ => return Err("missing classes array".into()),
    };
    let mut candidates = 0u64;
    let mut promotions = 0u64;
    for class in classes {
        let (c, p) = check_class(class, min_improvement)?;
        candidates += c;
        promotions += p;
    }
    Ok(format!(
        "{} classes, {candidates} candidates, {promotions} promotions, margin {min_improvement}",
        classes.len(),
    ))
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: check_tune TUNE_FILE.json …");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        let verdict =
            std::fs::read_to_string(file).map_err(|e| e.to_string()).and_then(|text| check(&text));
        match verdict {
            Ok(summary) => println!("{file}: OK — {summary}"),
            Err(e) => {
                eprintln!("{file}: FAILED — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    fn artifact(candidates: &str, promotions: &str, promoted: bool, best: &str) -> String {
        format!(
            r#"{{
              "min_improvement": 0.05,
              "classes": [
                {{
                  "class": "leak",
                  "incumbent_objective_secs": 300.0,
                  "best_objective_secs": {best},
                  "improvement": null,
                  "promoted": {promoted},
                  "candidates": [{candidates}],
                  "promotions": [{promotions}]
                }}
              ]
            }}"#
        )
    }

    fn candidate(objective: &str, best: &str) -> String {
        format!(
            r#"{{"round": 0, "operator": "PerturbOneAxis", "objective_secs": {objective},
                 "accepted": true, "new_best": false, "best_objective_secs": {best}}}"#
        )
    }

    #[test]
    fn accepts_a_clean_artifact() {
        let candidates =
            [candidate("400.0", "300.0"), candidate("250.0", "250.0"), candidate("null", "250.0")]
                .join(",");
        let promotions =
            r#"{"incumbent_objective_secs": 300.0, "candidate_objective_secs": 250.0}"#;
        let summary = check(&artifact(&candidates, promotions, true, "250.0")).unwrap();
        assert!(summary.contains("3 candidates, 1 promotions"), "{summary}");
    }

    #[test]
    fn rejects_a_rising_best_objective() {
        let candidates = [candidate("250.0", "250.0"), candidate("400.0", "260.0")].join(",");
        let err = check(&artifact(&candidates, "", false, "260.0")).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn rejects_a_promotion_inside_the_margin() {
        // 290 < 300 but not < 300 × 0.95 = 285: inside the margin.
        let promotions =
            r#"{"incumbent_objective_secs": 300.0, "candidate_objective_secs": 290.0}"#;
        let err =
            check(&artifact(&candidate("290.0", "290.0"), promotions, false, "290.0")).unwrap_err();
        assert!(err.contains("margin"), "{err}");
    }

    #[test]
    fn rejects_a_promoted_flag_without_the_margin() {
        let err = check(&artifact(&candidate("295.0", "295.0"), "", true, "295.0")).unwrap_err();
        assert!(err.contains("flagged promoted"), "{err}");
    }

    #[test]
    fn rejects_an_unscoreable_promotion() {
        let promotions = r#"{"incumbent_objective_secs": 300.0, "candidate_objective_secs": null}"#;
        let err =
            check(&artifact(&candidate("null", "null"), promotions, false, "null")).unwrap_err();
        assert!(err.contains("not finite"), "{err}");
    }
}
