//! Validates checkpoint-journal directories: every segment must open,
//! every complete frame must pass its CRC and decode, and sequence
//! numbers must be strictly monotone across the whole log. A torn tail
//! on the newest segment — the expected residue of a crash mid-append —
//! is tolerated and reported, never an error; corruption anywhere else
//! fails the check, because replaying past it would silently restore the
//! wrong state.
//!
//! ```text
//! cargo run --release -p aging-bench --bin check_journal -- JOURNAL_DIR …
//! ```
//!
//! Exits non-zero on the first bad directory; CI runs it over the
//! journal the example smoke runs (and the kill-and-restart smoke) leave
//! behind.

use aging_journal::{Journal, JournalRecord, MembershipFold};
use std::process::ExitCode;

/// Checks one journal directory; returns a short summary line on success.
fn check(dir: &str) -> Result<String, String> {
    let outcome = Journal::read(dir).map_err(|e| e.to_string())?;
    let mut last_seq: Option<u64> = None;
    let mut batches = 0u64;
    let mut rows = 0u64;
    let mut audits = 0u64;
    let mut fold = MembershipFold::new();
    for (seq, record) in &outcome.records {
        if last_seq.is_some_and(|last| *seq <= last) {
            return Err(format!(
                "seq {seq} not strictly after {}",
                last_seq.expect("just observed")
            ));
        }
        last_seq = Some(*seq);
        match record {
            JournalRecord::Checkpoints { rows: batch, .. } => {
                batches += 1;
                rows += batch.len() as u64;
            }
            _ => audits += 1,
        }
        // Membership records must fold cleanly in sequence order — a
        // retire that never saw a join means the log lost or reordered
        // records, and replaying it would restore the wrong roster.
        fold.apply(record).map_err(|e| format!("seq {seq}: {e}"))?;
    }
    let membership = if fold.joins() > 0 {
        format!(
            ", membership folds clean ({} joins / {} retires → {} live, digest {:016x})",
            fold.joins(),
            fold.retires(),
            fold.live().len(),
            fold.digest(),
        )
    } else {
        String::new()
    };
    Ok(format!(
        "{} records ({batches} checkpoint batches / {rows} rows, {audits} audit records) \
         across {} segments, {} torn bytes truncated{membership}",
        outcome.records.len(),
        outcome.segments,
        outcome.truncated_bytes,
    ))
}

fn main() -> ExitCode {
    let dirs: Vec<String> = std::env::args().skip(1).collect();
    if dirs.is_empty() {
        eprintln!("usage: check_journal JOURNAL_DIR …");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for dir in &dirs {
        match check(dir) {
            Ok(summary) => println!("{dir}: OK — {summary}"),
            Err(e) => {
                eprintln!("{dir}: FAILED — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::check;
    use aging_journal::{Journal, JournalCheckpoint, JournalOptions, JournalRecord};
    use std::io::{Read, Seek, SeekFrom, Write};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "check-journal-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Two segments' worth of checkpoint batches plus one audit record.
    fn write_journal(dir: &PathBuf) {
        let options = JournalOptions { fsync_every: 4, segment_max_bytes: 256 };
        let journal = Journal::open_with(dir, options).unwrap();
        for i in 0..8u64 {
            journal
                .append(&JournalRecord::Checkpoints {
                    class: "leaky".into(),
                    rows: vec![JournalCheckpoint {
                        features: vec![i as f64, 0.5],
                        ttf_secs: 600.0 + i as f64,
                        predicted_ttf_secs: Some(580.0),
                        predicted_generation: Some(1),
                        monitor_only: false,
                    }],
                })
                .unwrap();
        }
        journal
            .append(&JournalRecord::GenerationPublished { class: "leaky".into(), generation: 1 })
            .unwrap();
        journal.sync().unwrap();
        assert!(journal.rotations() >= 1, "test journal must span segments");
    }

    fn segments(dir: &PathBuf) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ajl"))
            .collect();
        paths.sort();
        paths
    }

    #[test]
    fn accepts_a_clean_journal() {
        let dir = tmp_dir("clean");
        write_journal(&dir);
        let summary = check(dir.to_str().unwrap()).unwrap();
        assert!(summary.contains("8 checkpoint batches / 8 rows"), "{summary}");
        assert!(summary.contains("0 torn bytes"), "{summary}");
    }

    #[test]
    fn tolerates_and_reports_a_torn_tail() {
        let dir = tmp_dir("torn");
        write_journal(&dir);
        let newest = segments(&dir).pop().unwrap();
        let mut f = std::fs::OpenOptions::new().append(true).open(newest).unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
        let summary = check(dir.to_str().unwrap()).unwrap();
        assert!(summary.contains("2 torn bytes truncated"), "{summary}");
        assert!(summary.contains("8 checkpoint batches"), "{summary}");
    }

    #[test]
    fn membership_records_fold_into_the_summary() {
        let dir = tmp_dir("membership");
        write_journal(&dir);
        let journal = Journal::open(&dir).unwrap();
        let join = |name: &str, epoch| JournalRecord::InstanceJoined {
            instance: name.into(),
            class: "leaky".into(),
            epoch,
        };
        journal.append(&join("web-0", 0)).unwrap();
        journal.append(&join("web-1", 0)).unwrap();
        journal
            .append(&JournalRecord::InstanceRetired {
                instance: "web-0".into(),
                epoch: 40,
                forced: true,
            })
            .unwrap();
        journal.sync().unwrap();
        let summary = check(dir.to_str().unwrap()).unwrap();
        assert!(
            summary.contains("membership folds clean (2 joins / 1 retires → 1 live"),
            "{summary}"
        );
    }

    #[test]
    fn rejects_a_retire_without_a_join() {
        let dir = tmp_dir("orphan-retire");
        write_journal(&dir);
        let journal = Journal::open(&dir).unwrap();
        journal
            .append(&JournalRecord::InstanceRetired {
                instance: "ghost".into(),
                epoch: 9,
                forced: false,
            })
            .unwrap();
        journal.sync().unwrap();
        let err = check(dir.to_str().unwrap()).unwrap_err();
        assert!(err.contains("retired without a join"), "{err}");
    }

    #[test]
    fn rejects_a_mid_log_bit_flip() {
        let dir = tmp_dir("flip");
        write_journal(&dir);
        // Flip one payload byte in the *first* segment: not the torn-tail
        // position, so the CRC mismatch must be fatal.
        let oldest = segments(&dir).remove(0);
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(oldest).unwrap();
        f.seek(SeekFrom::Start(40)).unwrap();
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).unwrap();
        f.seek(SeekFrom::Start(40)).unwrap();
        f.write_all(&[byte[0] ^ 0xFF]).unwrap();
        let err = check(dir.to_str().unwrap()).unwrap_err();
        assert!(!err.is_empty());
    }
}
