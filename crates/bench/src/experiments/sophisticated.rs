//! Testing the paper's Section-1 conjecture: "More sophisticated ML
//! techniques (i.e. Support Vector Machines, Neural Networks, Bayesian
//! Nets, Bagging or Boosting) can surely obtain better accuracy, but we
//! believe that M5P offers a good trade-off between accuracy,
//! interpretability, and computational cost."
//!
//! We fit bagged M5P, gradient-boosted trees and k-NN on the Experiment 4.2
//! training set, evaluate on the dynamic test run, and measure training
//! time — so all three axes of the claimed trade-off are on the table.

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_core::AgingPredictor;
use aging_ml::bagging::BaggingLearner;
use aging_ml::eval::Evaluation;
use aging_ml::gbrt::GbrtLearner;
use aging_ml::knn::KnnLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;
use std::time::Instant;

/// One row of the trade-off table.
#[derive(Debug, Clone)]
pub struct SophisticatedRow {
    /// Model label.
    pub label: String,
    /// Accuracy suite on the dynamic test.
    pub evaluation: Evaluation,
    /// Wall-clock training time in milliseconds.
    pub train_ms: f64,
    /// Whether a human can read the fitted model (the paper's
    /// interpretability axis).
    pub interpretable: bool,
}

/// Runs the study.
pub fn run() -> Vec<SophisticatedRow> {
    let features = FeatureSet::exp42();
    let training: Vec<RunTrace> = common::exp42_training()
        .iter()
        .enumerate()
        .map(|(i, s)| s.run(BASE_SEED + 10 + i as u64))
        .collect();
    let refs: Vec<&RunTrace> = training.iter().collect();
    let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);

    // Frozen-truth labels once, shared by all models.
    let predictor =
        AgingPredictor::train_on_traces(&M5pLearner::paper_default(), &refs, features.clone())
            .expect("training traces are non-empty");
    let report = predictor
        .evaluate_scenario_frozen_truth(&common::exp42_test(), BASE_SEED + 50)
        .expect("test run produces checkpoints");
    let (test, actuals) = (report.trace, report.actuals);

    let mut rows = Vec::new();
    let mut bench = |label: &str, interpretable: bool, fit: &dyn Fn() -> Box<dyn Regressor>| {
        let started = Instant::now();
        let model = fit();
        let train_ms = started.elapsed().as_secs_f64() * 1000.0;
        let evaluation = evaluate_regressor_on_trace(&*model, &features, &test, &actuals);
        rows.push(SophisticatedRow {
            label: label.to_string(),
            evaluation,
            train_ms,
            interpretable,
        });
    };

    bench("M5P (paper)", true, &|| M5pLearner::paper_default().fit_boxed(&dataset).expect("fits"));
    bench("Bagged M5P x15", false, &|| {
        BaggingLearner::new(M5pLearner::paper_default(), 15, BASE_SEED)
            .fit_boxed(&dataset)
            .expect("fits")
    });
    bench("GBRT 150x0.1", false, &|| {
        GbrtLearner { n_stages: 150, learning_rate: 0.1, min_instances: 20 }
            .fit_boxed(&dataset)
            .expect("fits")
    });
    bench("5-NN weighted", false, &|| KnnLearner::default().fit_boxed(&dataset).expect("fits"));
    rows
}

/// Renders the trade-off table.
pub fn render(rows: &[SophisticatedRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = common::metric_row(&r.label, &r.evaluation);
            row.push(format!("{:.1} ms", r.train_ms));
            row.push(if r.interpretable { "yes" } else { "no" }.to_string());
            row
        })
        .collect();
    common::render_table(
        "Sophisticated learners on Exp 4.2 (paper Sec. 1 trade-off conjecture)",
        &["model", "MAE", "S-MAE", "PRE-MAE", "POST-MAE", "train", "interpretable"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn ensembles_do_not_catastrophically_lose_to_m5p() {
        let rows = run();
        let mae = |label: &str| {
            rows.iter().find(|r| r.label.starts_with(label)).map(|r| r.evaluation.mae).expect("row")
        };
        // The conjecture is directional, not guaranteed; what must hold is
        // that the ensembles are in the same accuracy class (within 2x) and
        // that M5P remains the only interpretable model.
        assert!(mae("Bagged") < mae("M5P (paper)") * 2.0);
        assert!(mae("GBRT") < mae("M5P (paper)") * 2.0);
        let interpretable: Vec<&str> =
            rows.iter().filter(|r| r.interpretable).map(|r| r.label.as_str()).collect();
        assert_eq!(interpretable, vec!["M5P (paper)"]);
    }
}
