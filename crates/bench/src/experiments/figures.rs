//! The motivating-example figures (Section 2.1): Figure 1 (non-linear
//! resource behaviour under a constant-rate leak) and Figure 2 (OS vs JVM
//! viewpoints on the same resource).

use crate::experiments::common::{self, BASE_SEED};
use aging_testbed::{PeriodicSpec, RunTrace, Scenario};

/// Figure 1 outputs.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// (time s, tomcat OS-view MB, old committed MB, JVM heap used MB).
    pub series: Vec<(f64, f64, f64, f64)>,
    /// Total Old-zone resizes observed (paper shows three, at 2150 s,
    /// 4350 s and 5150 s).
    pub resizes: u64,
    /// Crash time, seconds.
    pub crash_secs: f64,
    /// Crash time a naive linear extrapolation of the initial consumption
    /// rate would have predicted, seconds.
    pub naive_crash_secs: f64,
}

/// Runs the Figure 1 experiment: constant `N = 30` leak at 100 EBs until
/// the crash.
pub fn fig1() -> Fig1Result {
    let trace = common::leak_run("fig1-N30-100eb", 100, 30).run(BASE_SEED + 200);
    fig1_from_trace(&trace)
}

/// Computes the Figure 1 artefacts from an existing trace.
pub fn fig1_from_trace(trace: &RunTrace) -> Fig1Result {
    let crash_secs = trace.crash.expect("constant leak must crash").time_secs;
    let series: Vec<(f64, f64, f64, f64)> = trace
        .samples
        .iter()
        .map(|s| (s.time_secs, s.tomcat_mem_mb, s.old_max_mb, s.heap_used_mb))
        .collect();
    let resizes: u64 = trace.samples.iter().map(|s| s.old_resizes as u64).sum();

    // Naive prediction (the paper's Section 2.1.1 discussion): measure the
    // consumption rate over an early window and extrapolate linearly to the
    // memory level at which the crash actually happened.
    let at = |t: f64| {
        trace
            .samples
            .iter()
            .min_by(|a, b| (a.time_secs - t).abs().total_cmp(&(b.time_secs - t).abs()))
            .expect("non-empty trace")
    };
    let early = at(120.0);
    let late = at(600.0);
    let rate = (late.tomcat_mem_mb - early.tomcat_mem_mb) / (late.time_secs - early.time_secs);
    let final_level = trace.samples.last().expect("non-empty trace").tomcat_mem_mb;
    let naive_crash_secs = if rate > 0.0 {
        late.time_secs + (final_level - late.tomcat_mem_mb) / rate
    } else {
        f64::INFINITY
    };
    Fig1Result { series, resizes, crash_secs, naive_crash_secs }
}

/// Renders Figure 1 and writes its CSV.
pub fn render_fig1(r: &Fig1Result) -> String {
    let csv = common::write_series_csv(
        "fig1_memory_consumption.csv",
        "time_secs,tomcat_os_mb,old_committed_mb,jvm_heap_used_mb",
        r.series.iter().map(|&(t, a, b, c)| vec![t, a, b, c]),
    );
    let extra_min = (r.crash_secs - r.naive_crash_secs) / 60.0;
    let mut out = format!(
        "Figure 1 — progressive memory consumption, constant N=30 leak\n\
         crash at {:.0} s; Old-zone resizes observed: {} (paper shows 3)\n\
         naive linear extrapolation of the initial rate predicts the crash\n\
         at {:.0} s — off by {:.1} minutes ({})\n\
         (paper: heap management bought 'about 16 extra minutes' over the\n\
         naive prediction; the magnitude and sign of the naive error depend\n\
         on where the GC flat zones fall relative to the sampling window)\n",
        r.crash_secs,
        r.resizes,
        r.naive_crash_secs,
        extra_min.abs(),
        if extra_min >= 0.0 {
            "heap management bought extra lifetime"
        } else {
            "early flat zones made the naive rate optimistic"
        }
    );
    if let Ok(path) = csv {
        out.push_str(&format!("series written to {path}\n"));
    }
    out
}

/// Figure 2 outputs.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// (time s, tomcat OS-view MB, JVM young+old used MB).
    pub series: Vec<(f64, f64, f64)>,
    /// Spread (max − min) of the OS view after warm-up.
    pub os_spread_mb: f64,
    /// Spread of the JVM view after warm-up.
    pub jvm_spread_mb: f64,
}

/// Runs the Figure 2 experiment: the 5-hour periodic acquire/release
/// pattern with full release ("returning to the initial state"), showing
/// the OS-level view flat while the JVM-level view waves.
pub fn fig2() -> Fig2Result {
    let scenario = Scenario::builder("fig2-periodic")
        .emulated_browsers(100)
        .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 5)
        .build();
    let trace = scenario.run(BASE_SEED + 210);
    fig2_from_trace(&trace)
}

/// Computes the Figure 2 artefacts from an existing trace.
pub fn fig2_from_trace(trace: &RunTrace) -> Fig2Result {
    let series: Vec<(f64, f64, f64)> =
        trace.samples.iter().map(|s| (s.time_secs, s.tomcat_mem_mb, s.heap_used_mb)).collect();
    let tail: Vec<_> = series.iter().filter(|s| s.0 > 3600.0).collect();
    let spread = |f: &dyn Fn(&(f64, f64, f64)) -> f64| {
        let lo = tail.iter().map(|s| f(s)).fold(f64::INFINITY, f64::min);
        let hi = tail.iter().map(|s| f(s)).fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    Fig2Result { os_spread_mb: spread(&|s| s.1), jvm_spread_mb: spread(&|s| s.2), series }
}

/// Renders Figure 2 and writes its CSV.
pub fn render_fig2(r: &Fig2Result) -> String {
    let csv = common::write_series_csv(
        "fig2_os_vs_jvm.csv",
        "time_secs,tomcat_os_mb,jvm_used_mb",
        r.series.iter().map(|&(t, a, b)| vec![t, a, b]),
    );
    let mut out = format!(
        "Figure 2 — OS vs JVM perspectives under a periodic acquire/release pattern\n\
         after warm-up: OS-view spread {:.1} MB (nearly flat), JVM-view spread {:.1} MB (waves)\n\
         (paper: dark OS line constant, grey JVM line waving by hundreds of MB)\n",
        r.os_spread_mb, r.jvm_spread_mb
    );
    if let Ok(path) = csv {
        out.push_str(&format!("series written to {path}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn fig1_shows_staircase_and_naive_error() {
        let r = fig1();
        assert!(r.resizes >= 2, "expected at least two Old resizes, got {}", r.resizes);
        // The robust claim behind the paper's '16 extra minutes' anecdote:
        // linear extrapolation of the initial consumption rate misses the
        // real crash time substantially, because the heap-management
        // actions make the consumption non-linear (Section 2.1.1).
        assert!(
            (r.crash_secs - r.naive_crash_secs).abs() > 120.0,
            "naive extrapolation should err by minutes: real {} vs naive {}",
            r.crash_secs,
            r.naive_crash_secs
        );
    }

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn fig2_shows_viewpoint_divergence() {
        let r = fig2();
        assert!(r.jvm_spread_mb > 2.0 * r.os_spread_mb, "{r:?}");
    }
}
