//! Experiment 4.3 — aging hidden within a periodic resource pattern
//! (the paper's Table 4 and Figure 4).
//!
//! The test run alternates 20-minute acquire (N = 30) and release (N = 75)
//! phases; because acquisition outpaces release, memory is retained every
//! cycle and the leak hides inside the waves. Training reuses the
//! constant-rate executions of Experiment 4.2 — "the training set does not
//! have any execution with release phase or periodic patterns."
//!
//! The paper's first attempt with the complete variable set performed
//! poorly; re-training with only the Java-heap variables (expert feature
//! selection) rescued it. We reproduce all four cells: {full, heap} ×
//! {LinReg, M5P}.

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_ml::eval::Evaluation;
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::Learner;
use aging_monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use aging_testbed::{PeriodicSpec, RunTrace, Scenario};

/// Table 4 plus the feature-selection comparison and Figure 4 series.
#[derive(Debug, Clone)]
pub struct Exp43Result {
    /// (label, evaluation) rows for all four model × feature-set cells.
    pub rows: Vec<(String, Evaluation)>,
    /// Tree shape of the heap-selected M5P (paper: 17 inner nodes, 18
    /// leaves).
    pub heap_tree_shape: (usize, usize),
    /// Figure 4 series: (time s, predicted TTF s, true TTF s, JVM heap MB).
    pub series: Vec<(f64, f64, f64, f64)>,
    /// MAE of the heap-selected M5P after the sliding window has seen one
    /// full acquire/release cycle (the warm-up dominates the raw MAE; once
    /// the window covers a cycle the extracted trend is accurate).
    pub heap_m5p_mae_after_warmup: f64,
    /// Test-run duration and crash time.
    pub duration_secs: f64,
}

/// The Experiment 4.3 test scenario.
pub fn test_scenario() -> Scenario {
    Scenario::builder("exp43-periodic")
        .emulated_browsers(100)
        .periodic_cycles(PeriodicSpec::paper_exp43(), 30)
        .run_to_crash()
        .build()
}

/// Runs the experiment end to end.
pub fn run() -> Exp43Result {
    let training = common::exp42_training();
    let traces: Vec<RunTrace> =
        training.iter().enumerate().map(|(i, s)| s.run(BASE_SEED + 10 + i as u64)).collect();
    let refs: Vec<&RunTrace> = traces.iter().collect();

    let test = test_scenario().run(BASE_SEED + 60);
    let actuals = label_ttf(&test, TTF_CAP_SECS);

    let mut rows = Vec::new();
    let mut heap_tree_shape = (0, 0);
    let mut series = Vec::new();

    for features in [FeatureSet::exp43_full(), FeatureSet::exp43_heap()] {
        let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);
        let m5p = M5pLearner::paper_default().fit(&dataset).expect("non-empty dataset");
        let linreg = LinRegLearner::default().fit(&dataset).expect("non-empty dataset");
        let lr_eval = evaluate_regressor_on_trace(&linreg, &features, &test, &actuals);
        let m5p_eval = evaluate_regressor_on_trace(&m5p, &features, &test, &actuals);
        rows.push((format!("{} LinReg", features.name()), lr_eval));
        rows.push((format!("{} M5P", features.name()), m5p_eval));

        if features.name().contains("heap") {
            heap_tree_shape = (m5p.n_leaves(), m5p.n_inner_nodes());
            // Figure 4: the heap-selected M5P predictions over the run.
            let mut online = aging_core::OnlineTtfPredictor::new(&m5p, features.clone());
            series = test
                .samples
                .iter()
                .zip(&actuals)
                .map(|(s, &a)| (s.time_secs, online.observe(s), a, s.heap_used_mb))
                .collect();
        }
    }

    let warmup_secs = 40.0 * 60.0; // one acquire/release cycle
    let tail: Vec<&(f64, f64, f64, f64)> = series.iter().filter(|s| s.0 > warmup_secs).collect();
    let heap_m5p_mae_after_warmup = if tail.is_empty() {
        f64::NAN
    } else {
        tail.iter().map(|s| (s.1 - s.2).abs()).sum::<f64>() / tail.len() as f64
    };

    Exp43Result {
        rows,
        heap_tree_shape,
        series,
        heap_m5p_mae_after_warmup,
        duration_secs: test.duration_secs,
    }
}

/// Renders the report and writes the Figure 4 CSV.
pub fn render(result: &Exp43Result) -> String {
    let csv = common::write_series_csv(
        "fig4_predicted_vs_heap.csv",
        "time_secs,predicted_ttf_secs,true_ttf_secs,heap_used_mb",
        result.series.iter().map(|&(t, p, a, h)| vec![t, p, a, h]),
    );
    let mut out = format!(
        "Experiment 4.3 — periodic-pattern-masked aging (paper Table 4 + Fig. 4)\n\
         heap-selected M5P tree: {} leaves, {} inner nodes (paper: 18 leaves, 17 inner)\n\
         test ran {}\n\n",
        result.heap_tree_shape.0,
        result.heap_tree_shape.1,
        aging_ml::eval::format_duration(result.duration_secs),
    );
    let rows: Vec<Vec<String>> =
        result.rows.iter().map(|(l, e)| common::metric_row(l, e)).collect();
    out.push_str(&common::render_table(
        "Table 4 (paper, after selection: LinReg MAE 15m57s vs M5P MAE 3m34s)",
        &["model/features", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    out.push_str(&format!(
        "\nheap-selected M5P MAE after one-cycle window warm-up: {}\n\
         (the sliding window needs a full acquire/release cycle before the\n\
         net trend is visible; the paper does not state how it handled this)\n",
        aging_ml::eval::format_duration(result.heap_m5p_mae_after_warmup),
    ));
    if let Ok(path) = csv {
        out.push_str(&format!("\nFigure 4 series written to {path}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn feature_selection_rescues_m5p() {
        let r = run();
        let get = |label: &str| {
            r.rows.iter().find(|(l, _)| l == label).map(|(_, e)| *e).expect("row present")
        };
        let m5p_heap = get("exp4.3-heap-selected M5P");
        let lr_heap = get("exp4.3-heap-selected LinReg");
        // Where the rescue shows in our reproduction: once the crash
        // approaches, the heap-selected M5P is far more accurate than the
        // heap-selected linear regression (see EXPERIMENTS.md for why the
        // whole-run MAE is dominated by the sliding-window warm-up).
        let m5p_post = m5p_heap.post_mae.expect("run crashes");
        let lr_post = lr_heap.post_mae.expect("run crashes");
        assert!(
            m5p_post * 2.0 < lr_post,
            "selected M5P must beat selected LinReg near the crash: {m5p_post} vs {lr_post}"
        );
        assert!(m5p_heap.s_mae <= m5p_heap.mae);
        // The extracted trend must be meaningful after warm-up: better than
        // always predicting the cap midpoint would be on a ~3.5 h run.
        assert!(
            r.heap_m5p_mae_after_warmup < 2400.0,
            "post-warm-up MAE too high: {}",
            r.heap_m5p_mae_after_warmup
        );
    }
}
