//! Workload-mix sensitivity — a consequence of the paper's observation
//! that "memory injection is workload dependent (because it occurs when a
//! certain application component is executed)".
//!
//! The leak is driven by search-servlet visits, so the TPC-W mix (not just
//! the EB count) changes the aging speed: the Browsing mix searches less
//! than Shopping, the Ordering mix sits between. We run the same `N = 30`
//! leak under all three mixes and check the crash ordering follows the
//! mixes' search-servlet frequency — and that a predictor trained under
//! Shopping transfers to the other mixes (the mix only shifts the
//! consumption speed, which is exactly what the derived variables encode).

use crate::experiments::common::{self, BASE_SEED};
use aging_core::AgingPredictor;
use aging_ml::eval::Evaluation;
use aging_monitor::FeatureSet;
use aging_testbed::{MemLeakSpec, Scenario, TpcwMix};

/// One row of the mix study.
#[derive(Debug, Clone)]
pub struct MixRow {
    /// The TPC-W mix.
    pub mix: TpcwMix,
    /// Search-servlet frequency of the mix.
    pub search_fraction: f64,
    /// Crash time under the N = 30 leak, seconds.
    pub crash_secs: f64,
    /// Accuracy of the Shopping-trained predictor on this mix.
    pub evaluation: Evaluation,
}

fn mix_scenario(mix: TpcwMix) -> Scenario {
    let mut cfg = aging_testbed::SimConfig::default();
    cfg.workload.mix = mix;
    Scenario::builder(format!("mix-{mix:?}"))
        .config(cfg)
        .emulated_browsers(100)
        .memory_leak(MemLeakSpec::new(30))
        .run_to_crash()
        .build()
}

/// Runs the study.
pub fn run() -> Vec<MixRow> {
    // Train once, under the paper's Shopping mix.
    let predictor = AgingPredictor::train(
        &[mix_scenario(TpcwMix::Shopping)],
        FeatureSet::exp42(),
        BASE_SEED + 600,
    )
    .expect("training run crashes and yields checkpoints");

    [TpcwMix::Browsing, TpcwMix::Shopping, TpcwMix::Ordering]
        .into_iter()
        .map(|mix| {
            let report = predictor
                .evaluate_scenario(&mix_scenario(mix), BASE_SEED + 610)
                .expect("run yields checkpoints");
            MixRow {
                mix,
                search_fraction: mix.search_servlet_fraction(),
                crash_secs: report
                    .trace
                    .crash
                    .expect("every mix searches, so every mix crashes")
                    .time_secs,
                evaluation: report.evaluation,
            }
        })
        .collect()
}

/// Renders the study.
pub fn render(rows: &[MixRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:?}", r.mix),
                format!("{:.1}%", 100.0 * r.search_fraction),
                format!("{:.0} s", r.crash_secs),
                aging_ml::eval::format_duration(r.evaluation.mae),
                r.evaluation.post_mae.map_or("n/a".into(), aging_ml::eval::format_duration),
            ]
        })
        .collect();
    let mut out = common::render_table(
        "TPC-W mix sensitivity under an N=30 leak (extension)",
        &["mix", "search freq", "crash", "MAE (shopping-trained)", "POST-MAE"],
        &table,
    );
    out.push_str(
        "\nThe leak rides the search servlet, so mixes that search less age\n\
         slower; the Shopping-trained model transfers because the derived\n\
         consumption-speed variables absorb the rate change (Section 2.2).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn crash_order_follows_search_frequency() {
        let rows = run();
        let crash = |mix: TpcwMix| rows.iter().find(|r| r.mix == mix).unwrap().crash_secs;
        assert!(
            crash(TpcwMix::Browsing) > crash(TpcwMix::Ordering),
            "browsing searches least, so it must survive longest"
        );
        assert!(crash(TpcwMix::Ordering) > crash(TpcwMix::Shopping));
        // Transfer: the shopping-trained model stays useful on every mix.
        for r in &rows {
            let mean_ttf = r.crash_secs / 2.0;
            assert!(
                r.evaluation.mae < mean_ttf,
                "{:?}: MAE {} should beat the trivial scale {mean_ttf}",
                r.mix,
                r.evaluation.mae
            );
        }
    }
}
