//! Experiment 4.1 — deterministic software aging (the paper's Table 3).
//!
//! Train on four run-to-crash executions (25, 50, 100, 200 EBs) with a
//! constant `N = 30` memory leak, then evaluate on two unseen workloads
//! (75 and 150 EBs). Accuracy is reported for linear regression and M5P as
//! MAE / S-MAE / PRE-MAE / POST-MAE, without heap variables ("we did not
//! add the heap information").

use crate::experiments::common::{self, BASE_SEED};
use aging_ml::eval::Evaluation;
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;

/// Everything Table 3 reports, plus the model-shape numbers the paper
/// quotes in prose ("33 leafs and 30 inner nodes … 2776 instances").
#[derive(Debug, Clone)]
pub struct Exp41Result {
    /// Training instances used.
    pub instances: usize,
    /// Leaves of the M5P tree.
    pub m5p_leaves: usize,
    /// Inner nodes of the M5P tree.
    pub m5p_inner: usize,
    /// (label, evaluation) rows: LinReg and M5P at 75 and 150 EBs.
    pub rows: Vec<(String, Evaluation)>,
}

/// Runs the experiment end to end.
pub fn run() -> Exp41Result {
    let features = FeatureSet::exp41();
    let train_scenarios: Vec<_> = [25u64, 50, 100, 200]
        .into_iter()
        .map(|ebs| common::leak_run(format!("train-{ebs}eb-N30"), ebs, 30))
        .collect();
    let traces: Vec<RunTrace> =
        train_scenarios.iter().enumerate().map(|(i, s)| s.run(BASE_SEED + i as u64)).collect();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);

    let m5p = M5pLearner::paper_default().fit(&dataset).expect("training set is non-empty");
    let linreg = LinRegLearner::default().fit(&dataset).expect("training set is non-empty");

    // The paper evaluates one physical run per test workload; a simulator
    // lets us do better — three seeds per workload, metrics aggregated over
    // all checkpoints — so a single lucky/unlucky run cannot dominate the
    // table.
    const TEST_SEEDS: u64 = 3;
    let mut rows = Vec::new();
    for (i, ebs) in [75u64, 150].into_iter().enumerate() {
        let mut m5p_preds = Vec::new();
        let mut lr_preds = Vec::new();
        let mut all_actuals = Vec::new();
        for seed in 0..TEST_SEEDS {
            let test = common::leak_run(format!("test-{ebs}eb-N30"), ebs, 30)
                .run(BASE_SEED + 100 + 10 * i as u64 + seed);
            let actuals = label_ttf(&test, TTF_CAP_SECS);
            let mut online_m5p = aging_core::OnlineTtfPredictor::new(&m5p, features.clone());
            let mut online_lr = aging_core::OnlineTtfPredictor::new(&linreg, features.clone());
            let seed_m5p: Vec<f64> = test.samples.iter().map(|s| online_m5p.observe(s)).collect();
            let seed_lr: Vec<f64> = test.samples.iter().map(|s| online_lr.observe(s)).collect();
            if seed == 0 {
                let _ = common::write_series_csv(
                    &format!("exp41_{ebs}eb_series.csv"),
                    "time_secs,pred_m5p_secs,pred_linreg_secs,true_ttf_secs,tomcat_mem_mb",
                    test.samples.iter().enumerate().map(|(j, s)| {
                        vec![s.time_secs, seed_m5p[j], seed_lr[j], actuals[j], s.tomcat_mem_mb]
                    }),
                );
            }
            m5p_preds.extend(seed_m5p);
            lr_preds.extend(seed_lr);
            all_actuals.extend(actuals);
        }
        let cfg = aging_ml::eval::EvalConfig::default();
        rows.push((
            format!("{ebs}EBs {}", linreg.name()),
            aging_ml::eval::evaluate(&lr_preds, &all_actuals, &cfg),
        ));
        rows.push((
            format!("{ebs}EBs {}", Regressor::name(&m5p)),
            aging_ml::eval::evaluate(&m5p_preds, &all_actuals, &cfg),
        ));
    }

    Exp41Result {
        instances: dataset.len(),
        m5p_leaves: m5p.n_leaves(),
        m5p_inner: m5p.n_inner_nodes(),
        rows,
    }
}

/// Renders the paper-style table.
pub fn render(result: &Exp41Result) -> String {
    let mut out = format!(
        "Experiment 4.1 — deterministic aging (paper Table 3)\n\
         trained on 4 executions, {} instances; M5P tree: {} leaves, {} inner nodes\n\
         (paper: 2776 instances, 33 leaves, 30 inner nodes)\n\n",
        result.instances, result.m5p_leaves, result.m5p_inner
    );
    let rows: Vec<Vec<String>> =
        result.rows.iter().map(|(label, e)| common::metric_row(label, e)).collect();
    out.push_str(&common::render_table(
        "Table 3",
        &["model", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn table3_shape_holds() {
        let r = run();
        // Shape assertions from DESIGN.md: M5P beats LinReg at both
        // workloads; S-MAE <= MAE.
        for pair in r.rows.chunks(2) {
            let (lr, m5p) = (&pair[0].1, &pair[1].1);
            assert!(m5p.mae < lr.mae, "M5P must beat LinReg: {m5p:?} vs {lr:?}");
            assert!(m5p.s_mae <= m5p.mae);
        }
    }
}
