//! Experiment 4.2 — dynamic and variable software aging (Figure 3 plus the
//! in-text accuracy numbers).
//!
//! Train on four constant-rate executions (no injection for one hour, and
//! N = 15 / 30 / 75 run-to-crash, all at 100 EBs), then test on a run whose
//! injection rate changes every 20 minutes: none → N=30 → N=15 → N=75 until
//! crash. Ground truth per checkpoint is the paper's frozen-rate
//! simulation: clone the testbed, hold the current rate, run until crash.

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_core::AgingPredictor;
use aging_ml::eval::Evaluation;
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::Learner;
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;

/// The experiment's outputs: metric suites for both models and the
/// Figure 3 series.
#[derive(Debug, Clone)]
pub struct Exp42Result {
    /// Training instances used.
    pub instances: usize,
    /// M5P tree shape: (leaves, inner nodes).
    pub tree_shape: (usize, usize),
    /// M5P accuracy (paper: MAE 16:26, S-MAE 13:03, PRE 17:15, POST 8:14).
    pub m5p: Evaluation,
    /// Linear-regression accuracy (paper: "a really unacceptable MAE").
    pub linreg: Evaluation,
    /// Figure 3 series: (time s, predicted TTF s, true TTF s, tomcat MB).
    pub series: Vec<(f64, f64, f64, f64)>,
    /// Test-run duration (paper: 1 h 47 min).
    pub duration_secs: f64,
}

/// Runs the experiment end to end.
pub fn run() -> Exp42Result {
    let features = FeatureSet::exp42();
    let training = common::exp42_training();
    let traces: Vec<RunTrace> =
        training.iter().enumerate().map(|(i, s)| s.run(BASE_SEED + 10 + i as u64)).collect();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);

    let predictor =
        AgingPredictor::train_on_traces(&M5pLearner::paper_default(), &refs, features.clone())
            .expect("training traces are non-empty");
    let linreg = LinRegLearner::default().fit(&dataset).expect("non-empty dataset");

    // One frozen-truth pass; both models are evaluated against it.
    let report = predictor
        .evaluate_scenario_frozen_truth(&common::exp42_test(), BASE_SEED + 50)
        .expect("test run produces checkpoints");
    let lr_eval = evaluate_regressor_on_trace(&linreg, &features, &report.trace, &report.actuals);

    let series = report
        .trace
        .samples
        .iter()
        .zip(report.predictions.iter().zip(&report.actuals))
        .map(|(s, (&p, &a))| (s.time_secs, p, a, s.tomcat_mem_mb))
        .collect();

    Exp42Result {
        instances: dataset.len(),
        tree_shape: (predictor.model().n_leaves(), predictor.model().n_inner_nodes()),
        m5p: report.evaluation,
        linreg: lr_eval,
        series,
        duration_secs: report.trace.duration_secs,
    }
}

/// Renders the report and writes the Figure 3 CSV.
pub fn render(result: &Exp42Result) -> String {
    let csv = common::write_series_csv(
        "fig3_predicted_vs_memory.csv",
        "time_secs,predicted_ttf_secs,true_ttf_secs,tomcat_mem_mb",
        result.series.iter().map(|&(t, p, a, m)| vec![t, p, a, m]),
    );
    let mut out = format!(
        "Experiment 4.2 — dynamic software aging (paper Fig. 3 + in-text numbers)\n\
         trained on 4 executions, {} instances; tree {} leaves / {} inner nodes\n\
         (paper: 1710 instances, 36 leaves, 35 inner nodes); test ran {}\n\
         (paper test ran 1 h 47 min)\n\n",
        result.instances,
        result.tree_shape.0,
        result.tree_shape.1,
        aging_ml::eval::format_duration(result.duration_secs),
    );
    let rows = vec![
        common::metric_row("LinearRegression", &result.linreg),
        common::metric_row("M5P", &result.m5p),
    ];
    out.push_str(&common::render_table(
        "Exp 4.2 accuracy (paper M5P: MAE 16m26s, S-MAE 13m03s, PRE 17m15s, POST 8m14s)",
        &["model", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    if let Ok(path) = csv {
        out.push_str(&format!("\nFigure 3 series written to {path}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn dynamic_aging_shape_holds() {
        let r = run();
        assert!(r.m5p.mae < r.linreg.mae, "M5P must beat LinReg: {:?} vs {:?}", r.m5p, r.linreg);
        assert!(r.m5p.s_mae <= r.m5p.mae);
        // The model must recognise the injection-free first phase as
        // (near-)infinite TTF: early predictions close to the cap.
        let early: Vec<f64> =
            r.series.iter().filter(|s| s.0 > 300.0 && s.0 < 900.0).map(|s| s.1).collect();
        let early_mean = early.iter().sum::<f64>() / early.len() as f64;
        assert!(
            early_mean > 0.5 * TTF_CAP_SECS,
            "idle-phase predictions should be near the cap, mean {early_mean}"
        );
    }
}
