//! Experiment 4.4 — dynamic aging due to two resources (Figure 5 and the
//! in-text numbers), plus the root-cause inspection of Section 4.4.
//!
//! Memory and threads are injected simultaneously, with rates changing
//! every ~30 minutes; the model was "never … trained using executions where
//! both resources were injecting errors simultaneously" — its training set
//! is six single-resource executions (plus an idle baseline run; see
//! `common::exp44_training` for why). Ground truth is the frozen-rate fork
//! as in Experiment 4.2.

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_core::{AgingPredictor, RootCauseReport};
use aging_ml::eval::Evaluation;
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::Learner;
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;

/// The experiment's outputs.
#[derive(Debug, Clone)]
pub struct Exp44Result {
    /// Training instances (paper: 2752 from 6 executions).
    pub instances: usize,
    /// M5P tree shape (paper: 35 inner nodes, 36 leaves).
    pub tree_shape: (usize, usize),
    /// M5P accuracy (paper: MAE 16:52, S-MAE 13:22, PRE 18:16, POST 2:05).
    pub m5p: Evaluation,
    /// Linear-regression accuracy for reference.
    pub linreg: Evaluation,
    /// Figure 5 series: (time s, predicted TTF s, true TTF s, threads,
    /// tomcat MB).
    pub series: Vec<(f64, f64, f64, f64, f64)>,
    /// Root-cause analysis of the learned tree.
    pub root_cause: RootCauseReport,
    /// Top of the learned tree (first two levels, as the paper inspects).
    pub tree_top: String,
    /// Test duration (paper: 1 h 55 min).
    pub duration_secs: f64,
}

/// Runs the experiment end to end.
pub fn run() -> Exp44Result {
    let features = FeatureSet::exp44();
    let training = common::exp44_training();
    let traces: Vec<RunTrace> =
        training.iter().enumerate().map(|(i, s)| s.run(BASE_SEED + 20 + i as u64)).collect();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);

    let predictor =
        AgingPredictor::train_on_traces(&M5pLearner::paper_default(), &refs, features.clone())
            .expect("training traces are non-empty");
    let linreg = LinRegLearner::default().fit(&dataset).expect("non-empty dataset");

    let report = predictor
        .evaluate_scenario_frozen_truth(&common::exp44_test(), BASE_SEED + 70)
        .expect("test run produces checkpoints");
    let lr_eval = evaluate_regressor_on_trace(&linreg, &features, &report.trace, &report.actuals);

    let series = report
        .trace
        .samples
        .iter()
        .zip(report.predictions.iter().zip(&report.actuals))
        .map(|(s, (&p, &a))| (s.time_secs, p, a, s.num_threads, s.tomcat_mem_mb))
        .collect();

    Exp44Result {
        instances: dataset.len(),
        tree_shape: (predictor.model().n_leaves(), predictor.model().n_inner_nodes()),
        m5p: report.evaluation,
        linreg: lr_eval,
        series,
        root_cause: RootCauseReport::from_model(predictor.model()),
        tree_top: predictor.model().render(Some(2)),
        duration_secs: report.trace.duration_secs,
    }
}

/// Renders the report and writes the Figure 5 CSV.
pub fn render(result: &Exp44Result) -> String {
    let csv = common::write_series_csv(
        "fig5_two_resource.csv",
        "time_secs,predicted_ttf_secs,true_ttf_secs,threads,tomcat_mem_mb",
        result.series.iter().map(|&(t, p, a, th, m)| vec![t, p, a, th, m]),
    );
    let mut out = format!(
        "Experiment 4.4 — two-resource aging (paper Fig. 5 + in-text numbers)\n\
         trained on 6 single-resource executions + 1 idle baseline (see common.rs),\n\
         {} instances; tree {} leaves / {} inner\n\
         (paper: 2752 instances, 36 leaves, 35 inner nodes); test ran {}\n\
         (paper test ran 1 h 55 min)\n\n",
        result.instances,
        result.tree_shape.0,
        result.tree_shape.1,
        aging_ml::eval::format_duration(result.duration_secs),
    );
    let rows = vec![
        common::metric_row("LinearRegression", &result.linreg),
        common::metric_row("M5P", &result.m5p),
    ];
    out.push_str(&common::render_table(
        "Exp 4.4 accuracy (paper M5P: MAE 16m52s, S-MAE 13m22s, PRE 18m16s, POST 2m05s)",
        &["model", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    out.push_str("\n--- Root cause (Section 4.4) ---\n");
    out.push_str(&result.root_cause.summary());
    out.push_str("\nFirst two levels of the learned tree:\n");
    out.push_str(&result.tree_top);
    if let Ok(path) = csv {
        out.push_str(&format!("\nFigure 5 series written to {path}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_core::rootcause::ResourceCategory;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn two_resource_shape_holds() {
        let r = run();
        assert!(r.m5p.mae < r.linreg.mae, "M5P must beat LinReg: {:?} vs {:?}", r.m5p, r.linreg);
        // The paper's headline: POST-MAE is excellent (2 min over a ~2 h run).
        let post = r.m5p.post_mae.expect("run crashes, so POST exists");
        let pre = r.m5p.pre_mae.expect("run is long, so PRE exists");
        assert!(post < pre, "prediction must sharpen near the crash: post {post} pre {pre}");
        // Root cause should implicate memory and/or threads.
        assert!(r.root_cause.suspected.iter().any(|c| matches!(
            c,
            ResourceCategory::Memory | ResourceCategory::Threads | ResourceCategory::JavaHeap
        )));
    }
}
