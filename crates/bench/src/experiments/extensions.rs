//! Extension studies beyond the paper's core evaluation, drawn from its
//! introduction, related-work and future-work sections:
//!
//! - **Rejuvenation policies** (intro + TR extension \[29\]): reactive vs
//!   time-based vs predictive rejuvenation, with availability accounting.
//! - **Baseline zoo** (related work): the regression tree from the authors'
//!   preliminary study, the naive Eq. (1) predictor, and the ARMA
//!   comparator of Li/Vaidyanathan/Trivedi, all against M5P.
//! - **Prediction board** (future work): a consensus ensemble of M5P,
//!   linear regression and a regression tree.

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_core::rejuvenation::{evaluate_policy, RejuvenationConfig, RejuvenationPolicy};
use aging_core::{AgingPredictor, RejuvenationReport};
use aging_ml::arma::ArmaModel;
use aging_ml::board::{Consensus, PredictionBoard};
use aging_ml::eval::{evaluate, EvalConfig, Evaluation};
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::naive::NaivePredictor;
use aging_ml::regtree::RegTreeLearner;
use aging_ml::{Learner, Regressor};
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;

/// Compares rejuvenation policies over a day of operation of a leaky
/// server.
pub fn rejuvenation() -> Vec<RejuvenationReport> {
    let scenario = common::leak_run("rejuv-N15", 100, 15);
    let predictor = AgingPredictor::train(
        &[common::leak_run("rejuv-train", 100, 15)],
        FeatureSet::exp42(),
        BASE_SEED + 300,
    )
    .expect("training run crashes and yields checkpoints");
    let config = RejuvenationConfig { horizon_secs: 24.0 * 3600.0, ..Default::default() };

    let policies = [
        RejuvenationPolicy::Reactive,
        RejuvenationPolicy::TimeBased { interval_secs: 1200.0 },
        RejuvenationPolicy::TimeBased { interval_secs: 3600.0 },
        RejuvenationPolicy::Predictive { threshold_secs: 420.0, consecutive: 2 },
    ];
    policies
        .into_iter()
        .map(|p| {
            evaluate_policy(&scenario, p, Some(&predictor), &config, BASE_SEED + 310)
                .expect("policy evaluation succeeds")
        })
        .collect()
}

/// Renders the rejuvenation comparison.
pub fn render_rejuvenation(reports: &[RejuvenationReport]) -> String {
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.crashes.to_string(),
                r.rejuvenations.to_string(),
                format!("{:.0}", r.downtime_secs),
                format!("{:.4}%", 100.0 * r.availability),
                format!("{:.0}", r.lost_requests),
            ]
        })
        .collect();
    common::render_table(
        "Rejuvenation policies over 24 h (extension, TR [29])",
        &["policy", "crashes", "rejuvenations", "downtime s", "availability", "lost requests"],
        &rows,
    )
}

/// Evaluates the full baseline zoo on the paper's *dynamic* scenario
/// (Experiment 4.2): the injection rate changes every 20 minutes, which is
/// exactly the situation where the paper argues trend-assuming approaches
/// (ARMA, the naive slope formula) and a single global linear model fall
/// behind M5P. On purely deterministic single-rate aging, linear
/// regression with heap variables is a strong baseline — the paper itself
/// notes linear regression's adequacy "under normal circumstances".
pub fn baselines() -> Vec<(String, Evaluation)> {
    let features = FeatureSet::exp42();
    let training: Vec<RunTrace> = common::exp42_training()
        .iter()
        .enumerate()
        .map(|(i, s)| s.run(BASE_SEED + 10 + i as u64))
        .collect();
    let refs: Vec<&RunTrace> = training.iter().collect();
    let dataset = build_dataset(&refs, &features, TTF_CAP_SECS);

    let m5p = M5pLearner::paper_default().fit(&dataset).expect("non-empty dataset");
    let linreg = LinRegLearner::default().fit(&dataset).expect("non-empty dataset");
    let regtree = RegTreeLearner { min_instances: 10, ..Default::default() }
        .fit(&dataset)
        .expect("non-empty dataset");

    // One frozen-truth pass over the dynamic test run; every model is then
    // evaluated against the same trace and labels.
    let predictor =
        AgingPredictor::train_on_traces(&M5pLearner::paper_default(), &refs, features.clone())
            .expect("training traces are non-empty");
    let report = predictor
        .evaluate_scenario_frozen_truth(&common::exp42_test(), BASE_SEED + 330)
        .expect("test run produces checkpoints");
    let test = report.trace;
    let actuals = report.actuals;

    // The naive Eq. (1) predictor reads Old-zone level and speed; its
    // R_max is the maximum Old capacity of the default heap (1024 MB minus
    // Young and Permanent).
    let old_used_idx = features.variables().iter().position(|v| v == "old_used").expect("present");
    let old_speed_idx =
        features.variables().iter().position(|v| v == "swa_var_old").expect("present");
    let naive = NaivePredictor::new(832.0, old_used_idx, old_speed_idx, TTF_CAP_SECS);

    let mut rows: Vec<(String, Evaluation)> = Vec::new();
    for model in [&m5p as &dyn Regressor, &linreg, &regtree, &naive] {
        let eval = evaluate_regressor_on_trace(model, &features, &test, &actuals);
        rows.push((model.name().to_string(), eval));
    }

    // ARMA forecasts the Old-used series itself: at every checkpoint, fit
    // on the history so far and forecast the time until the series crosses
    // the Old capacity (the related-work approach, workload-trend based).
    let history: Vec<f64> = test.samples.iter().map(|s| s.old_used_mb).collect();
    let step = 15.0;
    let mut arma_preds = Vec::with_capacity(history.len());
    for i in 0..history.len() {
        let pred = if i >= 40 {
            ArmaModel::fit(&history[..=i], 2, 1)
                .map(|m| m.time_to_exhaustion(832.0, step, TTF_CAP_SECS))
                .unwrap_or(TTF_CAP_SECS)
        } else {
            TTF_CAP_SECS
        };
        arma_preds.push(pred);
    }
    rows.push(("ARMA(2,1)".to_string(), evaluate(&arma_preds, &actuals, &EvalConfig::default())));

    // The prediction board (future work): consensus of the three learners.
    let board = PredictionBoard::new(
        vec![
            M5pLearner::paper_default().fit_boxed(&dataset).expect("fits"),
            LinRegLearner::default().fit_boxed(&dataset).expect("fits"),
            RegTreeLearner { min_instances: 10, ..Default::default() }
                .fit_boxed(&dataset)
                .expect("fits"),
        ],
        Consensus::Median,
    )
    .expect("three members");
    rows.push((
        "PredictionBoard(median)".to_string(),
        evaluate_regressor_on_trace(&board, &features, &test, &actuals),
    ));
    rows
}

/// Renders the baseline comparison.
pub fn render_baselines(rows: &[(String, Evaluation)]) -> String {
    let table: Vec<Vec<String>> = rows.iter().map(|(l, e)| common::metric_row(l, e)).collect();
    common::render_table(
        "Baseline zoo on the dynamic scenario of Exp 4.2 (extensions)",
        &["model", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn m5p_wins_the_zoo_on_dynamic_aging() {
        let rows = baselines();
        let get =
            |name: &str| rows.iter().find(|(l, _)| l == name).map(|(_, e)| *e).expect("present");
        // On a changing-rate scenario M5P must not lose to the single
        // global linear model overall. (The naive Eq. (1) predictor can be
        // competitive on raw MAE *only* because the harness tells it which
        // resource ages — the inside knowledge the paper's Section 2
        // criticises it for needing.)
        assert!(get("M5P").mae <= get("LinearRegression").mae);
        // Near the crash — where prediction matters — M5P must beat every
        // non-tree comparator, including the naive formula, by a wide
        // margin.
        let m5p_post = get("M5P").post_mae.expect("run crashes");
        for other in ["LinearRegression", "NaiveEq1", "ARMA(2,1)"] {
            let post = get(other).post_mae.expect("run crashes");
            assert!(
                m5p_post * 2.0 < post,
                "M5P POST {m5p_post} should be far below {other} POST {post}"
            );
        }
    }
}
