//! WEKA-ARFF dataset export.
//!
//! The original paper published its training and test sets "in WEKA format"
//! (ref. \[21\]); this target regenerates the equivalent artefacts from our
//! testbed so results can be compared or re-analysed with WEKA or any other
//! toolchain: one ARFF file per experiment role under `results/datasets/`.

use crate::experiments::common::{self, BASE_SEED};
use aging_dataset::io::write_arff;
use aging_monitor::{build_dataset, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;
use std::fs;
use std::path::PathBuf;

/// Description of one exported file.
#[derive(Debug, Clone)]
pub struct ExportedDataset {
    /// Path written.
    pub path: String,
    /// Instances exported.
    pub instances: usize,
    /// Attributes (excluding the target).
    pub attributes: usize,
}

fn export(
    name: &str,
    traces: &[&RunTrace],
    features: &FeatureSet,
    out: &mut Vec<ExportedDataset>,
) -> std::io::Result<()> {
    let dir = PathBuf::from("results/datasets");
    fs::create_dir_all(&dir)?;
    let ds = build_dataset(traces, features, TTF_CAP_SECS);
    let path = dir.join(format!("{name}.arff"));
    let mut buf = Vec::new();
    write_arff(&ds, name, &mut buf).map_err(|e| std::io::Error::other(e.to_string()))?;
    fs::write(&path, buf)?;
    out.push(ExportedDataset {
        path: path.display().to_string(),
        instances: ds.len(),
        attributes: ds.n_attributes(),
    });
    Ok(())
}

/// Exports the training and test datasets of every experiment.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn run() -> std::io::Result<Vec<ExportedDataset>> {
    let mut out = Vec::new();

    // Experiment 4.1.
    let exp41_train: Vec<RunTrace> = [25u64, 50, 100, 200]
        .into_iter()
        .enumerate()
        .map(|(i, ebs)| {
            common::leak_run(format!("train-{ebs}eb"), ebs, 30).run(BASE_SEED + i as u64)
        })
        .collect();
    let refs: Vec<&RunTrace> = exp41_train.iter().collect();
    export("exp41_train", &refs, &FeatureSet::exp41(), &mut out)?;
    let test75 = common::leak_run("test-75eb", 75, 30).run(BASE_SEED + 100);
    let test150 = common::leak_run("test-150eb", 150, 30).run(BASE_SEED + 110);
    export("exp41_test_75eb", &[&test75], &FeatureSet::exp41(), &mut out)?;
    export("exp41_test_150eb", &[&test150], &FeatureSet::exp41(), &mut out)?;

    // Experiments 4.2/4.3 share the training runs.
    let exp42_train: Vec<RunTrace> = common::exp42_training()
        .iter()
        .enumerate()
        .map(|(i, s)| s.run(BASE_SEED + 10 + i as u64))
        .collect();
    let refs: Vec<&RunTrace> = exp42_train.iter().collect();
    export("exp42_train", &refs, &FeatureSet::exp42(), &mut out)?;
    export("exp43_train_heap_selected", &refs, &FeatureSet::exp43_heap(), &mut out)?;
    let exp42_test = common::exp42_test().run(BASE_SEED + 50);
    export("exp42_test_dynamic", &[&exp42_test], &FeatureSet::exp42(), &mut out)?;

    // Experiment 4.4.
    let exp44_train: Vec<RunTrace> = common::exp44_training()
        .iter()
        .enumerate()
        .map(|(i, s)| s.run(BASE_SEED + 20 + i as u64))
        .collect();
    let refs: Vec<&RunTrace> = exp44_train.iter().collect();
    export("exp44_train", &refs, &FeatureSet::exp44(), &mut out)?;
    let exp44_test = common::exp44_test().run(BASE_SEED + 70);
    export("exp44_test_two_resource", &[&exp44_test], &FeatureSet::exp44(), &mut out)?;

    Ok(out)
}

/// Renders the export summary.
pub fn render(files: &[ExportedDataset]) -> String {
    let rows: Vec<Vec<String>> = files
        .iter()
        .map(|f| vec![f.path.clone(), f.instances.to_string(), f.attributes.to_string()])
        .collect();
    common::render_table(
        "Exported WEKA-ARFF datasets (paper ref. [21])",
        &["file", "instances", "attributes"],
        &rows,
    )
}
