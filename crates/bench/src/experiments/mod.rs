//! One module per paper artefact (tables, figures, extensions).

pub mod ablations;
pub mod common;
pub mod datasets;
pub mod exp41;
pub mod exp42;
pub mod exp43;
pub mod exp44;
pub mod extensions;
pub mod figures;
pub mod mixes;
pub mod segmentation;
pub mod sophisticated;
