//! Drift detection via piecewise-linear segmentation — demonstrating the
//! paper's positioning against Cherkasova et al. (ref. \[15\]): their
//! framework assumes a system that "admits a static model … that does not
//! degrade or drift over time", while the paper "concentrate\[s\] on systems
//! that can degrade".
//!
//! We segment the Tomcat memory series of three runs — healthy, aging, and
//! periodically waving — and show that the segmentation-based diagnosis
//! separates them.

use crate::experiments::common::{self, BASE_SEED};
use aging_ml::segment::{diagnose, segment_series, SeriesDiagnosis};
use aging_testbed::{PeriodicSpec, RunTrace, Scenario};

/// Outcome for one analysed run.
#[derive(Debug, Clone)]
pub struct SegmentationRow {
    /// Run label.
    pub label: String,
    /// Number of linear segments found in the Tomcat memory series.
    pub n_segments: usize,
    /// Length-weighted slope in MB per checkpoint.
    pub diagnosis: SeriesDiagnosis,
    /// Run duration in seconds.
    pub duration_secs: f64,
}

fn analyse(label: &str, trace: &RunTrace) -> SegmentationRow {
    // Skip the first 20 minutes: every fresh JVM warms up (session state,
    // first promotions), which is not aging. The slope threshold of
    // 0.5 MB per 15 s checkpoint (~2 MB/min) separates the natural
    // high-water creep of a healthy server from a real leak.
    let series: Vec<f64> =
        trace.samples.iter().filter(|s| s.time_secs > 1200.0).map(|s| s.tomcat_mem_mb).collect();
    let segments = segment_series(&series, 8.0);
    let diagnosis = diagnose(&series, 8.0, 0.5);
    SegmentationRow {
        label: label.to_string(),
        n_segments: segments.len(),
        diagnosis,
        duration_secs: trace.duration_secs,
    }
}

/// Runs the three-way comparison.
pub fn run() -> Vec<SegmentationRow> {
    let healthy = Scenario::builder("healthy")
        .emulated_browsers(100)
        .duration_minutes(120)
        .build()
        .run(BASE_SEED + 500);
    let aging = common::leak_run("aging-N30", 100, 30).run(BASE_SEED + 501);
    let waving = Scenario::builder("waving")
        .emulated_browsers(100)
        .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 3)
        .build()
        .run(BASE_SEED + 502);

    vec![
        analyse("healthy (no injection)", &healthy),
        analyse("aging (N=30 leak)", &aging),
        analyse("periodic (no retention)", &waving),
    ]
}

/// Renders the comparison.
pub fn render(rows: &[SegmentationRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.n_segments.to_string(),
                format!("{:?}", r.diagnosis),
                format!("{:.0} s", r.duration_secs),
            ]
        })
        .collect();
    let mut out = common::render_table(
        "Piecewise-LR drift detection on the Tomcat memory series (related work [15])",
        &["run", "segments", "diagnosis", "duration"],
        &table,
    );
    out.push_str(
        "\nA healthy run is statically modellable (the regime [15] assumes);\n\
         an aging run drifts — exactly the regime the paper targets.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn segmentation_separates_aging_from_healthy() {
        let rows = run();
        let find = |label: &str| rows.iter().find(|r| r.label.starts_with(label)).expect("row");
        assert!(matches!(find("healthy").diagnosis, SeriesDiagnosis::Stable));
        assert!(matches!(find("aging").diagnosis, SeriesDiagnosis::Degrading { .. }));
        // The OS view of the no-retention pattern is flat after warm-up, so
        // it must NOT be diagnosed as degrading.
        assert!(!matches!(find("periodic").diagnosis, SeriesDiagnosis::Degrading { .. }));
    }
}
