//! Shared scenario definitions, evaluation plumbing and table printing for
//! the experiment harness.

use aging_ml::eval::{format_duration, Evaluation};
use aging_testbed::{MemLeakSpec, Scenario, SimConfig, ThreadLeakSpec};
use std::fs;
use std::path::Path;

/// Base seed for every experiment (results are deterministic given this).
pub const BASE_SEED: u64 = 20_100_628; // the DSN 2010 conference date

/// A whole-run constant memory leak execution (the paper's basic unit).
pub fn leak_run(name: impl Into<String>, ebs: u64, n: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .memory_leak(MemLeakSpec::new(n))
        .run_to_crash()
        .build()
}

/// A whole-run constant thread leak execution.
pub fn thread_run(name: impl Into<String>, ebs: u64, m: u32, t: u32) -> Scenario {
    Scenario::builder(name)
        .emulated_browsers(ebs)
        .thread_leak(ThreadLeakSpec::new(m, t))
        .run_to_crash()
        .build()
}

/// The Experiment 4.2/4.3 training set: one hour with no injection plus
/// three run-to-crash executions at N = 15, 30, 75, all at 100 EBs
/// ("we trained the model with 4 executions (1710 instances)").
pub fn exp42_training() -> Vec<Scenario> {
    let mut runs = vec![Scenario::builder("train-idle-1h")
        .emulated_browsers(100)
        .duration_minutes(60)
        .build()];
    for n in [15, 30, 75] {
        runs.push(leak_run(format!("train-N{n}"), 100, n));
    }
    runs
}

/// The Experiment 4.2 test scenario: injection rate changed every 20
/// minutes — none → N=30 → N=15 → N=75 until crash.
pub fn exp42_test() -> Scenario {
    Scenario::builder("exp42-dynamic")
        .emulated_browsers(100)
        .idle_phase_minutes(20)
        .leak_phase_minutes(20, MemLeakSpec::new(30), None)
        .leak_phase_minutes(20, MemLeakSpec::new(15), None)
        .final_leak_phase(MemLeakSpec::new(75), None)
        .build()
}

/// The Experiment 4.4 training set: six single-resource executions —
/// memory at N = 15, 30, 75 and threads at (M,T) = (15,120), (30,90),
/// (45,60) — "in all of them only one resource involved" — plus the
/// one-hour no-injection baseline run.
///
/// The idle run is a documented deviation from the paper's "6 executions":
/// without it, zero-consumption states appear in training only inside GC
/// flat zones (which carry mid-range TTF labels), so the idle first phase
/// of the test is predicted at ~7000 s instead of the cap. The paper's own
/// Figure 5 shows its model predicting very high TTF during that phase,
/// which implies its training data distinguished idleness; the 4.2 protocol
/// (which the authors reused for 4.3) did so with exactly this run.
pub fn exp44_training() -> Vec<Scenario> {
    let mut runs = vec![Scenario::builder("train-idle-1h")
        .emulated_browsers(100)
        .duration_minutes(60)
        .build()];
    for n in [15, 30, 75] {
        runs.push(leak_run(format!("train-mem-N{n}"), 100, n));
    }
    for (m, t) in [(15, 120), (30, 90), (45, 60)] {
        runs.push(thread_run(format!("train-thr-M{m}T{t}"), 100, m, t));
    }
    runs
}

/// The Experiment 4.4 test scenario: both resources injected with rates
/// changing every ~30 minutes.
pub fn exp44_test() -> Scenario {
    Scenario::builder("exp44-two-resource")
        .emulated_browsers(100)
        .idle_phase_minutes(30)
        .leak_phase_minutes(30, MemLeakSpec::new(30), Some(ThreadLeakSpec::new(30, 90)))
        .leak_phase_minutes(30, MemLeakSpec::new(15), Some(ThreadLeakSpec::new(15, 120)))
        .final_leak_phase(MemLeakSpec::new(75), Some(ThreadLeakSpec::new(45, 60)))
        .build()
}

/// A reduced-scale simulator configuration for the criterion benches: a
/// quarter-size heap crashes in simulated minutes instead of hours, so a
/// whole experiment fits in a benchmark iteration.
pub fn small_scale_config() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.heap.max_mb = 256.0;
    cfg.heap.young_mb = 48.0;
    cfg.heap.old_initial_mb = 64.0;
    cfg.heap.old_grow_step_mb = 48.0;
    cfg.heap.perm_mb = 32.0;
    cfg.system.max_process_threads = 300;
    debug_assert!(cfg.validate().is_empty());
    cfg
}

/// Formats one metric row the way the paper's tables do.
pub fn metric_row(label: &str, e: &Evaluation) -> Vec<String> {
    vec![
        label.to_string(),
        format_duration(e.mae),
        format_duration(e.s_mae),
        e.pre_mae.map_or("n/a".into(), format_duration),
        e.post_mae.map_or("n/a".into(), format_duration),
    ]
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = format!("== {title} ==\n");
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes a CSV series under `results/` (one figure per file) so the
/// figures can be re-plotted with any tool.
pub fn write_series_csv(
    filename: &str,
    header: &str,
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(filename);
    let mut body = String::from(header);
    body.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        body.push_str(&line.join(","));
        body.push('\n');
    }
    fs::write(&path, body)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_sets_have_paper_shapes() {
        assert_eq!(exp42_training().len(), 4);
        assert_eq!(exp44_training().len(), 7);
        assert_eq!(exp42_test().phases.len(), 4);
        assert_eq!(exp44_test().phases.len(), 4);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "T",
            &["a", "metric"],
            &[vec!["x".into(), "1 min 2 secs".into()], vec!["yy".into(), "3 secs".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("a  | metric"));
        assert!(t.lines().count() >= 4);
    }
}
