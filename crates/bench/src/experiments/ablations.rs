//! Ablations of the design choices the paper discusses qualitatively:
//!
//! - the sliding-window length `X` ("a long window is more noise tolerant,
//!   but also makes the method slower to reflect changes"),
//! - M5P's minimum instances per leaf (the paper fixes 10),
//! - smoothing and pruning on/off,
//! - the S-MAE security-margin threshold ("thresholds other than 10% are
//!   possible").

use crate::experiments::common::{self, BASE_SEED};
use aging_core::predictor::evaluate_regressor_on_trace;
use aging_ml::eval::{evaluate, EvalConfig, Evaluation};
use aging_ml::m5p::M5pLearner;
use aging_ml::Learner;
use aging_monitor::{build_dataset, label_ttf, FeatureSet, TTF_CAP_SECS};
use aging_testbed::RunTrace;

fn training_traces() -> Vec<RunTrace> {
    common::exp42_training()
        .iter()
        .enumerate()
        .map(|(i, s)| s.run(BASE_SEED + 10 + i as u64))
        .collect()
}

fn test_trace() -> (RunTrace, Vec<f64>) {
    // Constant-rate test keeps the ground truth cheap (crash labels).
    let trace = common::leak_run("ablation-test", 100, 30).run(BASE_SEED + 400);
    let actuals = label_ttf(&trace, TTF_CAP_SECS);
    (trace, actuals)
}

/// Sweeps the sliding-window length `X`.
pub fn window_sweep() -> Vec<(usize, Evaluation)> {
    let traces = training_traces();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let (test, actuals) = test_trace();
    [2usize, 4, 8, 12, 24, 48]
        .into_iter()
        .map(|window| {
            let features = FeatureSet::exp42().with_window(window);
            let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
            let model = M5pLearner::paper_default().fit(&ds).expect("non-empty dataset");
            let eval = evaluate_regressor_on_trace(&model, &features, &test, &actuals);
            (window, eval)
        })
        .collect()
}

/// Sweeps M5P's `min_instances` (leaf size).
pub fn leaf_size_sweep() -> Vec<(usize, Evaluation)> {
    let traces = training_traces();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let features = FeatureSet::exp42();
    let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
    let (test, actuals) = test_trace();
    [4usize, 10, 20, 50, 100]
        .into_iter()
        .map(|m| {
            let model =
                M5pLearner::default().with_min_instances(m).fit(&ds).expect("non-empty dataset");
            let eval = evaluate_regressor_on_trace(&model, &features, &test, &actuals);
            (m, eval)
        })
        .collect()
}

/// Toggles smoothing and pruning.
pub fn smoothing_pruning_matrix() -> Vec<(String, Evaluation, usize)> {
    let traces = training_traces();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let features = FeatureSet::exp42();
    let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
    let (test, actuals) = test_trace();
    let mut out = Vec::new();
    for (smooth, prune) in [(true, true), (true, false), (false, true), (false, false)] {
        let model = M5pLearner::paper_default()
            .with_smoothing(smooth)
            .with_pruning(prune)
            .fit(&ds)
            .expect("non-empty dataset");
        let eval = evaluate_regressor_on_trace(&model, &features, &test, &actuals);
        out.push((format!("smoothing={smooth} pruning={prune}"), eval, model.n_leaves()));
    }
    out
}

/// Sweeps the S-MAE security margin on a fixed model's predictions.
pub fn margin_sweep() -> Vec<(f64, f64)> {
    let traces = training_traces();
    let refs: Vec<&RunTrace> = traces.iter().collect();
    let features = FeatureSet::exp42();
    let ds = build_dataset(&refs, &features, TTF_CAP_SECS);
    let model = M5pLearner::paper_default().fit(&ds).expect("non-empty dataset");
    let (test, actuals) = test_trace();
    let mut online = aging_core::OnlineTtfPredictor::new(&model, features);
    let predictions: Vec<f64> = test.samples.iter().map(|s| online.observe(s)).collect();
    [0.0, 0.05, 0.10, 0.20, 0.50]
        .into_iter()
        .map(|margin| {
            let cfg = EvalConfig { security_margin: margin, ..Default::default() };
            (margin, evaluate(&predictions, &actuals, &cfg).s_mae)
        })
        .collect()
}

/// Renders all ablation tables.
pub fn render_all() -> String {
    let mut out = String::new();

    let rows: Vec<Vec<String>> = window_sweep()
        .into_iter()
        .map(|(w, e)| {
            let mut r = common::metric_row(&format!("X = {w}"), &e);
            r[0] = format!("X = {w}");
            r
        })
        .collect();
    out.push_str(&common::render_table(
        "Ablation: sliding-window length X (paper fixes ~12)",
        &["window", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = leaf_size_sweep()
        .into_iter()
        .map(|(m, e)| common::metric_row(&format!("min_instances = {m}"), &e))
        .collect();
    out.push_str(&common::render_table(
        "Ablation: M5P leaf size (paper uses 10)",
        &["config", "MAE", "S-MAE", "PRE-MAE", "POST-MAE"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = smoothing_pruning_matrix()
        .into_iter()
        .map(|(label, e, leaves)| {
            let mut r = common::metric_row(&label, &e);
            r.push(leaves.to_string());
            r
        })
        .collect();
    out.push_str(&common::render_table(
        "Ablation: M5P smoothing / pruning",
        &["config", "MAE", "S-MAE", "PRE-MAE", "POST-MAE", "leaves"],
        &rows,
    ));
    out.push('\n');

    let rows: Vec<Vec<String>> = margin_sweep()
        .into_iter()
        .map(|(m, smae)| vec![format!("{:.0}%", m * 100.0), aging_ml::eval::format_duration(smae)])
        .collect();
    out.push_str(&common::render_table(
        "Ablation: S-MAE security margin (paper uses 10%)",
        &["margin", "S-MAE"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "full experiment: run with --ignored (several simulated hours)"]
    fn margin_smae_is_monotone_decreasing() {
        let sweep = margin_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "S-MAE must shrink as the margin widens");
        }
    }
}
