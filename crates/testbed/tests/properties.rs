//! Property-based tests for the testbed: heap accounting invariants under
//! arbitrary operation sequences, OS-view monotonicity, and simulator
//! determinism across seeds and configurations.

use aging_testbed::config::HeapConfig;
use aging_testbed::jvm::Heap;
use aging_testbed::{MemLeakSpec, Scenario};
use proptest::prelude::*;

/// A random heap operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Transient(f64),
    Leak(f64),
    Release(f64),
    AddLive(f64),
    RemoveLive(f64),
    FullGc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.01..2.0f64).prop_map(Op::Transient),
        (0.01..4.0f64).prop_map(Op::Leak),
        (0.01..8.0f64).prop_map(Op::Release),
        (0.01..2.0f64).prop_map(Op::AddLive),
        (0.01..4.0f64).prop_map(Op::RemoveLive),
        Just(Op::FullGc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_invariants_hold_under_any_op_sequence(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut heap = Heap::new(HeapConfig::default());
        let mut live_added = 0.0f64;
        for op in ops {
            let result = match op {
                Op::Transient(mb) => heap.allocate_transient(mb),
                Op::Leak(mb) => heap.leak(mb),
                Op::Release(mb) => {
                    heap.release_leaked(mb);
                    Ok(())
                }
                Op::AddLive(mb) => {
                    live_added += mb;
                    heap.add_live(mb)
                }
                Op::RemoveLive(mb) => {
                    heap.remove_live(mb);
                    Ok(())
                }
                Op::FullGc => {
                    heap.full_gc();
                    Ok(())
                }
            };
            if result.is_err() {
                // OutOfMemory is a legal terminal outcome; the invariants
                // below must still hold at the moment of death.
                break;
            }
            // Invariants (while alive):
            prop_assert!(heap.young_used() < heap.young_capacity() + 1e-9);
            prop_assert!(heap.old_committed() <= heap.old_max() + 1e-9);
            prop_assert!(heap.old_used() >= 0.0);
            prop_assert!(heap.leaked_mb() >= 0.0);
            prop_assert!(heap.live_mb() >= 0.0);
            prop_assert!(heap.live_mb() <= live_added + 1e-9);
            prop_assert!(heap.used_total() <= heap.touched_high_water() + 1e-9);
        }
    }

    #[test]
    fn heap_high_water_is_monotone(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut heap = Heap::new(HeapConfig::default());
        let mut prev_hw = 0.0;
        for op in ops {
            let outcome = match op {
                Op::Transient(mb) => heap.allocate_transient(mb),
                Op::Leak(mb) => heap.leak(mb),
                Op::Release(mb) => { heap.release_leaked(mb); Ok(()) }
                Op::AddLive(mb) => heap.add_live(mb),
                Op::RemoveLive(mb) => { heap.remove_live(mb); Ok(()) }
                Op::FullGc => { heap.full_gc(); Ok(()) }
            };
            prop_assert!(heap.touched_high_water() >= prev_hw - 1e-9);
            prev_hw = heap.touched_high_water();
            if outcome.is_err() { break; }
        }
    }

    #[test]
    fn simulator_is_deterministic_across_configs(
        seed in 0u64..1000,
        ebs in 10u64..150,
        n in 5u32..40,
    ) {
        let scenario = Scenario::builder("prop")
            .emulated_browsers(ebs)
            .memory_leak(MemLeakSpec::new(n))
            .run_to_crash()
            .build();
        // Cap the run length for test speed: a small heap crashes quickly.
        let mut cfg = scenario.config;
        cfg.heap.max_mb = 256.0;
        cfg.heap.young_mb = 48.0;
        cfg.heap.old_initial_mb = 64.0;
        cfg.heap.old_grow_step_mb = 48.0;
        cfg.heap.perm_mb = 32.0;
        let scenario = Scenario { config: cfg, ..scenario };
        let a = scenario.run(seed);
        let b = scenario.run(seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn crash_time_decreases_with_leak_aggressiveness(seed in 0u64..50) {
        let run = |n: u32| {
            let mut cfg = aging_testbed::SimConfig::default();
            cfg.heap.max_mb = 256.0;
            cfg.heap.young_mb = 48.0;
            cfg.heap.old_initial_mb = 64.0;
            cfg.heap.old_grow_step_mb = 48.0;
            cfg.heap.perm_mb = 32.0;
            Scenario::builder("prop-n")
                .config(cfg)
                .emulated_browsers(100)
                .memory_leak(MemLeakSpec::new(n))
                .run_to_crash()
                .build()
                .run(seed)
        };
        let fast = run(5).crash.expect("aggressive leak crashes").time_secs;
        let slow = run(40).crash.expect("mild leak crashes").time_secs;
        prop_assert!(fast < slow, "N=5 ({fast}s) must crash before N=40 ({slow}s)");
    }

    #[test]
    fn samples_are_equally_spaced_and_finite(seed in 0u64..30) {
        let trace = Scenario::builder("spacing")
            .emulated_browsers(25)
            .duration_minutes(10)
            .build()
            .run(seed);
        prop_assert!(trace.samples.len() >= 38);
        for w in trace.samples.windows(2) {
            prop_assert!((w[1].time_secs - w[0].time_secs - 15.0).abs() < 1e-9);
        }
        for s in &trace.samples {
            prop_assert!(s.throughput_rps.is_finite());
            prop_assert!(s.tomcat_mem_mb.is_finite() && s.tomcat_mem_mb > 0.0);
            prop_assert!(s.heap_used_mb >= 0.0);
            prop_assert!(s.old_used_mb <= s.old_max_mb + 1e-9);
        }
    }
}
