//! The discrete-event simulation engine.
//!
//! [`Simulator`] drives the whole testbed: emulated browsers issue requests
//! into the Tomcat pool, requests allocate heap and (through the modified
//! search servlet) inject leaks, collectors run, the OS view tracks the
//! resident set, and a monitoring checkpoint fires every 15 seconds. The
//! run ends at a crash (heap exhaustion, thread exhaustion or system
//! memory exhaustion), when the phase list is exhausted, or at the
//! simulation-time cap.
//!
//! The simulator is deterministic given a seed and is `Clone`; cloning plus
//! [`Simulator::frozen_time_to_crash`] implements the paper's ground-truth
//! procedure for dynamic scenarios: "we fix the current injection rate and
//! then simulate the system until a crash occurs" (Section 4.2).

use crate::config::SimConfig;
use crate::inject::{MemLeakInjector, ThreadLeakInjector};
use crate::jvm::Heap;
use crate::os::OsView;
use crate::scenario::{MemInjection, Phase, Scenario};
use crate::server::{Admission, Request, Tomcat};
use crate::tpcw::Interaction;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why the server died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CrashKind {
    /// `java.lang.OutOfMemoryError`: the Old generation could not grow.
    OutOfMemory,
    /// The process hit the kernel thread limit.
    ThreadExhaustion,
    /// Physical RAM + swap exhausted; the OS killed the process.
    SystemMemoryExhausted,
}

/// A crash event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashInfo {
    /// Simulated time of the crash, in seconds.
    pub time_secs: f64,
    /// Failure mode.
    pub kind: CrashKind,
}

/// One 15-second monitoring checkpoint: the raw system metrics of the
/// paper's Table 2 (derived variables are computed by `aging-monitor`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Simulated time, seconds.
    pub time_secs: f64,
    /// Completed requests per second over the last interval.
    pub throughput_rps: f64,
    /// Concurrent emulated browsers (constant — Table 2 "Workload").
    pub workload_ebs: f64,
    /// Mean response time over the last interval, ms.
    pub response_time_ms: f64,
    /// Runnable work per worker (load proxy).
    pub system_load: f64,
    /// Disk used, MB.
    pub disk_used_mb: f64,
    /// Free swap, MB.
    pub swap_free_mb: f64,
    /// OS process count.
    pub num_processes: f64,
    /// Total system memory used, MB.
    pub system_mem_used_mb: f64,
    /// Tomcat resident set (OS perspective), MB.
    pub tomcat_mem_mb: f64,
    /// Threads owned by the Tomcat process.
    pub num_threads: f64,
    /// Open HTTP connections.
    pub http_connections: f64,
    /// Busy MySQL connections.
    pub mysql_connections: f64,
    /// Young generation capacity, MB.
    pub young_max_mb: f64,
    /// Old generation committed capacity, MB (grows at resizes).
    pub old_max_mb: f64,
    /// Young generation used, MB.
    pub young_used_mb: f64,
    /// Old generation used, MB.
    pub old_used_mb: f64,
    /// JVM-perspective heap used (young + old), MB.
    pub heap_used_mb: f64,
    /// Minor collections during the interval.
    pub gc_minor: f64,
    /// Major collections during the interval.
    pub gc_major: f64,
    /// Old-zone resizes during the interval.
    pub old_resizes: f64,
    /// Connections refused during the interval.
    pub refused: f64,
}

/// The full record of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Scenario name.
    pub scenario: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Checkpoints, in time order.
    pub samples: Vec<MetricSample>,
    /// The crash, if one occurred.
    pub crash: Option<CrashInfo>,
    /// Total simulated duration, seconds.
    pub duration_secs: f64,
}

impl RunTrace {
    /// Time to failure from `t_secs`, if the run crashed.
    pub fn ttf_from(&self, t_secs: f64) -> Option<f64> {
        self.crash.map(|c| (c.time_secs - t_secs).max(0.0))
    }
}

/// Result of advancing the simulation to its next observable point.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// A monitoring checkpoint fired.
    Checkpoint(MetricSample),
    /// The server crashed; no further progress is possible.
    Crashed(CrashInfo),
    /// The scenario ended without a crash (phases exhausted or time cap).
    Finished,
}

/// Memory-injection mode currently in force.
#[derive(Debug, Clone, PartialEq)]
enum MemMode {
    None,
    Leak(MemLeakInjector),
    Acquire(MemLeakInjector),
    Release(MemLeakInjector),
}

/// Discrete events, ordered by (time, sequence number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    Arrival { eb: u64, interaction: Interaction },
    Completion { eb: u64, arrival_ms: u64, interaction: Interaction },
    ThreadInject { phase: usize },
    Checkpoint,
    PeriodicGc,
    PhaseEnd { phase: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct IntervalAccum {
    completed: u64,
    response_sum_ms: f64,
    gc_minor: u64,
    gc_major: u64,
    resizes: u64,
    refused_baseline: u64,
}

/// The simulation engine. See the module docs.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    scenario_name: String,
    phases: Vec<Phase>,
    current_phase: usize,
    time_ms: u64,
    seq: u64,
    rng: StdRng,
    seed: u64,
    heap: Heap,
    os: OsView,
    tomcat: Tomcat,
    workload: Workload,
    injected_threads: u64,
    mem_mode: MemMode,
    thread_injector: Option<ThreadLeakInjector>,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    pending_gc_pause_ms: f64,
    interval: IntervalAccum,
    samples: Vec<MetricSample>,
    crash: Option<CrashInfo>,
    finished: bool,
    frozen: bool,
    keep_samples: bool,
}

impl Simulator {
    /// Builds a simulator for `scenario` under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the scenario's configuration fails validation or has no
    /// phases (both prevented by [`Scenario::builder`]).
    pub fn new(scenario: &Scenario, seed: u64) -> Self {
        let problems = scenario.config.validate();
        assert!(problems.is_empty(), "invalid configuration: {problems:?}");
        assert!(!scenario.phases.is_empty(), "scenario has no phases");

        let config = scenario.config;
        let mut heap = Heap::new(config.heap);
        let tomcat = Tomcat::new(config.server);
        let workload = Workload::new(config.workload);
        let os = OsView::new(config.system, config.server.mysql_rss_mb);

        // Long-lived session state for the EB population.
        heap.add_live(tomcat.session_footprint_mb(workload.emulated_browsers()))
            .expect("session state fits in a fresh heap");
        let _ = heap.drain_activity();

        let mut sim = Simulator {
            config,
            scenario_name: scenario.name.clone(),
            phases: scenario.phases.clone(),
            current_phase: 0,
            time_ms: 0,
            seq: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            seed,
            heap,
            os,
            tomcat,
            workload,
            injected_threads: 0,
            mem_mode: MemMode::None,
            thread_injector: None,
            events: BinaryHeap::new(),
            pending_gc_pause_ms: 0.0,
            interval: IntervalAccum::default(),
            samples: Vec::new(),
            crash: None,
            finished: false,
            frozen: false,
            keep_samples: true,
        };

        sim.enter_phase(0);
        // Stagger the emulated browsers over one mean think time.
        for eb in 0..sim.workload.emulated_browsers() {
            let offset =
                sim.workload.think_time_ms(&mut sim.rng) % sim.config.workload.think_time_mean_ms;
            let interaction = sim.workload.sample_interaction(&mut sim.rng);
            sim.push(offset as u64, Event::Arrival { eb, interaction });
        }
        sim.push(sim.config.checkpoint_interval_ms, Event::Checkpoint);
        if sim.config.heap.periodic_full_gc_secs > 0 {
            sim.push(sim.config.heap.periodic_full_gc_secs * 1000, Event::PeriodicGc);
        }
        sim
    }

    /// Current simulated time in ms.
    pub fn time_ms(&self) -> u64 {
        self.time_ms
    }

    /// The heap (for white-box assertions and figure series).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Threads currently owned by the Tomcat process.
    pub fn process_threads(&self) -> u64 {
        self.tomcat.base_threads() + self.injected_threads
    }

    /// The crash, if it already happened.
    pub fn crash(&self) -> Option<CrashInfo> {
        self.crash
    }

    /// Index of the phase currently in force.
    pub fn current_phase(&self) -> usize {
        self.current_phase
    }

    fn push(&mut self, at_ms: u64, event: Event) {
        self.seq += 1;
        self.events.push(Reverse((at_ms, self.seq, event)));
    }

    fn enter_phase(&mut self, idx: usize) {
        self.current_phase = idx;
        let phase = self.phases[idx].clone();
        self.mem_mode = match phase.mem {
            MemInjection::None => MemMode::None,
            MemInjection::Leak(spec) => MemMode::Leak(MemLeakInjector::new(spec, &mut self.rng)),
            MemInjection::Acquire(spec) => {
                MemMode::Acquire(MemLeakInjector::new(spec, &mut self.rng))
            }
            MemInjection::Release(spec) => {
                MemMode::Release(MemLeakInjector::new(spec, &mut self.rng))
            }
        };
        self.thread_injector = phase.threads.map(ThreadLeakInjector::new);
        if let Some(injector) = &self.thread_injector {
            let delay = injector.next_delay_ms(&mut self.rng);
            self.push(self.time_ms + delay, Event::ThreadInject { phase: idx });
        }
        if let Some(duration) = phase.duration_ms {
            self.push(self.time_ms + duration, Event::PhaseEnd { phase: idx });
        }
    }

    fn record_crash(&mut self, kind: CrashKind) {
        if self.crash.is_none() {
            self.crash = Some(CrashInfo { time_secs: self.time_ms as f64 / 1000.0, kind });
        }
    }

    /// Drains collector activity into the interval accumulators and the
    /// pending-pause budget, then runs the host-level crash checks.
    fn absorb_heap_activity(&mut self) {
        let act = self.heap.drain_activity();
        self.interval.gc_minor += act.minor;
        self.interval.gc_major += act.major;
        self.interval.resizes += act.resizes;
        self.pending_gc_pause_ms += act.pause_ms;
        let threads = self.process_threads();
        if self.os.memory_exhausted(&self.heap, threads) {
            self.record_crash(CrashKind::SystemMemoryExhausted);
        }
    }

    fn schedule_completion(&mut self, request: Request) {
        let pause = std::mem::take(&mut self.pending_gc_pause_ms);
        let service =
            self.tomcat.service_time_ms(request.interaction, pause, &mut self.rng).max(1.0);
        self.push(
            self.time_ms + service as u64,
            Event::Completion {
                eb: request.eb,
                arrival_ms: request.arrival_ms,
                interaction: request.interaction,
            },
        );
    }

    fn schedule_next_request(&mut self, eb: u64) {
        let think = self.workload.think_time_ms(&mut self.rng) as u64;
        let interaction = self.workload.sample_interaction(&mut self.rng);
        self.push(self.time_ms + think.max(1), Event::Arrival { eb, interaction });
    }

    fn handle_search_injection(&mut self) {
        match &mut self.mem_mode {
            MemMode::None => {}
            MemMode::Leak(injector) | MemMode::Acquire(injector) => {
                let mb = injector.on_search_request(&mut self.rng);
                if mb > 0.0 && self.heap.leak(mb).is_err() {
                    self.record_crash(CrashKind::OutOfMemory);
                }
            }
            MemMode::Release(injector) => {
                let mb = injector.on_search_request(&mut self.rng);
                if mb > 0.0 {
                    self.heap.release_leaked(mb);
                }
            }
        }
    }

    fn take_sample(&mut self) -> MetricSample {
        let interval_secs = self.config.checkpoint_interval_ms as f64 / 1000.0;
        let acc = self.interval;
        let threads = self.process_threads();
        let refused_now = self.tomcat.refused_total();
        let sample = MetricSample {
            time_secs: self.time_ms as f64 / 1000.0,
            throughput_rps: acc.completed as f64 / interval_secs,
            workload_ebs: self.workload.emulated_browsers() as f64,
            response_time_ms: if acc.completed > 0 {
                acc.response_sum_ms / acc.completed as f64
            } else {
                0.0
            },
            system_load: self.tomcat.system_load(),
            disk_used_mb: self.os.disk_used_mb(),
            swap_free_mb: self.os.swap_free_mb(&self.heap, threads),
            num_processes: self.os.num_processes() as f64,
            system_mem_used_mb: self.os.system_mem_used_mb(&self.heap, threads),
            tomcat_mem_mb: self.os.tomcat_rss_mb(&self.heap, threads),
            num_threads: threads as f64,
            http_connections: self.tomcat.http_connections() as f64,
            mysql_connections: self.tomcat.mysql_connections() as f64,
            young_max_mb: self.heap.young_capacity(),
            old_max_mb: self.heap.old_committed(),
            young_used_mb: self.heap.young_used(),
            old_used_mb: self.heap.old_used(),
            heap_used_mb: self.heap.used_total(),
            gc_minor: acc.gc_minor as f64,
            gc_major: acc.gc_major as f64,
            old_resizes: acc.resizes as f64,
            refused: (refused_now - acc.refused_baseline) as f64,
        };
        self.interval = IntervalAccum { refused_baseline: refused_now, ..Default::default() };
        sample
    }

    /// Advances to the next checkpoint, crash or end of scenario.
    pub fn step(&mut self) -> StepOutcome {
        loop {
            if let Some(crash) = self.crash {
                return StepOutcome::Crashed(crash);
            }
            if self.finished {
                return StepOutcome::Finished;
            }
            let Some(Reverse((at_ms, _, event))) = self.events.pop() else {
                self.finished = true;
                return StepOutcome::Finished;
            };
            if at_ms > self.config.max_sim_time_ms {
                self.finished = true;
                return StepOutcome::Finished;
            }
            self.time_ms = at_ms.max(self.time_ms);

            match event {
                Event::Arrival { eb, interaction } => {
                    let request = Request { eb, arrival_ms: self.time_ms, interaction };
                    match self.tomcat.offer(request) {
                        Admission::Served => self.schedule_completion(request),
                        Admission::Queued => {}
                        Admission::Refused => self.schedule_next_request(eb),
                    }
                }
                Event::Completion { eb, arrival_ms, interaction } => {
                    self.interval.completed += 1;
                    self.interval.response_sum_ms += (self.time_ms - arrival_ms) as f64;
                    self.os.log_requests(1);
                    if self.heap.allocate_transient(self.tomcat.alloc_per_request_mb()).is_err() {
                        self.record_crash(CrashKind::OutOfMemory);
                    }
                    if interaction.hits_search_servlet() {
                        self.handle_search_injection();
                    }
                    self.absorb_heap_activity();
                    if let Some(next) = self.tomcat.complete() {
                        self.schedule_completion(next);
                    }
                    self.schedule_next_request(eb);
                }
                Event::ThreadInject { phase } => {
                    if phase != self.current_phase || self.crash.is_some() {
                        continue;
                    }
                    let Some(injector) = &mut self.thread_injector else { continue };
                    let count = injector.injection_size(&mut self.rng);
                    let delay = injector.next_delay_ms(&mut self.rng);
                    self.injected_threads += count;
                    let footprint = count as f64 * self.config.heap.thread_heap_mb;
                    if self.heap.add_live(footprint).is_err() {
                        self.record_crash(CrashKind::OutOfMemory);
                    }
                    self.absorb_heap_activity();
                    if self.os.thread_limit_exceeded(self.process_threads()) {
                        self.record_crash(CrashKind::ThreadExhaustion);
                    }
                    self.push(self.time_ms + delay.max(1), Event::ThreadInject { phase });
                }
                Event::Checkpoint => {
                    let sample = self.take_sample();
                    if self.keep_samples {
                        self.samples.push(sample);
                    }
                    self.push(self.time_ms + self.config.checkpoint_interval_ms, Event::Checkpoint);
                    return StepOutcome::Checkpoint(sample);
                }
                Event::PeriodicGc => {
                    self.heap.full_gc();
                    self.absorb_heap_activity();
                    self.push(
                        self.time_ms + self.config.heap.periodic_full_gc_secs * 1000,
                        Event::PeriodicGc,
                    );
                }
                Event::PhaseEnd { phase } => {
                    if self.frozen || phase != self.current_phase {
                        continue;
                    }
                    if phase + 1 >= self.phases.len() {
                        self.finished = true;
                        return StepOutcome::Finished;
                    }
                    self.enter_phase(phase + 1);
                }
            }
        }
    }

    /// Runs the scenario to its end and returns the trace.
    pub fn run_to_completion(mut self) -> RunTrace {
        while let StepOutcome::Checkpoint(_) = self.step() {}
        RunTrace {
            scenario: self.scenario_name,
            seed: self.seed,
            samples: self.samples,
            crash: self.crash,
            duration_secs: self.time_ms as f64 / 1000.0,
        }
    }

    /// The paper's ground truth for dynamic scenarios: clones the simulator,
    /// freezes the current phase (injection rates never change again) and
    /// runs until the crash. Returns the time to failure in seconds from
    /// the current instant, capped at `cap_secs` ("infinite" when the
    /// frozen state never crashes — the paper caps at 3 h = 10 800 s).
    pub fn frozen_time_to_crash(&self, cap_secs: f64) -> f64 {
        let mut fork = self.clone();
        fork.frozen = true;
        fork.keep_samples = false;
        fork.samples = Vec::new();
        let cap_ms = (cap_secs * 1000.0) as u64;
        fork.config.max_sim_time_ms = self.time_ms.saturating_add(cap_ms).saturating_add(60_000);
        let start_ms = self.time_ms;
        loop {
            match fork.step() {
                StepOutcome::Crashed(crash) => {
                    return ((crash.time_secs - start_ms as f64 / 1000.0).max(0.0)).min(cap_secs);
                }
                StepOutcome::Finished => return cap_secs,
                StepOutcome::Checkpoint(_) => {
                    if fork.time_ms.saturating_sub(start_ms) > cap_ms {
                        return cap_secs;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{MemLeakSpec, PeriodicSpec, ThreadLeakSpec};

    fn leak_scenario(ebs: u64, n: u32) -> Scenario {
        Scenario::builder(format!("leak-{ebs}eb-N{n}"))
            .emulated_browsers(ebs)
            .memory_leak(MemLeakSpec::new(n))
            .run_to_crash()
            .build()
    }

    #[test]
    fn aggressive_leak_crashes_with_oom() {
        let trace = leak_scenario(100, 15).run(1);
        let crash = trace.crash.expect("N=15 at 100 EBs must crash");
        assert_eq!(crash.kind, CrashKind::OutOfMemory);
        assert!(crash.time_secs > 600.0, "crash at {} too early", crash.time_secs);
        assert!(crash.time_secs < 6.0 * 3600.0, "crash at {} too late", crash.time_secs);
        assert!(!trace.samples.is_empty());
    }

    #[test]
    fn no_injection_does_not_crash_within_two_hours() {
        let s = Scenario::builder("idle").emulated_browsers(100).duration_minutes(120).build();
        let trace = s.run(2);
        assert!(trace.crash.is_none());
        assert!((trace.duration_secs - 7200.0).abs() < 20.0);
        // ~480 checkpoints at 15 s.
        assert!((470..=482).contains(&trace.samples.len()), "{}", trace.samples.len());
    }

    #[test]
    fn same_seed_same_trace() {
        let s = leak_scenario(50, 30);
        let a = s.run(7);
        let b = s.run(7);
        assert_eq!(a, b, "simulation must be deterministic given a seed");
    }

    #[test]
    fn different_seeds_differ() {
        let s = leak_scenario(50, 30);
        let a = s.run(7);
        let b = s.run(8);
        assert_ne!(
            a.crash.map(|c| c.time_secs),
            b.crash.map(|c| c.time_secs),
            "different seeds should produce different crash times"
        );
    }

    #[test]
    fn heavier_workload_crashes_sooner() {
        // Leak injection is workload-dependent (search-servlet driven).
        let fast = leak_scenario(200, 30).run(3).crash.unwrap().time_secs;
        let slow = leak_scenario(50, 30).run(3).crash.unwrap().time_secs;
        assert!(
            fast * 2.0 < slow,
            "200 EBs ({fast}s) must crash much sooner than 50 EBs ({slow}s)"
        );
    }

    #[test]
    fn smaller_n_crashes_sooner() {
        let fast = leak_scenario(100, 15).run(4).crash.unwrap().time_secs;
        let slow = leak_scenario(100, 75).run(4).crash.unwrap().time_secs;
        assert!(fast * 2.5 < slow, "N=15 ({fast}s) must crash well before N=75 ({slow}s)");
    }

    #[test]
    fn thread_leak_crashes_by_thread_exhaustion() {
        let s = Scenario::builder("threads")
            .emulated_browsers(50)
            .thread_leak(ThreadLeakSpec::new(45, 60))
            .run_to_crash()
            .build();
        let trace = s.run(5);
        let crash = trace.crash.expect("aggressive thread leak must crash");
        assert!(
            matches!(crash.kind, CrashKind::ThreadExhaustion | CrashKind::SystemMemoryExhausted),
            "unexpected crash kind {:?}",
            crash.kind
        );
    }

    #[test]
    fn metrics_are_plausible_under_load() {
        let s = Scenario::builder("metrics").emulated_browsers(100).duration_minutes(20).build();
        let trace = s.run(6);
        let mid = &trace.samples[trace.samples.len() / 2];
        // ~14.3 rps expected at 100 EBs / 7 s think time.
        assert!((8.0..20.0).contains(&mid.throughput_rps), "rps {}", mid.throughput_rps);
        assert!(mid.response_time_ms > 10.0 && mid.response_time_ms < 2000.0);
        assert_eq!(mid.workload_ebs, 100.0);
        assert!(mid.num_threads >= 76.0);
        assert!(mid.tomcat_mem_mb > 100.0);
        assert!(mid.system_mem_used_mb > mid.tomcat_mem_mb);
        assert!(mid.old_max_mb >= 256.0);
        assert!(mid.heap_used_mb <= 1024.0);
    }

    #[test]
    fn os_view_is_monotone_under_pure_leak() {
        let trace = leak_scenario(100, 30).run(9);
        let mut prev = 0.0;
        for s in &trace.samples {
            assert!(
                s.tomcat_mem_mb >= prev - 1e-9,
                "OS-perspective memory must never shrink (t={})",
                s.time_secs
            );
            prev = s.tomcat_mem_mb;
        }
    }

    #[test]
    fn jvm_view_waves_but_os_view_flat_under_periodic_pattern() {
        let s = Scenario::builder("fig2-like")
            .emulated_browsers(100)
            .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 3)
            .build();
        let trace = s.run(10);
        assert!(trace.crash.is_none(), "no-retention pattern must not crash");
        // Skip the first cycle (warm-up): afterwards the OS view is flat
        // while the JVM view keeps oscillating.
        let tail: Vec<_> = trace.samples.iter().filter(|s| s.time_secs > 3600.0).collect();
        let os_min = tail.iter().map(|s| s.tomcat_mem_mb).fold(f64::INFINITY, f64::min);
        let os_max = tail.iter().map(|s| s.tomcat_mem_mb).fold(0.0, f64::max);
        let jvm_min = tail.iter().map(|s| s.heap_used_mb).fold(f64::INFINITY, f64::min);
        let jvm_max = tail.iter().map(|s| s.heap_used_mb).fold(0.0, f64::max);
        assert!(
            os_max - os_min < 80.0,
            "OS view should be nearly flat, spread {}",
            os_max - os_min
        );
        assert!(
            jvm_max - jvm_min > 100.0,
            "JVM view should wave by >100 MB, spread {}",
            jvm_max - jvm_min
        );
    }

    #[test]
    fn retention_pattern_crashes_eventually() {
        let s = Scenario::builder("exp43-like")
            .emulated_browsers(100)
            .periodic_cycles(PeriodicSpec::paper_exp43(), 30)
            .run_to_crash()
            .build();
        let trace = s.run(11);
        let crash = trace.crash.expect("net retention must exhaust the heap");
        assert!(
            crash.time_secs > 3600.0,
            "crash at {}s: too fast for masked aging",
            crash.time_secs
        );
    }

    #[test]
    fn phase_changes_change_consumption_rate() {
        let s = Scenario::builder("phased")
            .emulated_browsers(100)
            .idle_phase_minutes(20)
            .final_leak_phase(MemLeakSpec::new(15), None)
            .build();
        let trace = s.run(12);
        // During the idle phase the old-gen usage must stay near its start;
        // afterwards it must climb.
        let early = &trace.samples[30]; // ~7.5 min
        let later_idx = trace.samples.iter().position(|s| s.time_secs > 1800.0).unwrap();
        let later = &trace.samples[later_idx];
        assert!(later.old_used_mb > early.old_used_mb + 50.0);
    }

    #[test]
    fn frozen_fork_matches_reality_when_rate_is_constant() {
        // For a constant-rate scenario, the frozen ground truth at time t
        // must be close to (real crash time - t).
        let scenario = leak_scenario(100, 30);
        let mut sim = Simulator::new(&scenario, 13);
        let mut checked = 0;
        let real_crash = scenario.run(13).crash.unwrap().time_secs;
        while let StepOutcome::Checkpoint(sample) = sim.step() {
            if sample.time_secs >= 1200.0 && checked < 3 {
                let frozen = sim.frozen_time_to_crash(10_800.0);
                let actual = real_crash - sample.time_secs;
                let err = (frozen - actual).abs();
                assert!(
                    err < actual.max(300.0) * 0.35 + 120.0,
                    "frozen {frozen} vs actual {actual} at t={}",
                    sample.time_secs
                );
                checked += 1;
            }
            if checked >= 3 {
                break;
            }
        }
        assert_eq!(checked, 3, "expected three ground-truth checks");
    }

    #[test]
    fn frozen_fork_of_idle_phase_reports_cap() {
        let s = Scenario::builder("idle-then-leak")
            .emulated_browsers(100)
            .idle_phase_minutes(30)
            .final_leak_phase(MemLeakSpec::new(30), None)
            .build();
        let mut sim = Simulator::new(&s, 14);
        // Step to ~5 minutes: still idle.
        let mut t = 0.0;
        while t < 300.0 {
            match sim.step() {
                StepOutcome::Checkpoint(sample) => t = sample.time_secs,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let frozen = sim.frozen_time_to_crash(10_800.0);
        assert_eq!(frozen, 10_800.0, "an idle system never crashes: TTF = cap");
    }

    #[test]
    fn ttf_from_helper() {
        let trace = leak_scenario(100, 15).run(15);
        let crash_t = trace.crash.unwrap().time_secs;
        assert_eq!(trace.ttf_from(crash_t - 100.0), Some(100.0));
        assert_eq!(trace.ttf_from(crash_t + 50.0), Some(0.0));
        let idle = Scenario::builder("i").emulated_browsers(10).duration_minutes(5).build().run(1);
        assert_eq!(idle.ttf_from(0.0), None);
    }
}
