//! TPC-W emulated browsers.
//!
//! TPC-W clients "access the web site in sessions … Between two consecutive
//! requests from the same EB, TPC-W computes a thinking time". Think times
//! follow the spec's truncated negative-exponential distribution (7 s mean,
//! 70 s cap) and the interaction mix is the *shopping* distribution the
//! paper uses throughout, reduced to the one distinction the experiments
//! depend on: whether an interaction executes the (modified, leak-injecting)
//! search servlet.

use crate::config::WorkloadConfig;
use crate::tpcw::{Interaction, TpcwMix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The emulated-browser population driving the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    config: WorkloadConfig,
}

impl Workload {
    /// Creates a workload generator.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero browsers or
    /// non-positive think time).
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.emulated_browsers > 0, "need at least one emulated browser");
        assert!(config.think_time_mean_ms > 0.0, "think time mean must be positive");
        Workload { config }
    }

    /// Number of concurrent emulated browsers (constant per TPC-W).
    pub fn emulated_browsers(&self) -> u64 {
        self.config.emulated_browsers
    }

    /// Samples a think time in ms: truncated negative exponential.
    pub fn think_time_ms<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let t = -self.config.think_time_mean_ms * u.ln();
        t.min(self.config.think_time_max_ms)
    }

    /// Samples the next interaction from the configured TPC-W mix.
    pub fn sample_interaction<R: Rng>(&self, rng: &mut R) -> Interaction {
        self.config.mix.sample(rng)
    }

    /// The TPC-W mix in force.
    pub fn mix(&self) -> TpcwMix {
        self.config.mix
    }

    /// Expected steady-state request rate in requests/second (each EB
    /// cycles think → request; service time is negligible next to the
    /// think time).
    pub fn expected_rps(&self) -> f64 {
        self.config.emulated_browsers as f64 / (self.config.think_time_mean_ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(ebs: u64) -> Workload {
        Workload::new(WorkloadConfig { emulated_browsers: ebs, ..Default::default() })
    }

    #[test]
    #[should_panic(expected = "at least one emulated browser")]
    fn zero_ebs_panics() {
        let _ = Workload::new(WorkloadConfig { emulated_browsers: 0, ..Default::default() });
    }

    #[test]
    fn think_time_mean_is_close_to_config() {
        let w = workload(100);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| w.think_time_ms(&mut rng)).sum::<f64>() / n as f64;
        // Truncation at 70 s shaves a little off the 7 s mean.
        assert!((6_300.0..7_300.0).contains(&mean), "mean think time {mean}");
    }

    #[test]
    fn think_time_respects_truncation() {
        let w = workload(1);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50_000 {
            let t = w.think_time_ms(&mut rng);
            assert!(t > 0.0 && t <= 70_000.0);
        }
    }

    #[test]
    fn search_servlet_fraction_matches_shopping_mix() {
        let w = workload(50);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let hits = (0..n).filter(|_| w.sample_interaction(&mut rng).hits_search_servlet()).count();
        let frac = hits as f64 / n as f64;
        assert!((0.185..0.215).contains(&frac), "search fraction {frac}");
        assert_eq!(w.mix(), crate::tpcw::TpcwMix::Shopping);
    }

    #[test]
    fn expected_rps_scales_with_population() {
        assert!((workload(100).expected_rps() - 14.2857).abs() < 0.01);
        assert!((workload(25).expected_rps() - 3.5714).abs() < 0.01);
    }
}
