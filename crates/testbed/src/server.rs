//! The Tomcat application-server model: a bounded worker pool with a
//! bounded accept queue, plus the MySQL connection pool.
//!
//! The server is a pure state machine; the event loop in [`crate::sim`]
//! drives it. Service times grow with pool contention and absorb pending
//! garbage-collection pauses, which is how heap pressure surfaces as the
//! response-time degradation that often accompanies software aging
//! (Section 1 of the paper).

use crate::config::ServerConfig;
use crate::tpcw::Interaction;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One in-flight TPC-W interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Index of the emulated browser that issued it.
    pub eb: u64,
    /// Arrival timestamp in simulation ms.
    pub arrival_ms: u64,
    /// The TPC-W interaction being performed.
    pub interaction: Interaction,
}

/// Outcome of offering a request to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A worker picked the request up immediately.
    Served,
    /// All workers busy; the request waits in the accept queue.
    Queued,
    /// Queue full: connection refused.
    Refused,
}

/// The Tomcat worker pool and accept queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tomcat {
    config: ServerConfig,
    active: u64,
    queue: VecDeque<Request>,
    refused_total: u64,
}

impl Tomcat {
    /// Creates an idle server.
    pub fn new(config: ServerConfig) -> Self {
        Tomcat { config, active: 0, queue: VecDeque::new(), refused_total: 0 }
    }

    /// Requests currently being serviced by workers.
    pub fn active(&self) -> u64 {
        self.active
    }

    /// Requests waiting in the accept queue.
    pub fn queued(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Open HTTP connections (active + queued) — a Table-2 variable.
    pub fn http_connections(&self) -> u64 {
        self.active + self.queued()
    }

    /// Busy MySQL pool connections — a Table-2 variable. Every in-service
    /// interaction holds one connection, saturating at the pool size.
    pub fn mysql_connections(&self) -> u64 {
        self.active.min(self.config.mysql_pool)
    }

    /// UNIX-style load proxy: runnable work per worker.
    pub fn system_load(&self) -> f64 {
        (self.active + self.queued()) as f64 / self.config.worker_threads as f64
    }

    /// Threads the Tomcat process owns (pre-spawned pool + housekeeping),
    /// excluding injected leak threads.
    pub fn base_threads(&self) -> u64 {
        self.config.worker_threads + self.config.housekeeping_threads
    }

    /// Lifetime count of refused connections.
    pub fn refused_total(&self) -> u64 {
        self.refused_total
    }

    /// Offers a request.
    pub fn offer(&mut self, request: Request) -> Admission {
        if self.active < self.config.worker_threads {
            self.active += 1;
            Admission::Served
        } else if self.http_connections() < self.config.max_http_connections {
            self.queue.push_back(request);
            Admission::Queued
        } else {
            self.refused_total += 1;
            Admission::Refused
        }
    }

    /// Completes one in-service request; if the queue is non-empty the next
    /// request immediately enters service and is returned so the caller can
    /// schedule its completion.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service.
    pub fn complete(&mut self) -> Option<Request> {
        assert!(self.active > 0, "complete() without an active request");
        match self.queue.pop_front() {
            Some(next) => Some(next), // worker moves straight to the next request
            None => {
                self.active -= 1;
                None
            }
        }
    }

    /// Samples the total service time for a request in ms: per-interaction
    /// CPU time scaled by pool contention, plus the interaction's DB
    /// round-trip weight, plus any stop-the-world GC pause the caller
    /// passes in, with ±20 % multiplicative jitter.
    pub fn service_time_ms<R: Rng>(
        &self,
        interaction: Interaction,
        pending_gc_pause_ms: f64,
        rng: &mut R,
    ) -> f64 {
        let base = self.config.base_service_ms * interaction.cpu_weight();
        let db = self.config.db_query_ms * interaction.db_weight();
        let contention = 1.0 + self.active as f64 / self.config.worker_threads as f64;
        let jitter = rng.gen_range(0.8..1.2);
        (base * contention + db) * jitter + pending_gc_pause_ms
    }

    /// Transient Young-generation allocation per request, in MB.
    pub fn alloc_per_request_mb(&self) -> f64 {
        self.config.alloc_per_request_mb
    }

    /// Live session footprint for `ebs` emulated browsers, in MB.
    pub fn session_footprint_mb(&self, ebs: u64) -> f64 {
        ebs as f64 * self.config.session_mb_per_eb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server() -> Tomcat {
        Tomcat::new(ServerConfig::default())
    }

    fn req(eb: u64) -> Request {
        Request { eb, arrival_ms: 0, interaction: Interaction::Home }
    }

    #[test]
    fn admits_until_workers_full_then_queues_then_refuses() {
        let cfg = ServerConfig { worker_threads: 2, max_http_connections: 3, ..Default::default() };
        let mut t = Tomcat::new(cfg);
        assert_eq!(t.offer(req(0)), Admission::Served);
        assert_eq!(t.offer(req(1)), Admission::Served);
        assert_eq!(t.offer(req(2)), Admission::Queued);
        assert_eq!(t.offer(req(3)), Admission::Refused);
        assert_eq!(t.active(), 2);
        assert_eq!(t.queued(), 1);
        assert_eq!(t.http_connections(), 3);
        assert_eq!(t.refused_total(), 1);
    }

    #[test]
    fn completion_promotes_queued_request() {
        let cfg = ServerConfig { worker_threads: 1, ..Default::default() };
        let mut t = Tomcat::new(cfg);
        t.offer(req(0));
        t.offer(req(1));
        let next = t.complete();
        assert_eq!(next, Some(req(1)));
        assert_eq!(t.active(), 1, "worker moved on to the queued request");
        assert_eq!(t.complete(), None);
        assert_eq!(t.active(), 0);
    }

    #[test]
    #[should_panic(expected = "without an active request")]
    fn complete_on_idle_panics() {
        server().complete();
    }

    #[test]
    fn mysql_connections_saturate_at_pool() {
        let cfg = ServerConfig { worker_threads: 100, mysql_pool: 10, ..Default::default() };
        let mut t = Tomcat::new(cfg);
        for i in 0..50 {
            t.offer(req(i));
        }
        assert_eq!(t.mysql_connections(), 10);
    }

    #[test]
    fn service_time_grows_with_contention() {
        let mut t = server();
        let mut rng = StdRng::seed_from_u64(1);
        let mut idle_avg = 0.0;
        for _ in 0..200 {
            idle_avg += t.service_time_ms(Interaction::Home, 0.0, &mut rng);
        }
        idle_avg /= 200.0;
        for i in 0..60 {
            t.offer(req(i));
        }
        let mut busy_avg = 0.0;
        for _ in 0..200 {
            busy_avg += t.service_time_ms(Interaction::Home, 0.0, &mut rng);
        }
        busy_avg /= 200.0;
        assert!(
            busy_avg > idle_avg * 1.3,
            "contention must slow requests: {idle_avg} vs {busy_avg}"
        );
    }

    #[test]
    fn search_is_heavier_and_gc_pause_is_absorbed() {
        let t = server();
        let mut rng = StdRng::seed_from_u64(2);
        let mut search = 0.0;
        let mut browse = 0.0;
        for _ in 0..300 {
            search += t.service_time_ms(Interaction::SearchRequest, 0.0, &mut rng);
            browse += t.service_time_ms(Interaction::Home, 0.0, &mut rng);
        }
        assert!(search > browse);
        let with_pause = t.service_time_ms(Interaction::Home, 900.0, &mut rng);
        assert!(with_pause >= 900.0);
    }

    #[test]
    fn load_and_threads() {
        let mut t = server();
        assert_eq!(t.system_load(), 0.0);
        for i in 0..32 {
            t.offer(req(i));
        }
        assert!((t.system_load() - 0.5).abs() < 1e-9);
        assert_eq!(t.base_threads(), 76);
        assert!((t.session_footprint_mb(100) - 35.0).abs() < 1e-9);
        assert_eq!(t.alloc_per_request_mb(), 0.30);
    }
}
