//! The generational Java heap model.
//!
//! This is the substrate behind both of the paper's motivating examples
//! (Section 2.1):
//!
//! - **Example 1** (Figure 1): the Old zone starts at a fraction of the
//!   maximum heap and the "Heap Management System resizes it, allocating
//!   more memory to it if available" when a full collection leaves it too
//!   occupied. Between resizes the used memory grows progressively; right
//!   after a resize+collection the OS-level curve goes flat (freed objects
//!   do not shrink the resident set), producing the staircase the paper
//!   shows at 2150 s, 4350 s and 5150 s.
//! - **Example 2** (Figure 2): the JVM-level view (`young + old` used) can
//!   wave up and down while the OS-level view stays constant, because the
//!   OS only sees the high-water mark ([`crate::os`]).
//!
//! The model tracks four kinds of Old-generation bytes separately:
//! *promoted garbage* (reclaimable by a major collection), *live* data
//! (sessions, thread footprints — reachable, never reclaimed while the
//! owner exists), *leaked* data (the injected aging — never reclaimable)
//! and the transient Young contents.

use crate::config::HeapConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised when the heap cannot satisfy an allocation even after a
/// full collection and a resize attempt: the JVM throws `OutOfMemoryError`
/// and Tomcat crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "java.lang.OutOfMemoryError: Java heap space")
    }
}

impl std::error::Error for OutOfMemory {}

/// Counters describing collector activity since the last drain.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GcActivity {
    /// Minor (Young) collections.
    pub minor: u64,
    /// Major (full) collections.
    pub major: u64,
    /// Old-zone resize events.
    pub resizes: u64,
    /// Accumulated stop-the-world pause, in ms.
    pub pause_ms: f64,
}

/// The generational heap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heap {
    config: HeapConfig,
    young_used: f64,
    old_committed: f64,
    /// Promoted short-lived garbage: reclaimable by a major collection.
    old_promoted: f64,
    /// Live data (sessions, thread stacks' heap footprint): not reclaimable.
    old_live: f64,
    /// Injected leaks: never reclaimable.
    old_leaked: f64,
    /// Running maximum of `young_used + old_used`: what the OS has seen
    /// touched (Linux RSS never shrinks on free).
    touched_high_water: f64,
    activity: GcActivity,
    total_minor: u64,
    total_major: u64,
    total_resizes: u64,
}

impl Heap {
    /// Creates a heap in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (initial zones
    /// exceeding the maximum heap).
    pub fn new(config: HeapConfig) -> Self {
        assert!(
            config.young_mb + config.perm_mb + config.old_initial_mb <= config.max_mb,
            "initial heap zones exceed the maximum heap size"
        );
        Heap {
            config,
            young_used: 0.0,
            old_committed: config.old_initial_mb,
            old_promoted: 0.0,
            old_live: 0.0,
            old_leaked: 0.0,
            touched_high_water: 0.0,
            activity: GcActivity::default(),
            total_minor: 0,
            total_major: 0,
            total_resizes: 0,
        }
    }

    /// MB used in the Young generation.
    pub fn young_used(&self) -> f64 {
        self.young_used
    }

    /// Young generation capacity in MB.
    pub fn young_capacity(&self) -> f64 {
        self.config.young_mb
    }

    /// MB used in the Old generation (promoted + live + leaked).
    pub fn old_used(&self) -> f64 {
        self.old_promoted + self.old_live + self.old_leaked
    }

    /// Currently committed Old generation capacity in MB.
    pub fn old_committed(&self) -> f64 {
        self.old_committed
    }

    /// Maximum capacity the Old generation may ever reach, in MB.
    pub fn old_max(&self) -> f64 {
        self.config.max_mb - self.config.young_mb - self.config.perm_mb
    }

    /// Permanent generation size in MB (constant).
    pub fn perm_mb(&self) -> f64 {
        self.config.perm_mb
    }

    /// MB of injected, unreclaimable leak currently held.
    pub fn leaked_mb(&self) -> f64 {
        self.old_leaked
    }

    /// MB of live (reachable) Old data currently held.
    pub fn live_mb(&self) -> f64 {
        self.old_live
    }

    /// Total used heap from the JVM perspective (`young + old`), in MB —
    /// the grey line of the paper's Figure 2.
    pub fn used_total(&self) -> f64 {
        self.young_used + self.old_used()
    }

    /// High-water mark of the touched heap, in MB — what the OS resident
    /// set reflects (the dark line of Figure 2).
    pub fn touched_high_water(&self) -> f64 {
        self.touched_high_water
    }

    /// Lifetime minor collection count.
    pub fn total_minor_gcs(&self) -> u64 {
        self.total_minor
    }

    /// Lifetime major collection count.
    pub fn total_major_gcs(&self) -> u64 {
        self.total_major
    }

    /// Lifetime Old-zone resize count.
    pub fn total_resizes(&self) -> u64 {
        self.total_resizes
    }

    /// Drains and returns collector activity accumulated since the last
    /// call (the simulator folds the pause into response times and the
    /// monitor reports per-interval GC counts).
    pub fn drain_activity(&mut self) -> GcActivity {
        std::mem::take(&mut self.activity)
    }

    fn bump_high_water(&mut self) {
        let used = self.used_total();
        if used > self.touched_high_water {
            self.touched_high_water = used;
        }
    }

    /// Allocates `mb` of transient data in the Young generation (request
    /// processing). Triggers a minor collection when Young fills, which may
    /// cascade into a major collection and an Old resize.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the cascade cannot free enough space.
    pub fn allocate_transient(&mut self, mb: f64) -> Result<(), OutOfMemory> {
        debug_assert!(mb >= 0.0);
        self.young_used += mb;
        self.bump_high_water();
        while self.young_used >= self.config.young_mb {
            self.minor_gc()?;
        }
        Ok(())
    }

    /// Injects `mb` of *leaked* memory (the paper's modified search
    /// servlet): allocated transient, but retained forever. The leak is
    /// accounted directly in Old (where it ends up after surviving minor
    /// collections).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when Old cannot hold the leak even after a
    /// full collection and resize.
    pub fn leak(&mut self, mb: f64) -> Result<(), OutOfMemory> {
        debug_assert!(mb >= 0.0);
        self.old_leaked += mb;
        self.bump_high_water();
        self.ensure_old_fits()
    }

    /// Releases up to `mb` of previously leaked memory (the release phase
    /// of the paper's periodic pattern, Experiment 4.3). Returns the amount
    /// actually released.
    pub fn release_leaked(&mut self, mb: f64) -> f64 {
        let released = mb.min(self.old_leaked);
        self.old_leaked -= released;
        released
    }

    /// Registers `mb` of long-lived reachable data (session state, thread
    /// heap footprint).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when Old cannot hold it.
    pub fn add_live(&mut self, mb: f64) -> Result<(), OutOfMemory> {
        debug_assert!(mb >= 0.0);
        self.old_live += mb;
        self.bump_high_water();
        self.ensure_old_fits()
    }

    /// Removes `mb` of long-lived data (e.g. a session expiring). Clamped
    /// at zero.
    pub fn remove_live(&mut self, mb: f64) {
        self.old_live = (self.old_live - mb).max(0.0);
    }

    /// Forces a full collection (the jdk1.5 periodic RMI-DGC full GC):
    /// reclaims promoted garbage regardless of occupancy. Unlike the
    /// demand-driven path this never errors — it only frees memory.
    pub fn full_gc(&mut self) {
        self.old_promoted *= 1.0 - self.config.major_collect_fraction;
        self.young_used = 0.0;
        self.activity.major += 1;
        self.total_major += 1;
        self.activity.pause_ms += self.config.major_gc_pause_ms;
    }

    /// Minor collection: most of Young dies, a survivor fraction is
    /// promoted to Old.
    fn minor_gc(&mut self) -> Result<(), OutOfMemory> {
        let survivors = self.young_used * self.config.survivor_fraction;
        self.young_used = 0.0;
        self.old_promoted += survivors;
        self.activity.minor += 1;
        self.total_minor += 1;
        self.activity.pause_ms += self.config.minor_gc_pause_ms;
        self.ensure_old_fits()
    }

    /// Runs major collections / resizes until Old fits its contents.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the contents cannot fit in the maximum
    /// Old capacity even after collecting all reclaimable garbage.
    fn ensure_old_fits(&mut self) -> Result<(), OutOfMemory> {
        if self.old_used() < self.old_committed {
            return Ok(());
        }
        // Major collection: reclaim promoted garbage.
        self.old_promoted *= 1.0 - self.config.major_collect_fraction;
        self.activity.major += 1;
        self.total_major += 1;
        self.activity.pause_ms += self.config.major_gc_pause_ms;

        // Resize if still occupied beyond the growth threshold (the
        // Figure 1 staircase) or if it plainly does not fit.
        let occupancy = self.old_used() / self.old_committed;
        if occupancy >= self.config.old_grow_threshold {
            let target = (self.old_committed + self.config.old_grow_step_mb).min(self.old_max());
            if target > self.old_committed {
                self.old_committed = target;
                self.activity.resizes += 1;
                self.total_resizes += 1;
            }
        }
        if self.old_used() >= self.old_committed && self.old_committed >= self.old_max() {
            return Err(OutOfMemory);
        }
        if self.old_used() >= self.old_committed {
            // Could not free or grow enough in one step; recurse (bounded:
            // either committed grows or we error out above).
            return self.ensure_old_fits();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(HeapConfig::default())
    }

    #[test]
    fn initial_state() {
        let h = heap();
        assert_eq!(h.young_used(), 0.0);
        assert_eq!(h.old_used(), 0.0);
        assert_eq!(h.old_committed(), 256.0);
        assert_eq!(h.old_max(), 1024.0 - 128.0 - 64.0);
        assert_eq!(h.used_total(), 0.0);
        assert_eq!(h.touched_high_water(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceed the maximum")]
    fn inconsistent_config_panics() {
        let cfg = HeapConfig { old_initial_mb: 2000.0, ..Default::default() };
        let _ = Heap::new(cfg);
    }

    #[test]
    fn transient_allocation_triggers_minor_gc() {
        let mut h = heap();
        for _ in 0..500 {
            h.allocate_transient(0.3).unwrap();
        }
        assert!(h.total_minor_gcs() >= 1, "150 MB through a 128 MB young must GC");
        assert!(h.young_used() < h.young_capacity());
        // Survivors were promoted.
        assert!(h.old_used() > 0.0);
    }

    #[test]
    fn young_alone_never_ooms() {
        let mut h = heap();
        // 10 GB of transient traffic: all garbage, never exhausts the heap.
        for _ in 0..40_000 {
            h.allocate_transient(0.25).unwrap();
        }
        assert!(h.old_used() < h.old_max());
    }

    #[test]
    fn leaks_accumulate_and_eventually_oom() {
        let mut h = heap();
        let mut leaked = 0.0;
        let result = loop {
            match h.leak(1.0) {
                Ok(()) => leaked += 1.0,
                Err(e) => break e,
            }
            assert!(leaked < 10_000.0, "leak must OOM before 10 GB");
        };
        assert_eq!(result, OutOfMemory);
        // The heap must have died only after committing everything it could.
        assert!((h.old_committed() - h.old_max()).abs() < 1e-9);
        assert!(h.leaked_mb() >= h.old_max() - 1.0);
    }

    #[test]
    fn old_resizes_in_steps() {
        let mut h = heap();
        let initial = h.old_committed();
        for _ in 0..300 {
            h.leak(1.0).unwrap();
        }
        assert!(h.old_committed() > initial, "300 MB of leak must force a resize");
        assert!(h.total_resizes() >= 1);
        assert_eq!(
            h.old_committed(),
            initial + h.total_resizes() as f64 * HeapConfig::default().old_grow_step_mb
        );
    }

    #[test]
    fn release_leaked_clamps() {
        let mut h = heap();
        h.leak(10.0).unwrap();
        assert_eq!(h.release_leaked(4.0), 4.0);
        assert_eq!(h.leaked_mb(), 6.0);
        assert_eq!(h.release_leaked(100.0), 6.0);
        assert_eq!(h.leaked_mb(), 0.0);
    }

    #[test]
    fn live_data_add_remove() {
        let mut h = heap();
        h.add_live(50.0).unwrap();
        assert_eq!(h.live_mb(), 50.0);
        h.remove_live(20.0);
        assert_eq!(h.live_mb(), 30.0);
        h.remove_live(100.0);
        assert_eq!(h.live_mb(), 0.0, "removal clamps at zero");
    }

    #[test]
    fn high_water_is_monotone_and_tracks_usage() {
        let mut h = heap();
        h.leak(100.0).unwrap();
        let hw1 = h.touched_high_water();
        assert!(hw1 >= 100.0);
        h.release_leaked(100.0);
        assert_eq!(h.touched_high_water(), hw1, "high water never shrinks");
        h.leak(50.0).unwrap();
        assert_eq!(h.touched_high_water(), hw1, "below the mark: unchanged");
        h.leak(100.0).unwrap();
        assert!(h.touched_high_water() > hw1);
    }

    #[test]
    fn gc_activity_drains() {
        let mut h = heap();
        for _ in 0..1000 {
            h.allocate_transient(0.3).unwrap();
        }
        let act = h.drain_activity();
        assert!(act.minor > 0);
        assert!(act.pause_ms > 0.0);
        let again = h.drain_activity();
        assert_eq!(again.minor, 0);
        assert_eq!(again.pause_ms, 0.0);
    }

    #[test]
    fn major_gc_reclaims_promoted_garbage() {
        let cfg = HeapConfig { survivor_fraction: 0.5, ..Default::default() };
        let mut h = Heap::new(cfg);
        // Heavy promotion: old fills with reclaimable garbage, majors run,
        // but no OOM because the garbage dies.
        for _ in 0..10_000 {
            h.allocate_transient(0.4).unwrap();
        }
        assert!(h.total_major_gcs() >= 1);
        assert!(h.old_used() < h.old_max());
    }

    #[test]
    fn oom_with_mixed_live_and_leak() {
        let mut h = heap();
        h.add_live(300.0).unwrap();
        let mut result = Ok(());
        for _ in 0..600 {
            result = h.leak(1.0);
            if result.is_err() {
                break;
            }
        }
        assert_eq!(result, Err(OutOfMemory), "live + leak > old_max must OOM");
    }

    #[test]
    fn display_of_oom_mentions_java() {
        assert!(OutOfMemory.to_string().contains("OutOfMemoryError"));
    }
}
