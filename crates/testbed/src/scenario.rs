//! Phase-structured experiment descriptions.
//!
//! Every experiment of the paper is a sequence of *phases*: intervals with
//! fixed injection parameters, changed every 20–30 minutes (Experiments
//! 4.2–4.4) or held constant for the whole run (Experiment 4.1). A
//! [`Scenario`] bundles the simulator configuration with its phase list;
//! [`ScenarioBuilder`] provides the vocabulary the repro harness uses to
//! spell out each experiment.

use crate::config::SimConfig;
use crate::inject::{MemLeakSpec, PeriodicSpec, ThreadLeakSpec};
use crate::sim::{RunTrace, Simulator};
use serde::{Deserialize, Serialize};

/// How memory is injected during a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MemInjection {
    /// No memory injection.
    None,
    /// Unreleasable leak (the pure aging of Experiments 4.1, 4.2, 4.4).
    Leak(MemLeakSpec),
    /// Releasable acquisition (the acquire half of the periodic pattern).
    Acquire(MemLeakSpec),
    /// Release of previously acquired memory (the release half).
    Release(MemLeakSpec),
}

/// One experiment phase: a duration (or "until crash") with fixed injection
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable phase label (shows up in figures).
    pub name: String,
    /// Phase length in ms; `None` runs until crash or the simulation cap.
    pub duration_ms: Option<u64>,
    /// Memory injection mode.
    pub mem: MemInjection,
    /// Thread injection, if any.
    pub threads: Option<ThreadLeakSpec>,
}

impl Phase {
    /// A phase with no injection at all.
    pub fn idle(name: impl Into<String>, duration_ms: Option<u64>) -> Self {
        Phase { name: name.into(), duration_ms, mem: MemInjection::None, threads: None }
    }

    /// A memory-leak phase.
    pub fn leak(name: impl Into<String>, duration_ms: Option<u64>, spec: MemLeakSpec) -> Self {
        Phase { name: name.into(), duration_ms, mem: MemInjection::Leak(spec), threads: None }
    }

    /// Attaches a thread-leak injector to the phase.
    pub fn with_threads(mut self, spec: ThreadLeakSpec) -> Self {
        self.threads = Some(spec);
        self
    }
}

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Experiment name (used in traces and reports).
    pub name: String,
    /// Simulator configuration.
    pub config: SimConfig,
    /// Ordered phase list; the last phase may be unbounded.
    pub phases: Vec<Phase>,
}

impl Scenario {
    /// Starts building a scenario with default (Table 1) configuration.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            config: SimConfig::default(),
            phases: Vec::new(),
            whole_run_mem: None,
            whole_run_threads: None,
            until_crash: false,
        }
    }

    /// Runs the scenario to completion under `seed` and returns the trace.
    pub fn run(&self, seed: u64) -> RunTrace {
        Simulator::new(self, seed).run_to_completion()
    }
}

/// Builder for [`Scenario`]; see [`Scenario::builder`].
///
/// # Example
///
/// ```
/// use aging_testbed::{MemLeakSpec, Scenario, ThreadLeakSpec};
///
/// // The paper's Experiment 4.4 shape: phases combining two resources.
/// let scenario = Scenario::builder("exp44")
///     .emulated_browsers(100)
///     .idle_phase_minutes(30)
///     .leak_phase_minutes(30, MemLeakSpec::new(30), Some(ThreadLeakSpec::new(30, 90)))
///     .leak_phase_minutes(30, MemLeakSpec::new(15), Some(ThreadLeakSpec::new(15, 120)))
///     .final_leak_phase(MemLeakSpec::new(75), Some(ThreadLeakSpec::new(45, 60)))
///     .build();
/// assert_eq!(scenario.phases.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    config: SimConfig,
    phases: Vec<Phase>,
    whole_run_mem: Option<MemLeakSpec>,
    whole_run_threads: Option<ThreadLeakSpec>,
    until_crash: bool,
}

impl ScenarioBuilder {
    /// Replaces the whole simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of TPC-W emulated browsers.
    pub fn emulated_browsers(mut self, ebs: u64) -> Self {
        self.config.workload.emulated_browsers = ebs;
        self
    }

    /// Whole-run memory leak (Experiment 4.1 style). Mutually exclusive
    /// with explicit phases.
    pub fn memory_leak(mut self, spec: MemLeakSpec) -> Self {
        self.whole_run_mem = Some(spec);
        self
    }

    /// Whole-run thread leak. Mutually exclusive with explicit phases.
    pub fn thread_leak(mut self, spec: ThreadLeakSpec) -> Self {
        self.whole_run_threads = Some(spec);
        self
    }

    /// Marks the run as ending at the crash (or the simulation-time cap).
    pub fn run_to_crash(mut self) -> Self {
        self.until_crash = true;
        self
    }

    /// Bounds the whole run to `minutes` (for non-crashing executions such
    /// as the one-hour no-injection training run of Experiment 4.2).
    pub fn duration_minutes(mut self, minutes: u64) -> Self {
        self.until_crash = false;
        if self.phases.is_empty() {
            self.phases.push(Phase {
                name: "whole-run".into(),
                duration_ms: Some(minutes * 60_000),
                mem: MemInjection::None,
                threads: None,
            });
        }
        self
    }

    /// Appends an explicit phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Appends an idle (no-injection) phase of `minutes`.
    pub fn idle_phase_minutes(mut self, minutes: u64) -> Self {
        let idx = self.phases.len();
        self.phases.push(Phase::idle(format!("phase-{idx}-idle"), Some(minutes * 60_000)));
        self
    }

    /// Appends a bounded leak phase, optionally with thread injection.
    pub fn leak_phase_minutes(
        mut self,
        minutes: u64,
        mem: MemLeakSpec,
        threads: Option<ThreadLeakSpec>,
    ) -> Self {
        let idx = self.phases.len();
        self.phases.push(Phase {
            name: format!("phase-{idx}-N{}", mem.n),
            duration_ms: Some(minutes * 60_000),
            mem: MemInjection::Leak(mem),
            threads,
        });
        self
    }

    /// Appends an unbounded final leak phase (runs until crash).
    pub fn final_leak_phase(mut self, mem: MemLeakSpec, threads: Option<ThreadLeakSpec>) -> Self {
        let idx = self.phases.len();
        self.phases.push(Phase {
            name: format!("phase-{idx}-N{}-final", mem.n),
            duration_ms: None,
            mem: MemInjection::Leak(mem),
            threads,
        });
        self.until_crash = true;
        self
    }

    /// Appends `cycles` acquire/release cycles of the periodic pattern
    /// (Experiment 4.3: retention happens naturally because the acquire
    /// rate exceeds the release rate).
    pub fn periodic_cycles(mut self, spec: PeriodicSpec, cycles: u32) -> Self {
        for c in 0..cycles {
            self.phases.push(Phase {
                name: format!("cycle-{c}-acquire"),
                duration_ms: Some(spec.phase_secs * 1000),
                mem: MemInjection::Acquire(MemLeakSpec {
                    n: spec.acquire_n,
                    chunk_mb: spec.chunk_mb,
                }),
                threads: None,
            });
            self.phases.push(Phase {
                name: format!("cycle-{c}-release"),
                duration_ms: Some(spec.phase_secs * 1000),
                mem: MemInjection::Release(MemLeakSpec {
                    n: spec.release_n,
                    chunk_mb: spec.chunk_mb,
                }),
                threads: None,
            });
        }
        self
    }

    /// Appends `cycles` normal/acquire/release cycles where the release
    /// phase drains everything (the paper's second motivating example /
    /// Figure 2: the application "returns to the initial state").
    pub fn periodic_cycles_no_retention(mut self, spec: PeriodicSpec, cycles: u32) -> Self {
        for c in 0..cycles {
            self.phases
                .push(Phase::idle(format!("cycle-{c}-normal"), Some(spec.phase_secs * 1000)));
            self.phases.push(Phase {
                name: format!("cycle-{c}-acquire"),
                duration_ms: Some(spec.phase_secs * 1000),
                mem: MemInjection::Acquire(MemLeakSpec {
                    n: spec.acquire_n,
                    chunk_mb: spec.chunk_mb,
                }),
                threads: None,
            });
            // A fast release (small N) drains the whole acquisition within
            // the phase; release clamps at zero so nothing is retained.
            self.phases.push(Phase {
                name: format!("cycle-{c}-release"),
                duration_ms: Some(spec.phase_secs * 1000),
                mem: MemInjection::Release(MemLeakSpec { n: 8, chunk_mb: spec.chunk_mb }),
                threads: None,
            });
        }
        self
    }

    /// Finalises the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation, or if whole-run
    /// injections are combined with explicit phases, or if a non-final
    /// phase is unbounded.
    pub fn build(self) -> Scenario {
        let problems = self.config.validate();
        assert!(problems.is_empty(), "invalid simulator configuration: {problems:?}");

        let mut phases = self.phases;
        if phases.is_empty() {
            assert!(self.until_crash, "a scenario needs phases, a duration, or run_to_crash()");
            phases.push(Phase {
                name: "whole-run".into(),
                duration_ms: None,
                mem: self.whole_run_mem.map_or(MemInjection::None, MemInjection::Leak),
                threads: self.whole_run_threads,
            });
        } else {
            assert!(
                self.whole_run_mem.is_none() && self.whole_run_threads.is_none(),
                "whole-run injections cannot be combined with explicit phases"
            );
            let last = phases.len() - 1;
            for (i, p) in phases.iter().enumerate() {
                assert!(
                    p.duration_ms.is_some() || i == last,
                    "only the final phase may be unbounded (phase {i} is not)"
                );
            }
        }
        Scenario { name: self.name, config: self.config, phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_run_leak_builds_single_phase() {
        let s = Scenario::builder("t")
            .emulated_browsers(50)
            .memory_leak(MemLeakSpec::new(30))
            .run_to_crash()
            .build();
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.config.workload.emulated_browsers, 50);
        assert!(matches!(s.phases[0].mem, MemInjection::Leak(spec) if spec.n == 30));
        assert_eq!(s.phases[0].duration_ms, None);
    }

    #[test]
    fn explicit_phases_keep_order() {
        let s = Scenario::builder("exp42")
            .idle_phase_minutes(20)
            .leak_phase_minutes(20, MemLeakSpec::new(30), None)
            .leak_phase_minutes(20, MemLeakSpec::new(15), None)
            .final_leak_phase(MemLeakSpec::new(75), None)
            .build();
        assert_eq!(s.phases.len(), 4);
        assert!(matches!(s.phases[0].mem, MemInjection::None));
        assert!(matches!(s.phases[3].mem, MemInjection::Leak(spec) if spec.n == 75));
        assert_eq!(s.phases[3].duration_ms, None);
    }

    #[test]
    fn periodic_cycles_alternate() {
        let s = Scenario::builder("exp43")
            .periodic_cycles(PeriodicSpec::paper_exp43(), 3)
            .run_to_crash()
            .build();
        // run_to_crash with explicit bounded phases is fine: the run just
        // ends when phases are exhausted or the crash arrives first.
        assert_eq!(s.phases.len(), 6);
        assert!(matches!(s.phases[0].mem, MemInjection::Acquire(_)));
        assert!(matches!(s.phases[1].mem, MemInjection::Release(_)));
    }

    #[test]
    fn no_retention_cycles_have_three_subphases() {
        let s = Scenario::builder("fig2")
            .periodic_cycles_no_retention(PeriodicSpec::paper_exp43(), 2)
            .build();
        assert_eq!(s.phases.len(), 6);
        assert!(matches!(s.phases[0].mem, MemInjection::None));
        assert!(matches!(s.phases[1].mem, MemInjection::Acquire(_)));
        assert!(matches!(s.phases[2].mem, MemInjection::Release(_)));
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_scenario_panics() {
        let _ = Scenario::builder("nope").build();
    }

    #[test]
    #[should_panic(expected = "only the final phase may be unbounded")]
    fn unbounded_middle_phase_panics() {
        let _ = Scenario::builder("bad")
            .phase(Phase::leak("p0", None, MemLeakSpec::new(30)))
            .phase(Phase::idle("p1", Some(1000)))
            .build();
    }

    #[test]
    #[should_panic(expected = "cannot be combined")]
    fn whole_run_plus_phases_panics() {
        let _ = Scenario::builder("bad")
            .memory_leak(MemLeakSpec::new(30))
            .idle_phase_minutes(10)
            .build();
    }

    #[test]
    #[should_panic(expected = "invalid simulator configuration")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::default();
        cfg.workload.emulated_browsers = 0;
        let _ = Scenario::builder("bad").config(cfg).run_to_crash().build();
    }

    #[test]
    fn duration_minutes_builds_bounded_idle_run() {
        let s = Scenario::builder("train-idle").duration_minutes(60).build();
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].duration_ms, Some(3_600_000));
        assert!(matches!(s.phases[0].mem, MemInjection::None));
    }

    #[test]
    fn phase_with_threads() {
        let p = Phase::leak("x", Some(1000), MemLeakSpec::new(15))
            .with_threads(ThreadLeakSpec::new(30, 90));
        assert!(p.threads.is_some());
    }
}
