//! Simulation parameters, with defaults mirroring Table 1 of the paper
//! ("Machine Description"): a 4-way Xeon application server with 2 GB RAM
//! running Tomcat under jdk1.5 with a 1 GB heap, a 2-way client/DB machine,
//! TPC-W clients and MySQL 5.

use crate::tpcw::TpcwMix;
use serde::{Deserialize, Serialize};

/// Generational JVM heap parameters (jdk1.5-style collector).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeapConfig {
    /// Maximum heap size in MB (`-Xmx`); the paper uses 1 GB.
    pub max_mb: f64,
    /// Young generation capacity in MB (fixed, jdk1.5 default ≈ max/8).
    pub young_mb: f64,
    /// Initial Old generation committed size in MB (a fraction of the
    /// maximum; the Heap Management System grows it on demand — the Figure 1
    /// staircase).
    pub old_initial_mb: f64,
    /// Old generation growth increment in MB applied when a full collection
    /// leaves occupancy above [`HeapConfig::old_grow_threshold`].
    pub old_grow_step_mb: f64,
    /// Occupancy fraction after full GC that triggers an Old resize.
    pub old_grow_threshold: f64,
    /// Permanent generation size in MB (constant during the experiments,
    /// as the paper observes for Figure 2).
    pub perm_mb: f64,
    /// Fraction of transient Young data that survives a minor collection
    /// and is promoted to Old (short-lived request garbage mostly dies).
    pub survivor_fraction: f64,
    /// Fraction of *promoted* (non-leaked, non-live) Old data that a full
    /// collection reclaims.
    pub major_collect_fraction: f64,
    /// Pause cost of a minor collection in milliseconds.
    pub minor_gc_pause_ms: f64,
    /// Pause cost of a major collection in milliseconds.
    pub major_gc_pause_ms: f64,
    /// Heap footprint of every Java thread in MB — "every Java Thread has
    /// an impact over the Tomcat Memory, because the Java thread consumes
    /// Java memory by itself" (Section 4.4). This couples the two aging
    /// resources of Experiment 4.4.
    pub thread_heap_mb: f64,
    /// Interval of the periodic full collection in seconds (jdk1.5 runs an
    /// RMI-DGC-triggered full GC on a timer). `0` disables it.
    pub periodic_full_gc_secs: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            max_mb: 1024.0,
            young_mb: 128.0,
            old_initial_mb: 256.0,
            old_grow_step_mb: 192.0,
            old_grow_threshold: 0.75,
            perm_mb: 64.0,
            survivor_fraction: 0.004,
            major_collect_fraction: 0.95,
            minor_gc_pause_ms: 40.0,
            major_gc_pause_ms: 900.0,
            thread_heap_mb: 0.25,
            periodic_full_gc_secs: 1800,
        }
    }
}

/// Host operating-system parameters for the application-server machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Physical RAM in MB (Table 1: 2 GB).
    pub ram_mb: f64,
    /// Swap space in MB.
    pub swap_mb: f64,
    /// Memory used by the OS and other processes, in MB.
    pub base_os_mb: f64,
    /// Resident memory of the co-located monitoring agents etc., in MB.
    pub base_tomcat_rss_mb: f64,
    /// Kernel limit on threads the Tomcat process may own; exceeding it
    /// crashes the server (`OutOfMemoryError: unable to create new native
    /// thread`).
    pub max_process_threads: u64,
    /// Native stack size per Java thread, in MB (jdk1.5 default -Xss).
    pub thread_stack_mb: f64,
    /// Baseline number of OS processes reported by the monitor.
    pub base_processes: u64,
    /// Disk capacity in MB (logs slowly consume it).
    pub disk_mb: f64,
    /// Initial disk usage in MB.
    pub disk_used_mb: f64,
    /// Log bytes written per request, in MB (drives slow disk growth).
    pub log_mb_per_request: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            ram_mb: 2048.0,
            swap_mb: 1024.0,
            base_os_mb: 300.0,
            base_tomcat_rss_mb: 90.0,
            max_process_threads: 1400,
            thread_stack_mb: 1.0,
            base_processes: 82,
            disk_mb: 70_000.0,
            disk_used_mb: 9_500.0,
            log_mb_per_request: 0.0006,
        }
    }
}

/// Tomcat + MySQL service parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Size of the Tomcat worker thread pool.
    pub worker_threads: u64,
    /// Threads Tomcat owns besides workers (acceptor, housekeeping, …).
    pub housekeeping_threads: u64,
    /// Maximum queued + active HTTP connections before refusals.
    pub max_http_connections: u64,
    /// MySQL connection pool size.
    pub mysql_pool: u64,
    /// Mean CPU service time of a non-search interaction, in ms.
    pub base_service_ms: f64,
    /// Mean CPU service time of a search interaction, in ms (heavier: it
    /// runs the modified `TPCW_Search_request_servlet`).
    pub search_service_ms: f64,
    /// Mean DB query time, in ms.
    pub db_query_ms: f64,
    /// Transient Young-generation allocation per request, in MB.
    pub alloc_per_request_mb: f64,
    /// Live session state per emulated browser, in MB (held in Old).
    pub session_mb_per_eb: f64,
    /// Resident memory of the MySQL server process, in MB.
    pub mysql_rss_mb: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            worker_threads: 64,
            housekeeping_threads: 12,
            max_http_connections: 256,
            mysql_pool: 48,
            base_service_ms: 18.0,
            search_service_ms: 42.0,
            db_query_ms: 22.0,
            alloc_per_request_mb: 0.30,
            session_mb_per_eb: 0.35,
            mysql_rss_mb: 380.0,
        }
    }
}

/// TPC-W workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of concurrent emulated browsers (constant during a run, per
    /// the TPC-W specification).
    pub emulated_browsers: u64,
    /// Mean think time between consecutive requests of one EB, in ms
    /// (TPC-W: negative-exponential with 7 s mean).
    pub think_time_mean_ms: f64,
    /// Upper truncation of the think time, in ms (TPC-W: 70 s).
    pub think_time_max_ms: f64,
    /// The TPC-W interaction mix (the paper uses *Shopping* everywhere).
    pub mix: TpcwMix,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            emulated_browsers: 100,
            think_time_mean_ms: 7_000.0,
            think_time_max_ms: 70_000.0,
            mix: TpcwMix::Shopping,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// JVM heap parameters.
    pub heap: HeapConfig,
    /// Host OS parameters.
    pub system: SystemConfig,
    /// Tomcat/MySQL parameters.
    pub server: ServerConfig,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Monitoring checkpoint interval in ms (the paper samples every 15 s).
    pub checkpoint_interval_ms: u64,
    /// Hard wall on simulated time in ms, so non-crashing runs terminate
    /// (12 h by default).
    pub max_sim_time_ms: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            heap: HeapConfig::default(),
            system: SystemConfig::default(),
            server: ServerConfig::default(),
            workload: WorkloadConfig::default(),
            checkpoint_interval_ms: 15_000,
            max_sim_time_ms: 12 * 3600 * 1000,
        }
    }
}

impl SimConfig {
    /// Validates internal consistency (young + perm must fit in the heap,
    /// pools must be non-empty, …). Returns a list of problems, empty when
    /// the configuration is sound.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let h = &self.heap;
        if h.young_mb + h.perm_mb + h.old_initial_mb > h.max_mb {
            problems.push(format!(
                "initial heap zones ({} MB) exceed max heap {} MB",
                h.young_mb + h.perm_mb + h.old_initial_mb,
                h.max_mb
            ));
        }
        if !(0.0..=1.0).contains(&h.survivor_fraction) {
            problems.push("survivor_fraction outside [0,1]".into());
        }
        if !(0.0..=1.0).contains(&h.major_collect_fraction) {
            problems.push("major_collect_fraction outside [0,1]".into());
        }
        if !(0.0..=1.0).contains(&h.old_grow_threshold) {
            problems.push("old_grow_threshold outside [0,1]".into());
        }
        if self.server.worker_threads == 0 {
            problems.push("worker_threads must be positive".into());
        }
        if self.workload.emulated_browsers == 0 {
            problems.push("emulated_browsers must be positive".into());
        }
        if self.workload.think_time_mean_ms <= 0.0 {
            problems.push("think_time_mean_ms must be positive".into());
        }
        if self.checkpoint_interval_ms == 0 {
            problems.push("checkpoint_interval_ms must be positive".into());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SimConfig::default().validate().is_empty());
    }

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.heap.max_mb, 1024.0, "jdk1.5 with 1GB heap");
        assert_eq!(c.system.ram_mb, 2048.0, "2 GB RAM");
        assert_eq!(c.checkpoint_interval_ms, 15_000, "15 s checkpoints");
        assert_eq!(c.workload.think_time_mean_ms, 7_000.0, "TPC-W think time");
    }

    #[test]
    fn validation_catches_oversized_zones() {
        let mut c = SimConfig::default();
        c.heap.old_initial_mb = 2000.0;
        assert!(c.validate().iter().any(|p| p.contains("exceed max heap")));
    }

    #[test]
    fn validation_catches_bad_fractions_and_zeros() {
        let mut c = SimConfig::default();
        c.heap.survivor_fraction = 1.5;
        c.server.worker_threads = 0;
        c.workload.emulated_browsers = 0;
        c.checkpoint_interval_ms = 0;
        let problems = c.validate();
        assert!(problems.len() >= 4, "expected many problems, got {problems:?}");
    }
}
