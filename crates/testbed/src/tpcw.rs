//! The TPC-W interaction set and workload mixes.
//!
//! TPC-W defines fourteen web interactions and three workload mixes —
//! *Browsing*, *Shopping* and *Ordering* — that differ in how often each
//! interaction occurs in steady state. The paper runs every experiment
//! "using shopping distribution" (Section 3); the other two mixes are
//! implemented for completeness and for workload-sensitivity studies.
//!
//! The frequencies below approximate the steady-state interaction
//! frequencies of the TPC-W specification's mix matrices. The single
//! distinction the aging experiments depend on is preserved exactly: the
//! *Search Request* interaction executes the modified
//! `TPCW_Search_request_servlet`, which is where memory leaks are injected.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One of the fourteen TPC-W web interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Interaction {
    /// Store home page.
    Home,
    /// New-products listing.
    NewProducts,
    /// Best-sellers listing (heavy DB aggregation).
    BestSellers,
    /// Product detail page.
    ProductDetail,
    /// The search form — the paper's modified, leak-injecting servlet.
    SearchRequest,
    /// Search result listing (DB-heavy).
    SearchResults,
    /// Shopping cart view/update.
    ShoppingCart,
    /// Customer registration.
    CustomerRegistration,
    /// Buy request (begins checkout).
    BuyRequest,
    /// Buy confirm (completes checkout; transactional).
    BuyConfirm,
    /// Order inquiry form.
    OrderInquiry,
    /// Order display (looks up an order).
    OrderDisplay,
    /// Admin request form.
    AdminRequest,
    /// Admin confirm (updates the catalogue).
    AdminConfirm,
}

/// All interactions, in a fixed order (used for tables and iteration).
pub const ALL_INTERACTIONS: [Interaction; 14] = [
    Interaction::Home,
    Interaction::NewProducts,
    Interaction::BestSellers,
    Interaction::ProductDetail,
    Interaction::SearchRequest,
    Interaction::SearchResults,
    Interaction::ShoppingCart,
    Interaction::CustomerRegistration,
    Interaction::BuyRequest,
    Interaction::BuyConfirm,
    Interaction::OrderInquiry,
    Interaction::OrderDisplay,
    Interaction::AdminRequest,
    Interaction::AdminConfirm,
];

impl Interaction {
    /// Whether this interaction executes the modified search servlet (the
    /// memory-leak injection point).
    pub fn hits_search_servlet(self) -> bool {
        matches!(self, Interaction::SearchRequest)
    }

    /// Relative CPU cost of the servlet work (1.0 = a plain page).
    pub fn cpu_weight(self) -> f64 {
        match self {
            Interaction::Home => 1.0,
            Interaction::NewProducts => 1.2,
            Interaction::BestSellers => 1.6,
            Interaction::ProductDetail => 1.0,
            Interaction::SearchRequest => 2.3, // the modified servlet computes the injection draw
            Interaction::SearchResults => 1.8,
            Interaction::ShoppingCart => 1.3,
            Interaction::CustomerRegistration => 1.1,
            Interaction::BuyRequest => 1.4,
            Interaction::BuyConfirm => 1.9,
            Interaction::OrderInquiry => 0.8,
            Interaction::OrderDisplay => 1.2,
            Interaction::AdminRequest => 0.9,
            Interaction::AdminConfirm => 1.5,
        }
    }

    /// Relative DB round-trip weight (1.0 = one indexed query).
    pub fn db_weight(self) -> f64 {
        match self {
            Interaction::Home => 0.6,
            Interaction::NewProducts => 1.4,
            Interaction::BestSellers => 2.4, // top-k aggregation over recent orders
            Interaction::ProductDetail => 0.8,
            Interaction::SearchRequest => 0.4,
            Interaction::SearchResults => 2.0,
            Interaction::ShoppingCart => 1.1,
            Interaction::CustomerRegistration => 0.7,
            Interaction::BuyRequest => 1.2,
            Interaction::BuyConfirm => 2.2, // transactional insert
            Interaction::OrderInquiry => 0.3,
            Interaction::OrderDisplay => 1.3,
            Interaction::AdminRequest => 0.5,
            Interaction::AdminConfirm => 1.6,
        }
    }
}

/// One of TPC-W's three workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TpcwMix {
    /// Browsing-dominated (WIPSb).
    Browsing,
    /// The balanced default the paper uses everywhere (WIPS).
    #[default]
    Shopping,
    /// Ordering-dominated (WIPSo).
    Ordering,
}

impl TpcwMix {
    /// Steady-state interaction frequencies (sum to 1.0), in
    /// [`ALL_INTERACTIONS`] order.
    pub fn frequencies(self) -> [f64; 14] {
        match self {
            TpcwMix::Browsing => [
                0.2876, 0.1103, 0.1103, 0.2102, 0.1209, 0.1103, 0.0204, 0.0082, 0.0075, 0.0069,
                0.0030, 0.0025, 0.0010, 0.0009,
            ],
            TpcwMix::Shopping => [
                0.1600, 0.0500, 0.0500, 0.1700, 0.2000, 0.1700, 0.1160, 0.0300, 0.0260, 0.0120,
                0.0075, 0.0066, 0.0010, 0.0009,
            ],
            TpcwMix::Ordering => [
                0.0912, 0.0046, 0.0046, 0.1235, 0.1453, 0.1308, 0.1353, 0.1286, 0.1273, 0.1018,
                0.0025, 0.0022, 0.0012, 0.0011,
            ],
        }
    }

    /// Probability that an interaction hits the search servlet under this
    /// mix.
    pub fn search_servlet_fraction(self) -> f64 {
        let freqs = self.frequencies();
        ALL_INTERACTIONS
            .iter()
            .zip(freqs)
            .filter(|(i, _)| i.hits_search_servlet())
            .map(|(_, f)| f)
            .sum()
    }

    /// Samples an interaction according to the mix frequencies.
    pub fn sample<R: Rng>(self, rng: &mut R) -> Interaction {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        let freqs = self.frequencies();
        for (interaction, f) in ALL_INTERACTIONS.iter().zip(freqs) {
            if u < f {
                return *interaction;
            }
            u -= f;
        }
        // Floating-point slack: the frequencies sum to ~1.0.
        Interaction::Home
    }

    /// Mean CPU weight of an interaction under this mix.
    pub fn mean_cpu_weight(self) -> f64 {
        ALL_INTERACTIONS.iter().zip(self.frequencies()).map(|(i, f)| i.cpu_weight() * f).sum()
    }

    /// Mean DB weight of an interaction under this mix.
    pub fn mean_db_weight(self) -> f64 {
        ALL_INTERACTIONS.iter().zip(self.frequencies()).map(|(i, f)| i.db_weight() * f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn frequencies_sum_to_one() {
        for mix in [TpcwMix::Browsing, TpcwMix::Shopping, TpcwMix::Ordering] {
            let sum: f64 = mix.frequencies().iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "{mix:?} frequencies sum to {sum}");
        }
    }

    #[test]
    fn shopping_search_fraction_is_twenty_percent() {
        let f = TpcwMix::Shopping.search_servlet_fraction();
        assert!((f - 0.20).abs() < 1e-9, "shopping mix search fraction {f}");
    }

    #[test]
    fn browsing_searches_less_ordering_between() {
        let b = TpcwMix::Browsing.search_servlet_fraction();
        let s = TpcwMix::Shopping.search_servlet_fraction();
        let o = TpcwMix::Ordering.search_servlet_fraction();
        assert!(b < s, "browsing ({b}) searches less than shopping ({s})");
        assert!(o < s && o > b);
    }

    #[test]
    fn sampling_matches_frequencies() {
        let mut rng = StdRng::seed_from_u64(77);
        let mix = TpcwMix::Shopping;
        let n = 200_000;
        let mut counts: HashMap<Interaction, usize> = HashMap::new();
        for _ in 0..n {
            *counts.entry(mix.sample(&mut rng)).or_default() += 1;
        }
        for (interaction, expected) in ALL_INTERACTIONS.iter().zip(mix.frequencies()) {
            let measured = *counts.get(interaction).unwrap_or(&0) as f64 / n as f64;
            assert!(
                (measured - expected).abs() < 0.01,
                "{interaction:?}: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn ordering_mix_buys_more() {
        let idx = |i: Interaction| ALL_INTERACTIONS.iter().position(|&x| x == i).unwrap();
        let buy = idx(Interaction::BuyConfirm);
        assert!(TpcwMix::Ordering.frequencies()[buy] > 10.0 * TpcwMix::Browsing.frequencies()[buy]);
    }

    #[test]
    fn weights_are_positive_and_search_is_heavy() {
        for i in ALL_INTERACTIONS {
            assert!(i.cpu_weight() > 0.0);
            assert!(i.db_weight() > 0.0);
        }
        assert!(Interaction::SearchRequest.cpu_weight() > Interaction::Home.cpu_weight());
        assert!(Interaction::BestSellers.db_weight() > Interaction::Home.db_weight());
    }

    #[test]
    fn only_search_request_hits_the_servlet() {
        let hits: Vec<_> = ALL_INTERACTIONS.iter().filter(|i| i.hits_search_servlet()).collect();
        assert_eq!(hits, vec![&Interaction::SearchRequest]);
    }

    #[test]
    fn mean_weights_are_sane() {
        for mix in [TpcwMix::Browsing, TpcwMix::Shopping, TpcwMix::Ordering] {
            assert!((0.5..3.0).contains(&mix.mean_cpu_weight()));
            assert!((0.3..3.0).contains(&mix.mean_db_weight()));
        }
    }
}
