//! Discrete-event simulator of the DSN'10 paper's experimental testbed.
//!
//! The original evaluation ran a physical three-tier deployment: a TPC-W
//! online bookstore (Java servlets) on Apache Tomcat 5.5 with a MySQL
//! backend, driven by TPC-W *emulated browsers*, with aging faults injected
//! through a modified search servlet (memory) and a thread injector
//! (Table 1 of the paper). None of that hardware or software stack is
//! available here, so this crate rebuilds it as a deterministic
//! discrete-event simulation that preserves the behaviours the evaluation
//! depends on:
//!
//! - [`jvm`] — a generational Java heap (Young / Old / Permanent) with minor
//!   and major collections and the incremental Old-zone resizing that
//!   produces the paper's Figure 1 staircase, plus a thread model where
//!   every Java thread also consumes heap (the coupling Experiment 4.4
//!   exploits);
//! - [`os`] — the operating-system view of memory: Linux does not reclaim
//!   freed RSS, so the OS-level curve is the *high-water mark* of the heap,
//!   which produces the Figure 2 divergence between OS and JVM perspectives;
//! - [`server`] — the Tomcat worker-pool / request-queue model and the
//!   MySQL connection pool;
//! - [`workload`] — TPC-W emulated browsers with exponential think times
//!   and the shopping mix;
//! - [`inject`] — the paper's fault injectors: memory leaks parameterised by
//!   `N` (every `U(0..N)` search-servlet requests leak 1 MB) and thread
//!   leaks parameterised by `M`, `T` (every `U(0..T)` seconds spawn
//!   `U(0..M)` never-dying threads);
//! - [`scenario`] — phase-structured experiment descriptions (the paper
//!   changes injection rates every 20–30 minutes);
//! - [`sim`] — the event loop, metric checkpoints every 15 s, crash
//!   detection, and the *frozen-rate fork* used to compute the paper's
//!   ground truth ("we fix the current injection rate and then simulate the
//!   system until a crash occurs").
//!
//! Everything is deterministic given a seed, and the simulator is `Clone`,
//! which is what makes the frozen-rate ground truth exact.
//!
//! # Example
//!
//! ```
//! use aging_testbed::{MemLeakSpec, Scenario};
//!
//! let scenario = Scenario::builder("quick")
//!     .emulated_browsers(100)
//!     .memory_leak(MemLeakSpec::new(30))
//!     .run_to_crash()
//!     .build();
//! let trace = scenario.run(7);
//! assert!(trace.crash.is_some(), "an N=30 leak must crash the server");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod inject;
pub mod jvm;
pub mod os;
pub mod scenario;
pub mod server;
pub mod sim;
pub mod tpcw;
pub mod workload;

pub use config::SimConfig;
pub use inject::{MemLeakSpec, PeriodicSpec, ThreadLeakSpec};
pub use scenario::{Phase, Scenario, ScenarioBuilder};
pub use sim::{CrashKind, MetricSample, RunTrace, Simulator, StepOutcome};
pub use tpcw::{Interaction, TpcwMix};
