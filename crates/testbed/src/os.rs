//! The operating-system view of the application server.
//!
//! The paper's second motivating example (Figure 2) hinges on a Linux
//! behaviour this module reproduces: "when an application frees up some
//! memory, the system does not recover this memory automatically: it only
//! recovers it when required by other applications. Due to this behavior,
//! if we monitor the OS memory consumed by an application it may look
//! constant along time, but if we observe the Java Heap Memory, the
//! application is releasing and consuming memory."
//!
//! Accordingly, the Tomcat resident set reported here is built from the
//! heap's *touched high-water mark*, not its current usage.

use crate::config::SystemConfig;
use crate::jvm::Heap;
use serde::{Deserialize, Serialize};

/// Host-level accounting for the application-server machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsView {
    config: SystemConfig,
    disk_used_mb: f64,
    mysql_rss_mb: f64,
}

impl OsView {
    /// Creates the host view.
    pub fn new(config: SystemConfig, mysql_rss_mb: f64) -> Self {
        OsView { config, disk_used_mb: config.disk_used_mb, mysql_rss_mb }
    }

    /// The OS-perspective resident set of the Tomcat process in MB: base
    /// RSS + permanent generation + heap high-water + native thread stacks.
    ///
    /// This is the paper's "Tomcat Memory used, OS perspective" (dark lines
    /// of Figures 1 and 2): it never decreases when the JVM frees objects.
    pub fn tomcat_rss_mb(&self, heap: &Heap, process_threads: u64) -> f64 {
        self.config.base_tomcat_rss_mb
            + heap.perm_mb()
            + heap.touched_high_water()
            + process_threads as f64 * self.config.thread_stack_mb
    }

    /// Total system memory used in MB (OS + MySQL + Tomcat).
    pub fn system_mem_used_mb(&self, heap: &Heap, process_threads: u64) -> f64 {
        self.config.base_os_mb + self.mysql_rss_mb + self.tomcat_rss_mb(heap, process_threads)
    }

    /// Free swap in MB: swap starts being consumed once physical RAM is
    /// exhausted.
    pub fn swap_free_mb(&self, heap: &Heap, process_threads: u64) -> f64 {
        let used = self.system_mem_used_mb(heap, process_threads);
        let overflow = (used - self.config.ram_mb).max(0.0);
        (self.config.swap_mb - overflow).max(0.0)
    }

    /// Whether physical memory + swap are exhausted (the machine cannot
    /// back any further allocation: the process is killed).
    pub fn memory_exhausted(&self, heap: &Heap, process_threads: u64) -> bool {
        self.system_mem_used_mb(heap, process_threads) >= self.config.ram_mb + self.config.swap_mb
    }

    /// Whether the process exceeds the kernel thread limit.
    pub fn thread_limit_exceeded(&self, process_threads: u64) -> bool {
        process_threads > self.config.max_process_threads
    }

    /// Accounts log output for `requests` completed requests.
    pub fn log_requests(&mut self, requests: u64) {
        self.disk_used_mb = (self.disk_used_mb + requests as f64 * self.config.log_mb_per_request)
            .min(self.config.disk_mb);
    }

    /// Disk space used in MB.
    pub fn disk_used_mb(&self) -> f64 {
        self.disk_used_mb
    }

    /// Number of OS processes reported by the monitor.
    pub fn num_processes(&self) -> u64 {
        self.config.base_processes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeapConfig;

    fn setup() -> (OsView, Heap) {
        (OsView::new(SystemConfig::default(), 380.0), Heap::new(HeapConfig::default()))
    }

    #[test]
    fn rss_tracks_high_water_not_current_usage() {
        let (os, mut heap) = setup();
        let before = os.tomcat_rss_mb(&heap, 76);
        heap.leak(200.0).unwrap();
        let grown = os.tomcat_rss_mb(&heap, 76);
        assert!(grown >= before + 200.0);
        heap.release_leaked(200.0);
        assert_eq!(
            os.tomcat_rss_mb(&heap, 76),
            grown,
            "freed JVM memory must not shrink the OS view (Figure 2)"
        );
    }

    #[test]
    fn threads_add_stack_memory() {
        let (os, heap) = setup();
        let a = os.tomcat_rss_mb(&heap, 100);
        let b = os.tomcat_rss_mb(&heap, 300);
        assert!((b - a - 200.0).abs() < 1e-9, "1 MB stack per thread");
    }

    #[test]
    fn swap_consumed_after_ram() {
        let (os, mut heap) = setup();
        assert_eq!(os.swap_free_mb(&heap, 76), 1024.0, "no pressure: all swap free");
        // Push the high-water near the heap max plus lots of threads.
        heap.leak(800.0).unwrap();
        let free = os.swap_free_mb(&heap, 1200);
        assert!(free < 1024.0, "800 MB heap + 1200 threads must dip into swap");
    }

    #[test]
    fn memory_exhaustion_boundary() {
        let (os, mut heap) = setup();
        assert!(!os.memory_exhausted(&heap, 76));
        heap.leak(800.0).unwrap();
        assert!(os.memory_exhausted(&heap, 1700), "heap + 1700 stacks > RAM + swap");
    }

    #[test]
    fn thread_limit() {
        let (os, _) = setup();
        assert!(!os.thread_limit_exceeded(1400));
        assert!(os.thread_limit_exceeded(1401));
    }

    #[test]
    fn disk_grows_with_requests_and_saturates() {
        let (mut os, _) = setup();
        let before = os.disk_used_mb();
        os.log_requests(10_000);
        assert!(os.disk_used_mb() > before);
        os.log_requests(u64::MAX / 1_000_000);
        assert!(os.disk_used_mb() <= SystemConfig::default().disk_mb);
    }

    #[test]
    fn process_count_is_stable() {
        let (os, _) = setup();
        assert_eq!(os.num_processes(), 82);
    }
}
