//! The paper's aging fault injectors (Section 3).
//!
//! - **Memory**: "we have modified a servlet (`TPCW_Search_request_servlet`)
//!   which computes a random number between 0 and N. This number determines
//!   how many requests use the servlet before the next memory consumption
//!   is injected." Smaller `N` ⇒ faster leak; the leak rate is
//!   workload-dependent because it is driven by servlet visits.
//! - **Threads**: "At every injection, the system injects a random number of
//!   threads between 0 and M, and determines how much time occurs until the
//!   next injection, a random number (in seconds) between 0 and T." Thread
//!   injection is independent of the workload.
//! - **Periodic pattern** (Experiment 4.3 / Figure 2): alternating
//!   *acquire* and *release* phases; with a faster acquire rate than
//!   release rate, memory is retained every cycle and the aging hides
//!   inside the waves.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the memory-leak injector: leak [`MemLeakSpec::chunk_mb`]
/// every `U(0..=n)` search-servlet requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemLeakSpec {
    /// The paper's `N` (15, 30 or 75 in the experiments).
    pub n: u32,
    /// MB injected per leak event (the paper injects 1 MB).
    pub chunk_mb: f64,
}

impl MemLeakSpec {
    /// A 1 MB-per-event leak with the given `N`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "N must be positive");
        MemLeakSpec { n, chunk_mb: 1.0 }
    }

    /// Expected leak rate in MB per search request.
    ///
    /// One injection cycle is `countdown + 1` requests with
    /// `countdown ~ U(0..=n)`, so the mean period is `n/2 + 1` requests.
    pub fn expected_mb_per_search(&self) -> f64 {
        self.chunk_mb / (self.n as f64 / 2.0 + 1.0)
    }
}

/// Parameters of the thread-leak injector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadLeakSpec {
    /// The paper's `M`: up to `M` threads per injection (15, 30 or 45).
    pub m: u32,
    /// The paper's `T`: up to `T` seconds between injections (60, 90, 120).
    pub t_secs: u32,
}

impl ThreadLeakSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `t_secs == 0`.
    pub fn new(m: u32, t_secs: u32) -> Self {
        assert!(m > 0, "M must be positive");
        assert!(t_secs > 0, "T must be positive");
        ThreadLeakSpec { m, t_secs }
    }

    /// Expected injection rate in threads per second
    /// (`E[U(0..=m)] / E[U(0..=t)]`).
    pub fn expected_threads_per_sec(&self) -> f64 {
        (self.m as f64 / 2.0) / (self.t_secs as f64 / 2.0)
    }
}

/// Parameters of the periodic acquire/release pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicSpec {
    /// `N` during the acquire phase (paper: 30).
    pub acquire_n: u32,
    /// `N` during the release phase (paper: 75).
    pub release_n: u32,
    /// Length of each phase in seconds (paper: 20 minutes).
    pub phase_secs: u64,
    /// MB moved per event (paper: 1 MB).
    pub chunk_mb: f64,
}

impl PeriodicSpec {
    /// The paper's Experiment 4.3 pattern: acquire at `N = 30`, release at
    /// `N = 75`, 20-minute phases, 1 MB chunks.
    pub fn paper_exp43() -> Self {
        PeriodicSpec { acquire_n: 30, release_n: 75, phase_secs: 20 * 60, chunk_mb: 1.0 }
    }
}

/// Runtime state of the memory-leak injector: counts search-servlet visits
/// down to the next leak event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemLeakInjector {
    spec: MemLeakSpec,
    countdown: u32,
    events: u64,
}

impl MemLeakInjector {
    /// Creates the injector, drawing the first countdown.
    pub fn new<R: Rng>(spec: MemLeakSpec, rng: &mut R) -> Self {
        let countdown = rng.gen_range(0..=spec.n);
        MemLeakInjector { spec, countdown, events: 0 }
    }

    /// Called on every search-servlet request; returns the MB to inject now
    /// (0.0 for most calls).
    pub fn on_search_request<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if self.countdown == 0 {
            self.countdown = rng.gen_range(0..=self.spec.n);
            self.events += 1;
            self.spec.chunk_mb
        } else {
            self.countdown -= 1;
            0.0
        }
    }

    /// Number of leak events fired so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The spec this injector runs.
    pub fn spec(&self) -> MemLeakSpec {
        self.spec
    }
}

/// Runtime state of the thread-leak injector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadLeakInjector {
    spec: ThreadLeakSpec,
    events: u64,
}

impl ThreadLeakInjector {
    /// Creates the injector.
    pub fn new(spec: ThreadLeakSpec) -> Self {
        ThreadLeakInjector { spec, events: 0 }
    }

    /// Delay until the next injection, in ms: `U(0..=T)` seconds.
    pub fn next_delay_ms<R: Rng>(&self, rng: &mut R) -> u64 {
        u64::from(rng.gen_range(0..=self.spec.t_secs)) * 1000
    }

    /// Number of threads to spawn at an injection instant: `U(0..=M)`.
    pub fn injection_size<R: Rng>(&mut self, rng: &mut R) -> u64 {
        self.events += 1;
        u64::from(rng.gen_range(0..=self.spec.m))
    }

    /// Number of injection instants so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The spec this injector runs.
    pub fn spec(&self) -> ThreadLeakSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "N must be positive")]
    fn zero_n_panics() {
        let _ = MemLeakSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "M must be positive")]
    fn zero_m_panics() {
        let _ = ThreadLeakSpec::new(0, 60);
    }

    #[test]
    #[should_panic(expected = "T must be positive")]
    fn zero_t_panics() {
        let _ = ThreadLeakSpec::new(15, 0);
    }

    #[test]
    fn mem_leak_rate_matches_expectation() {
        let spec = MemLeakSpec::new(30);
        let mut rng = StdRng::seed_from_u64(11);
        let mut inj = MemLeakInjector::new(spec, &mut rng);
        let searches = 200_000;
        let total: f64 = (0..searches).map(|_| inj.on_search_request(&mut rng)).sum();
        let per_search = total / searches as f64;
        let expected = spec.expected_mb_per_search();
        assert!(
            (per_search - expected).abs() < expected * 0.05,
            "measured {per_search} MB/search vs expected {expected}"
        );
        assert!(inj.events() > 0);
    }

    #[test]
    fn smaller_n_leaks_faster() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut fast = MemLeakInjector::new(MemLeakSpec::new(15), &mut rng);
        let mut slow = MemLeakInjector::new(MemLeakSpec::new(75), &mut rng);
        let mut fast_total = 0.0;
        let mut slow_total = 0.0;
        for _ in 0..100_000 {
            fast_total += fast.on_search_request(&mut rng);
            slow_total += slow.on_search_request(&mut rng);
        }
        assert!(fast_total > slow_total * 3.0, "N=15 must leak ~5x faster than N=75");
    }

    #[test]
    fn thread_injection_rates() {
        let spec = ThreadLeakSpec::new(30, 90);
        let mut rng = StdRng::seed_from_u64(13);
        let mut inj = ThreadLeakInjector::new(spec);
        let rounds = 50_000;
        let mut threads = 0u64;
        let mut time_ms = 0u64;
        for _ in 0..rounds {
            time_ms += inj.next_delay_ms(&mut rng);
            threads += inj.injection_size(&mut rng);
        }
        let per_sec = threads as f64 / (time_ms as f64 / 1000.0);
        let expected = spec.expected_threads_per_sec();
        assert!(
            (per_sec - expected).abs() < expected * 0.1,
            "measured {per_sec} threads/s vs expected {expected}"
        );
        assert_eq!(inj.events(), rounds);
    }

    #[test]
    fn periodic_spec_paper_values() {
        let p = PeriodicSpec::paper_exp43();
        assert_eq!(p.acquire_n, 30);
        assert_eq!(p.release_n, 75);
        assert_eq!(p.phase_secs, 1200);
        assert_eq!(p.chunk_mb, 1.0);
        // Acquire faster than release => net retention per cycle.
        let acquire_rate =
            MemLeakSpec { n: p.acquire_n, chunk_mb: p.chunk_mb }.expected_mb_per_search();
        let release_rate =
            MemLeakSpec { n: p.release_n, chunk_mb: p.chunk_mb }.expected_mb_per_search();
        assert!(acquire_rate > release_rate * 2.0);
    }

    #[test]
    fn expected_rates_formulae() {
        assert!((MemLeakSpec::new(30).expected_mb_per_search() - 1.0 / 16.0).abs() < 1e-12);
        assert!(
            (ThreadLeakSpec::new(30, 90).expected_threads_per_sec() - 15.0 / 45.0).abs() < 1e-12
        );
    }
}
