//! Property-based tests for the learners: fitting never panics on valid
//! data, predictions stay finite, exact relations are recovered, and the
//! evaluation metrics respect their defining inequalities.

use aging_dataset::Dataset;
use aging_ml::eval::{evaluate, EvalConfig};
use aging_ml::linreg::LinRegLearner;
use aging_ml::m5p::M5pLearner;
use aging_ml::regtree::RegTreeLearner;
use aging_ml::{Learner, Regressor};
use proptest::prelude::*;

fn dataset_2d(points: &[(f64, f64, f64)]) -> Dataset {
    let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
    for &(a, b, y) in points {
        ds.push_row(vec![a, b], y).unwrap();
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn linreg_recovers_exact_plane(
        intercept in -100.0..100.0f64,
        ca in -10.0..10.0f64,
        cb in -10.0..10.0f64,
        seeds in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 10..60),
    ) {
        let points: Vec<(f64, f64, f64)> =
            seeds.iter().map(|&(a, b)| (a, b, intercept + ca * a + cb * b)).collect();
        let ds = dataset_2d(&points);
        let m = LinRegLearner::without_elimination().fit(&ds).unwrap();
        for &(a, b, y) in &points {
            let p = Regressor::predict(&m, &[a, b]);
            prop_assert!((p - y).abs() < 1e-5_f64.max(y.abs() * 1e-6), "pred {p} vs {y}");
        }
    }

    #[test]
    fn m5p_predictions_finite_on_arbitrary_data(
        points in prop::collection::vec((-1.0e4..1.0e4f64, -1.0e4..1.0e4f64, -1.0e6..1.0e6f64), 1..120),
        probe in prop::collection::vec((-1.0e6..1.0e6f64, -1.0e6..1.0e6f64), 5),
    ) {
        let ds = dataset_2d(&points);
        let m = M5pLearner::default().fit(&ds).unwrap();
        for &(a, b) in &probe {
            prop_assert!(m.predict(&[a, b]).is_finite());
        }
        prop_assert!(m.n_leaves() >= 1);
        prop_assert_eq!(m.n_inner_nodes() + 1, m.n_leaves(), "binary tree shape");
    }

    #[test]
    fn m5p_constant_target_predicts_constant(
        points in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 4..60),
        target in -1.0e5..1.0e5f64,
    ) {
        let data: Vec<(f64, f64, f64)> = points.iter().map(|&(a, b)| (a, b, target)).collect();
        let ds = dataset_2d(&data);
        let m = M5pLearner::default().fit(&ds).unwrap();
        prop_assert!((m.predict(&[0.0, 0.0]) - target).abs() < 1e-6_f64.max(target.abs() * 1e-9));
    }

    #[test]
    fn regtree_prediction_within_target_range(
        points in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64, -1.0e4..1.0e4f64), 2..100),
        probe in (-1.0e5..1.0e5f64, -1.0e5..1.0e5f64),
    ) {
        let ds = dataset_2d(&points);
        let t = RegTreeLearner::default().fit(&ds).unwrap();
        let lo = points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.2).fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&[probe.0, probe.1]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "constant leaves cannot extrapolate");
    }

    #[test]
    fn smae_never_exceeds_mae_and_margin_monotone(
        pairs in prop::collection::vec((0.0..2.0e4f64, 0.0..2.0e4f64), 1..80),
    ) {
        let preds: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let actuals: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let narrow = evaluate(&preds, &actuals, &EvalConfig { security_margin: 0.05, ..Default::default() });
        let standard = evaluate(&preds, &actuals, &EvalConfig::default());
        let wide = evaluate(&preds, &actuals, &EvalConfig { security_margin: 0.25, ..Default::default() });
        prop_assert!(standard.s_mae <= standard.mae + 1e-9);
        prop_assert!(wide.s_mae <= standard.s_mae + 1e-9);
        prop_assert!(standard.s_mae <= narrow.s_mae + 1e-9);
        // PRE/POST partition the instances.
        let n_pre = actuals.iter().filter(|&&a| a > 600.0).count();
        prop_assert_eq!(standard.pre_mae.is_some(), n_pre > 0);
        prop_assert_eq!(standard.post_mae.is_some(), n_pre < actuals.len());
    }

    #[test]
    fn m5p_training_mae_not_worse_than_global_mean_model(
        points in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64, -1.0e4..1.0e4f64), 20..150),
    ) {
        let ds = dataset_2d(&points);
        let m = M5pLearner::default().fit(&ds).unwrap();
        let mean = ds.target_mean().unwrap();
        let mae_model: f64 = ds.iter().map(|r| (m.predict(r.values()) - r.target()).abs()).sum::<f64>() / ds.len() as f64;
        let mae_mean: f64 = ds.iter().map(|r| (mean - r.target()).abs()).sum::<f64>() / ds.len() as f64;
        // Allow a little slack: smoothing can cost a bit on pathological data.
        prop_assert!(mae_model <= mae_mean * 1.25 + 1e-6, "model {mae_model} vs mean {mae_mean}");
    }

    #[test]
    fn m5p_is_deterministic(
        points in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64, -1.0e4..1.0e4f64), 5..80),
    ) {
        let ds = dataset_2d(&points);
        let a = M5pLearner::default().fit(&ds).unwrap();
        let b = M5pLearner::default().fit(&ds).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn arma_forecast_is_finite(
        start in -1.0e3..1.0e3f64,
        slope in -10.0..10.0f64,
        n in 60usize..200,
    ) {
        let series: Vec<f64> = (0..n).map(|i| start + slope * i as f64).collect();
        if let Ok(m) = aging_ml::arma::ArmaModel::fit(&series, 2, 1) {
            for v in m.forecast(50) {
                prop_assert!(v.is_finite());
            }
        }
    }
}
