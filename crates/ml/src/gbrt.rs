//! Gradient-boosted regression trees (least-squares boosting).
//!
//! The second "more sophisticated" ensemble the paper's Section 1 mentions.
//! Classic Friedman LS-boost: start from the target mean, then repeatedly
//! fit a shallow regression tree to the current residuals and add a
//! shrunken copy of it to the ensemble.

use crate::regtree::{RegTreeLearner, RegressionTree};
use crate::{Learner, MlError, Regressor};
use aging_dataset::Dataset;

/// Configuration for gradient boosting.
#[derive(Debug, Clone, PartialEq)]
pub struct GbrtLearner {
    /// Number of boosting stages.
    pub n_stages: usize,
    /// Shrinkage (learning rate) applied to every stage.
    pub learning_rate: f64,
    /// Minimum instances per leaf of the stage trees (kept large: stages
    /// must be weak learners).
    pub min_instances: usize,
}

impl Default for GbrtLearner {
    fn default() -> Self {
        GbrtLearner { n_stages: 100, learning_rate: 0.1, min_instances: 20 }
    }
}

/// A fitted boosted ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GbrtModel {
    base: f64,
    learning_rate: f64,
    stages: Vec<RegressionTree>,
}

impl GbrtModel {
    /// Number of fitted stages (may be fewer than requested if residuals
    /// vanish early).
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

impl Regressor for GbrtModel {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut y = self.base;
        for stage in &self.stages {
            y += self.learning_rate * stage.predict(x);
        }
        y
    }

    fn name(&self) -> &'static str {
        "GBRT"
    }

    fn describe(&self) -> String {
        format!(
            "ls-boosted ensemble: base {:.3} + {} stages x lr {}",
            self.base,
            self.stages.len(),
            self.learning_rate
        )
    }
}

impl Learner for GbrtLearner {
    type Model = GbrtModel;

    fn fit(&self, data: &Dataset) -> Result<GbrtModel, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.n_stages == 0 {
            return Err(MlError::InvalidParameter("n_stages must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.learning_rate) || self.learning_rate == 0.0 {
            return Err(MlError::InvalidParameter("learning_rate must be in (0, 1]".into()));
        }

        let base = data.target_mean().expect("non-empty dataset");
        let tree_learner =
            RegTreeLearner { min_instances: self.min_instances, pruning: false, sd_fraction: 0.01 };

        let mut residuals: Vec<f64> = data.targets().iter().map(|t| t - base).collect();
        let mut stages = Vec::with_capacity(self.n_stages);
        for _ in 0..self.n_stages {
            // Residual dataset shares the attributes, swaps the targets.
            let mut res_ds =
                Dataset::new(data.attribute_names().to_vec(), data.target_name().to_string());
            for (i, &r) in residuals.iter().enumerate() {
                res_ds
                    .push_row(data.row(i).values().to_vec(), r)
                    .expect("rows come from a valid dataset");
            }
            let stage = tree_learner.fit(&res_ds)?;
            let mut any_signal = false;
            for (i, r) in residuals.iter_mut().enumerate() {
                let step = stage.predict(data.row(i).values());
                if step.abs() > 1e-12 {
                    any_signal = true;
                }
                *r -= self.learning_rate * step;
            }
            stages.push(stage);
            if !any_signal {
                break; // residuals exhausted: further stages are no-ops
            }
        }
        Ok(GbrtModel { base, learning_rate: self.learning_rate, stages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regtree::RegTreeLearner;

    fn wave(n: usize) -> Dataset {
        // A smooth nonlinear target trees must compose to approximate.
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..n {
            let x = i as f64 / n as f64 * 10.0;
            ds.push_row(vec![x], (x).sin() * 100.0 + 10.0 * x).unwrap();
        }
        ds
    }

    #[test]
    fn boosting_beats_a_single_shallow_tree() {
        let ds = wave(400);
        let gbrt = GbrtLearner::default().fit(&ds).unwrap();
        let single = RegTreeLearner { min_instances: 20, ..Default::default() }.fit(&ds).unwrap();
        let mae = |m: &dyn Regressor| {
            ds.iter().map(|r| (m.predict(r.values()) - r.target()).abs()).sum::<f64>()
                / ds.len() as f64
        };
        assert!(
            mae(&gbrt) < mae(&single) / 2.0,
            "boosting {} should be far below a single weak tree {}",
            mae(&gbrt),
            mae(&single)
        );
    }

    #[test]
    fn constant_target_stops_early() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            ds.push_row(vec![i as f64], 5.0).unwrap();
        }
        let m = GbrtLearner::default().fit(&ds).unwrap();
        assert!(m.n_stages() < 5, "no residual signal => early stop, got {}", m.n_stages());
        assert!((m.predict(&[50.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let ds = wave(50);
        assert!(GbrtLearner { n_stages: 0, ..Default::default() }.fit(&ds).is_err());
        assert!(GbrtLearner { learning_rate: 0.0, ..Default::default() }.fit(&ds).is_err());
        assert!(GbrtLearner { learning_rate: 1.5, ..Default::default() }.fit(&ds).is_err());
        let empty = Dataset::new(vec!["x".into()], "y");
        assert!(matches!(GbrtLearner::default().fit(&empty), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn more_stages_reduce_training_error() {
        let ds = wave(300);
        let short = GbrtLearner { n_stages: 10, ..Default::default() }.fit(&ds).unwrap();
        let long = GbrtLearner { n_stages: 200, ..Default::default() }.fit(&ds).unwrap();
        let mae = |m: &GbrtModel| {
            ds.iter().map(|r| (m.predict(r.values()) - r.target()).abs()).sum::<f64>()
                / ds.len() as f64
        };
        assert!(mae(&long) < mae(&short));
    }

    #[test]
    fn deterministic() {
        let ds = wave(150);
        let a = GbrtLearner::default().fit(&ds).unwrap();
        let b = GbrtLearner::default().fit(&ds).unwrap();
        assert_eq!(a, b);
    }
}
