use std::fmt;

/// Error type for model fitting and evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum MlError {
    /// Fitting was attempted on a dataset with no rows.
    EmptyTrainingSet,
    /// Fitting was attempted with fewer rows than the algorithm requires.
    TooFewInstances {
        /// Rows required.
        needed: usize,
        /// Rows available.
        got: usize,
    },
    /// The design matrix was singular and no fallback applied.
    SingularSystem,
    /// A caller-supplied parameter was invalid.
    InvalidParameter(String),
    /// An underlying dataset operation failed.
    Dataset(aging_dataset::DatasetError),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "training set is empty"),
            MlError::TooFewInstances { needed, got } => {
                write!(f, "too few training instances: need {needed}, got {got}")
            }
            MlError::SingularSystem => write!(f, "singular linear system"),
            MlError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            MlError::Dataset(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<aging_dataset::DatasetError> for MlError {
    fn from(e: aging_dataset::DatasetError) -> Self {
        MlError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MlError::EmptyTrainingSet.to_string().contains("empty"));
        assert!(MlError::TooFewInstances { needed: 4, got: 1 }.to_string().contains("need 4"));
        assert!(MlError::SingularSystem.to_string().contains("singular"));
        assert!(MlError::InvalidParameter("p must be > 0".into()).to_string().contains("p must"));
    }

    #[test]
    fn dataset_error_is_wrapped_with_source() {
        use std::error::Error as _;
        let inner = aging_dataset::DatasetError::UnknownColumn("x".into());
        let e = MlError::from(inner);
        assert!(e.source().is_some());
    }
}
