//! Bootstrap aggregation (bagging) over any base learner.
//!
//! The paper's Section 1 names bagging among the "more sophisticated ML
//! techniques \[that\] can surely obtain better accuracy" than a single M5P,
//! at the cost of interpretability and training time. This module lets the
//! benches test that claim: [`BaggingLearner`] fits `n_members` base models
//! on bootstrap resamples and averages their predictions.

use crate::{Learner, MlError, Regressor};
use aging_dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bagged ensemble learner over a base [`Learner`].
///
/// # Example
///
/// ```
/// use aging_dataset::Dataset;
/// use aging_ml::{bagging::BaggingLearner, m5p::M5pLearner, Learner, Regressor};
///
/// let mut ds = Dataset::new(vec!["x".into()], "y");
/// for i in 0..200 {
///     let x = i as f64;
///     ds.push_row(vec![x], if x < 100.0 { x } else { 200.0 - x })?;
/// }
/// let bagged = BaggingLearner::new(M5pLearner::default(), 10, 7).fit(&ds)?;
/// assert!((bagged.predict(&[50.0]) - 50.0).abs() < 20.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BaggingLearner<L> {
    base: L,
    n_members: usize,
    seed: u64,
}

impl<L> BaggingLearner<L> {
    /// Creates a bagging learner with `n_members` bootstrap members.
    ///
    /// # Panics
    ///
    /// Panics if `n_members == 0`.
    pub fn new(base: L, n_members: usize, seed: u64) -> Self {
        assert!(n_members > 0, "bagging needs at least one member");
        BaggingLearner { base, n_members, seed }
    }

    /// Number of ensemble members.
    pub fn n_members(&self) -> usize {
        self.n_members
    }
}

/// A fitted bagged ensemble.
#[derive(Debug)]
pub struct BaggedModel<M> {
    members: Vec<M>,
}

impl<M> BaggedModel<M> {
    /// The fitted members.
    pub fn members(&self) -> &[M] {
        &self.members
    }
}

impl<M: Regressor> Regressor for BaggedModel<M> {
    fn predict(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.members.iter().map(|m| m.predict(x)).sum();
        sum / self.members.len() as f64
    }

    fn name(&self) -> &'static str {
        "Bagging"
    }

    fn describe(&self) -> String {
        format!(
            "bagged ensemble of {} x {}",
            self.members.len(),
            self.members.first().map_or("?", |m| m.name())
        )
    }
}

impl<L: Learner> Learner for BaggingLearner<L> {
    type Model = BaggedModel<L::Model>;

    fn fit(&self, data: &Dataset) -> Result<Self::Model, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = data.len();
        let mut members = Vec::with_capacity(self.n_members);
        for _ in 0..self.n_members {
            let mut sample =
                Dataset::new(data.attribute_names().to_vec(), data.target_name().to_string());
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                sample
                    .push_row(data.row(i).values().to_vec(), data.target(i))
                    .expect("resampled rows come from a valid dataset");
            }
            members.push(self.base.fit(&sample)?);
        }
        Ok(BaggedModel { members })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m5p::M5pLearner;
    use crate::regtree::RegTreeLearner;

    fn noisy_piecewise(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        let mut s = 5u64;
        for i in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = (((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * 40.0;
            let x = i as f64;
            let y = if x < n as f64 / 2.0 { 2.0 * x } else { 2.0 * n as f64 - 2.0 * x };
            ds.push_row(vec![x], y + noise).unwrap();
        }
        ds
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let _ = BaggingLearner::new(M5pLearner::default(), 0, 1);
    }

    #[test]
    fn empty_dataset_errors() {
        let ds = Dataset::new(vec!["x".into()], "y");
        let learner = BaggingLearner::new(RegTreeLearner::default(), 3, 1);
        assert!(matches!(learner.fit(&ds), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn averaging_reduces_variance_of_trees() {
        let ds = noisy_piecewise(400);
        let single = RegTreeLearner { min_instances: 4, pruning: false, ..Default::default() }
            .fit(&ds)
            .unwrap();
        let bagged = BaggingLearner::new(
            RegTreeLearner { min_instances: 4, pruning: false, ..Default::default() },
            15,
            42,
        )
        .fit(&ds)
        .unwrap();
        // Compare against the clean underlying function on a grid.
        let truth = |x: f64| if x < 200.0 { 2.0 * x } else { 800.0 - 2.0 * x };
        let err = |m: &dyn Regressor| {
            (0..40)
                .map(|k| {
                    let x = 5.0 + k as f64 * 10.0;
                    (m.predict(&[x]) - truth(x)).abs()
                })
                .sum::<f64>()
                / 40.0
        };
        assert!(
            err(&bagged) < err(&single),
            "bagging should denoise: {} vs {}",
            err(&bagged),
            err(&single)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = noisy_piecewise(150);
        let a = BaggingLearner::new(M5pLearner::default(), 5, 9).fit(&ds).unwrap();
        let b = BaggingLearner::new(M5pLearner::default(), 5, 9).fit(&ds).unwrap();
        for x in [0.0, 50.0, 149.0] {
            assert_eq!(a.predict(&[x]), b.predict(&[x]));
        }
    }

    #[test]
    fn member_access_and_naming() {
        let ds = noisy_piecewise(100);
        let m = BaggingLearner::new(M5pLearner::default(), 4, 3).fit(&ds).unwrap();
        assert_eq!(m.members().len(), 4);
        assert_eq!(m.name(), "Bagging");
        assert!(m.describe().contains("M5P"));
    }
}
