//! The *prediction board* — the consensus ensemble the paper sketches in
//! its conclusions: "build a prediction board with a set of prediction
//! models to reach a consensus to increase the prediction accuracy".
//!
//! A [`PredictionBoard`] holds any number of fitted [`Regressor`]s and
//! combines their outputs with a [`Consensus`] rule.

use crate::{MlError, Regressor};
use aging_dataset::stats;

/// How the board combines member predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Consensus {
    /// Arithmetic mean of all member predictions.
    Mean,
    /// Median of all member predictions (robust to one wild model).
    Median,
    /// Mean after discarding the single lowest and highest prediction
    /// (requires at least three members; falls back to plain mean below
    /// that).
    TrimmedMean,
}

/// An ensemble of fitted models reaching a consensus prediction.
///
/// # Example
///
/// ```
/// use aging_dataset::Dataset;
/// use aging_ml::{board::{Consensus, PredictionBoard}, Learner, Regressor};
/// use aging_ml::{linreg::LinRegLearner, regtree::RegTreeLearner};
///
/// let mut ds = Dataset::new(vec!["x".into()], "y");
/// for i in 0..100 { ds.push_row(vec![i as f64], 3.0 * i as f64)?; }
///
/// let board = PredictionBoard::new(
///     vec![
///         LinRegLearner::default().fit_boxed(&ds)?,
///         RegTreeLearner::default().fit_boxed(&ds)?,
///     ],
///     Consensus::Mean,
/// )?;
/// assert!(board.predict(&[50.0]) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct PredictionBoard {
    members: Vec<Box<dyn Regressor>>,
    consensus: Consensus,
}

impl PredictionBoard {
    /// Creates a board from fitted members.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `members` is empty.
    pub fn new(members: Vec<Box<dyn Regressor>>, consensus: Consensus) -> Result<Self, MlError> {
        if members.is_empty() {
            return Err(MlError::InvalidParameter(
                "prediction board needs at least one member".into(),
            ));
        }
        Ok(PredictionBoard { members, consensus })
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the board has no members (never true for a constructed board).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The consensus rule in use.
    pub fn consensus(&self) -> Consensus {
        self.consensus
    }

    /// Individual member predictions for `x`, in member order.
    pub fn member_predictions(&self, x: &[f64]) -> Vec<f64> {
        self.members.iter().map(|m| m.predict(x)).collect()
    }

    /// The spread (max − min) of member predictions: a cheap disagreement
    /// signal callers can use as a confidence proxy.
    pub fn disagreement(&self, x: &[f64]) -> f64 {
        let preds = self.member_predictions(x);
        let min = preds.iter().copied().fold(f64::INFINITY, f64::min);
        let max = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        max - min
    }
}

impl Regressor for PredictionBoard {
    fn predict(&self, x: &[f64]) -> f64 {
        let preds = self.member_predictions(x);
        match self.consensus {
            Consensus::Mean => stats::mean(&preds),
            Consensus::Median => stats::median(&preds).expect("board is non-empty"),
            Consensus::TrimmedMean => {
                if preds.len() < 3 {
                    stats::mean(&preds)
                } else {
                    let mut sorted = preds;
                    sorted.sort_by(f64::total_cmp);
                    stats::mean(&sorted[1..sorted.len() - 1])
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "PredictionBoard"
    }

    fn describe(&self) -> String {
        let names: Vec<&str> = self.members.iter().map(|m| m.name()).collect();
        format!("board[{:?}] of {}", self.consensus, names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed-output stub model for combinator tests.
    #[derive(Debug)]
    struct Fixed(f64);

    impl Regressor for Fixed {
        fn predict(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "Fixed"
        }
    }

    fn board(values: &[f64], c: Consensus) -> PredictionBoard {
        PredictionBoard::new(
            values.iter().map(|&v| Box::new(Fixed(v)) as Box<dyn Regressor>).collect(),
            c,
        )
        .unwrap()
    }

    #[test]
    fn empty_board_rejected() {
        assert!(matches!(
            PredictionBoard::new(Vec::new(), Consensus::Mean),
            Err(MlError::InvalidParameter(_))
        ));
    }

    #[test]
    fn mean_consensus() {
        let b = board(&[10.0, 20.0, 60.0], Consensus::Mean);
        assert_eq!(b.predict(&[]), 30.0);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn median_is_robust_to_outlier() {
        let b = board(&[10.0, 12.0, 1e9], Consensus::Median);
        assert_eq!(b.predict(&[]), 12.0);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let b = board(&[0.0, 10.0, 20.0, 1000.0], Consensus::TrimmedMean);
        assert_eq!(b.predict(&[]), 15.0);
        // Fewer than 3 members: falls back to mean.
        let b2 = board(&[10.0, 30.0], Consensus::TrimmedMean);
        assert_eq!(b2.predict(&[]), 20.0);
    }

    #[test]
    fn disagreement_is_spread() {
        let b = board(&[5.0, 9.0, 7.0], Consensus::Mean);
        assert_eq!(b.disagreement(&[]), 4.0);
    }

    #[test]
    fn describe_lists_members() {
        let b = board(&[1.0, 2.0], Consensus::Median);
        assert!(b.describe().contains("Fixed"));
        assert_eq!(b.name(), "PredictionBoard");
        assert!(!b.is_empty());
        assert_eq!(b.consensus(), Consensus::Median);
    }
}
