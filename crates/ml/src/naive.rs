//! The paper's Eq. (1): the naive constant-rate exhaustion predictor
//!
//! ```text
//! TTF_i = (R_max − R_{i,t}) / S_i
//! ```
//!
//! where `R_max` is the maximum available amount of resource `i`, `R_{i,t}`
//! the amount used at instant `t`, and `S_i` the consumption speed. The
//! paper's Section 2 demonstrates why this is too simplistic (non-linear
//! heap behaviour, changing rates, masked aging); we implement it both as a
//! motivating-example reproduction and as the weakest baseline.

use crate::Regressor;
use serde::{Deserialize, Serialize};

/// Closed-form time-to-exhaustion predictor over one resource.
///
/// The model reads the current resource level and its (smoothed) consumption
/// speed from two attribute columns and applies Eq. (1). Predictions are
/// clamped to `[0, cap]`; a non-positive speed (idle or releasing resource)
/// predicts `cap`, the stand-in for "infinite time to failure" (the paper
/// uses 3 h = 10 800 s).
///
/// # Example
///
/// ```
/// use aging_ml::{naive::NaivePredictor, Regressor};
///
/// // Attribute 0: MB used; attribute 1: MB/s consumption speed.
/// let p = NaivePredictor::new(1024.0, 0, 1, 10_800.0);
/// let ttf = p.predict(&[524.0, 0.5]);
/// assert_eq!(ttf, 1000.0); // (1024-524)/0.5
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NaivePredictor {
    resource_max: f64,
    level_attr: usize,
    speed_attr: usize,
    cap: f64,
}

impl NaivePredictor {
    /// Creates a predictor for a resource with capacity `resource_max`,
    /// reading the level from attribute `level_attr` and the speed from
    /// `speed_attr`, clamping predictions to `cap` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `resource_max <= 0` or `cap <= 0`.
    pub fn new(resource_max: f64, level_attr: usize, speed_attr: usize, cap: f64) -> Self {
        assert!(resource_max > 0.0, "resource capacity must be positive");
        assert!(cap > 0.0, "prediction cap must be positive");
        NaivePredictor { resource_max, level_attr, speed_attr, cap }
    }

    /// The "infinite TTF" cap in seconds.
    pub fn cap(&self) -> f64 {
        self.cap
    }
}

impl Regressor for NaivePredictor {
    fn predict(&self, x: &[f64]) -> f64 {
        let level = x[self.level_attr];
        let speed = x[self.speed_attr];
        if speed <= 0.0 {
            return self.cap;
        }
        let remaining = (self.resource_max - level).max(0.0);
        (remaining / speed).clamp(0.0, self.cap)
    }

    fn name(&self) -> &'static str {
        "NaiveEq1"
    }

    fn describe(&self) -> String {
        format!(
            "ttf = (R_max[{}] - x[{}]) / x[{}], clamped to [0, {}]",
            self.resource_max, self.level_attr, self.speed_attr, self.cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_eq1() {
        let p = NaivePredictor::new(100.0, 0, 1, 1e4);
        assert_eq!(p.predict(&[60.0, 2.0]), 20.0);
    }

    #[test]
    fn zero_or_negative_speed_predicts_cap() {
        let p = NaivePredictor::new(100.0, 0, 1, 10_800.0);
        assert_eq!(p.predict(&[60.0, 0.0]), 10_800.0);
        assert_eq!(p.predict(&[60.0, -1.0]), 10_800.0);
    }

    #[test]
    fn exhausted_resource_predicts_zero() {
        let p = NaivePredictor::new(100.0, 0, 1, 1e4);
        assert_eq!(p.predict(&[100.0, 1.0]), 0.0);
        assert_eq!(p.predict(&[150.0, 1.0]), 0.0, "over-capacity clamps to zero");
    }

    #[test]
    fn slow_leak_is_capped() {
        let p = NaivePredictor::new(100.0, 0, 1, 1000.0);
        assert_eq!(p.predict(&[0.0, 1e-9]), 1000.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        let _ = NaivePredictor::new(0.0, 0, 1, 10.0);
    }

    #[test]
    #[should_panic(expected = "cap must be positive")]
    fn bad_cap_panics() {
        let _ = NaivePredictor::new(10.0, 0, 1, 0.0);
    }

    #[test]
    fn naming() {
        let p = NaivePredictor::new(1.0, 0, 1, 1.0);
        assert_eq!(p.name(), "NaiveEq1");
        assert!(p.describe().contains("ttf"));
    }
}
