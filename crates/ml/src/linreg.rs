//! Multiple linear regression — the paper's baseline (Tables 3 and 4) and
//! the building block for the models at M5P leaves.
//!
//! Fitting uses ordinary least squares via the normal equations with partial
//! pivoting; if the system is singular a small ridge is applied, escalating
//! until solvable (and falling back to the target mean in the degenerate
//! case). Optionally the model is *simplified* the way M5 does it: terms are
//! greedily dropped (smallest standardised coefficient first) and the model
//! with the best pessimistic-adjusted error along that sequence is kept.

use crate::{linalg, Learner, MlError, Regressor};
use aging_dataset::{stats, Dataset};
use serde::{Deserialize, Serialize};

/// A fitted (possibly sparse) linear model `y = intercept + Σ coefᵢ·x[idxᵢ]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    attribute_names: Vec<String>,
    /// `(attribute index, coefficient)` pairs, ordered by attribute index.
    terms: Vec<(usize, f64)>,
    intercept: f64,
    /// Mean absolute residual on the training data.
    training_mae: f64,
    n_train: usize,
}

impl LinearModel {
    /// The constant model `y = value` (used as the ultimate fallback and at
    /// unsplit M5P leaves).
    pub fn constant(
        value: f64,
        attribute_names: Vec<String>,
        training_mae: f64,
        n_train: usize,
    ) -> Self {
        LinearModel { attribute_names, terms: Vec::new(), intercept: value, training_mae, n_train }
    }

    /// The intercept term.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The `(attribute index, coefficient)` terms of the model.
    pub fn terms(&self) -> &[(usize, f64)] {
        &self.terms
    }

    /// Number of free parameters (terms + intercept).
    pub fn n_params(&self) -> usize {
        self.terms.len() + 1
    }

    /// Mean absolute residual on the data this model was fitted to.
    pub fn training_mae(&self) -> f64 {
        self.training_mae
    }

    /// Number of training instances the model was fitted to.
    pub fn n_train(&self) -> usize {
        self.n_train
    }

    /// The pessimistic error estimate used by M5: training MAE inflated by
    /// `(n + ν) / (n − ν)` where `ν` is the number of parameters.
    ///
    /// Returns infinity when `n ≤ ν` (not enough data to trust the model).
    pub fn adjusted_error(&self) -> f64 {
        let n = self.n_train as f64;
        let v = self.n_params() as f64;
        if n <= v {
            f64::INFINITY
        } else {
            self.training_mae * (n + v) / (n - v)
        }
    }

    /// Names of the attributes actually used by the model.
    pub fn used_attributes(&self) -> Vec<&str> {
        self.terms.iter().map(|&(i, _)| self.attribute_names[i].as_str()).collect()
    }

    fn fmt_equation(&self) -> String {
        let mut s = String::new();
        for &(idx, coef) in &self.terms {
            s.push_str(&format!("{:+.6} * {} ", coef, self.attribute_names[idx]));
        }
        s.push_str(&format!("{:+.4}", self.intercept));
        s
    }
}

impl Regressor for LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut y = self.intercept;
        for &(idx, coef) in &self.terms {
            y += coef * x[idx];
        }
        y
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        // Same arithmetic as `predict`, with the output preallocated and
        // the sparse term list walked without per-row virtual dispatch.
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut y = self.intercept;
            for &(idx, coef) in &self.terms {
                y += coef * row[idx];
            }
            out.push(y);
        }
        out
    }

    fn predict_matrix(&self, matrix: &crate::FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::with_capacity(matrix.n_rows());
        for row in matrix.rows() {
            let mut y = self.intercept;
            for &(idx, coef) in &self.terms {
                y += coef * row[idx];
            }
            out.push(y);
        }
        out
    }

    fn name(&self) -> &'static str {
        "LinearRegression"
    }

    fn describe(&self) -> String {
        self.fmt_equation()
    }
}

/// Configuration for fitting [`LinearModel`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LinRegLearner {
    /// Initial ridge (0 = plain OLS; a tiny ridge is still applied on
    /// singular systems).
    pub ridge: f64,
    /// Whether to greedily eliminate low-importance terms, M5-style.
    pub eliminate_terms: bool,
}

impl Default for LinRegLearner {
    fn default() -> Self {
        LinRegLearner { ridge: 0.0, eliminate_terms: true }
    }
}

impl LinRegLearner {
    /// A learner that keeps every term (no M5-style elimination).
    pub fn without_elimination() -> Self {
        LinRegLearner { eliminate_terms: false, ..Self::default() }
    }

    /// Fits a model that may only use the attribute columns in `allowed`
    /// (indices into the dataset schema). Other columns get no term.
    ///
    /// This is the entry point M5P uses: a node's model is restricted to the
    /// attributes referenced in its subtree.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] for an empty dataset.
    pub fn fit_on(&self, data: &Dataset, allowed: &[usize]) -> Result<LinearModel, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let mean = data.target_mean().expect("non-empty dataset has a mean");
        let names = data.attribute_names().to_vec();

        // Deduplicate, sort and drop constant columns: they carry no signal
        // and make the normal equations singular together with the intercept.
        let mut allowed: Vec<usize> = {
            let mut a = allowed.to_vec();
            a.sort_unstable();
            a.dedup();
            a
        };
        allowed.retain(|&c| {
            let col = data.column(c).expect("allowed index validated by caller");
            stats::std_dev(&col) > 1e-12
        });

        if allowed.is_empty() || data.len() < 2 {
            let mae = mean_abs_dev(data.targets(), mean);
            return Ok(LinearModel::constant(mean, names, mae, data.len()));
        }

        let full = self.fit_exact(data, &allowed, mean, &names);
        if !self.eliminate_terms {
            return Ok(full);
        }

        // Greedy elimination: drop the term with the smallest standardised
        // coefficient, refit, and keep the best model by adjusted error.
        let col_stds: Vec<f64> = (0..data.n_attributes())
            .map(|c| stats::std_dev(&data.column(c).expect("index in range")))
            .collect();
        let mut best = full.clone();
        let mut current_attrs = allowed;
        let mut current = full;
        while current.terms().len() > 1 {
            let (drop_idx, _) = current
                .terms()
                .iter()
                .map(|&(idx, coef)| (idx, coef.abs() * col_stds[idx]))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty terms");
            current_attrs.retain(|&c| c != drop_idx);
            current = self.fit_exact(data, &current_attrs, mean, &names);
            if current.adjusted_error() < best.adjusted_error() {
                best = current.clone();
            }
        }
        // Also consider the constant model.
        let constant =
            LinearModel::constant(mean, names, mean_abs_dev(data.targets(), mean), data.len());
        if constant.adjusted_error() < best.adjusted_error() {
            best = constant;
        }
        Ok(best)
    }

    /// Fits on the given attribute set without elimination, with ridge
    /// escalation on singular systems and the constant-model fallback.
    fn fit_exact(
        &self,
        data: &Dataset,
        attrs: &[usize],
        target_mean: f64,
        names: &[String],
    ) -> LinearModel {
        let rows = data.len();
        let cols = attrs.len() + 1;
        let mut design = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            design.push(1.0);
            let row = data.row(i);
            for &c in attrs {
                design.push(row.values()[c]);
            }
        }
        let mut lambda = self.ridge;
        let solution = loop {
            match linalg::least_squares(&design, data.targets(), rows, cols, lambda) {
                Some(x) => break Some(x),
                None => {
                    lambda = if lambda == 0.0 { 1e-8 } else { lambda * 100.0 };
                    if lambda > 1e2 {
                        break None;
                    }
                }
            }
        };
        match solution {
            Some(x) => {
                let intercept = x[0];
                let terms: Vec<(usize, f64)> =
                    attrs.iter().copied().zip(x[1..].iter().copied()).collect();
                let mut model = LinearModel {
                    attribute_names: names.to_vec(),
                    terms,
                    intercept,
                    training_mae: 0.0,
                    n_train: rows,
                };
                let mae = data
                    .iter()
                    .map(|r| (model.predict(r.values()) - r.target()).abs())
                    .sum::<f64>()
                    / rows as f64;
                model.training_mae = mae;
                model
            }
            None => LinearModel::constant(
                target_mean,
                names.to_vec(),
                mean_abs_dev(data.targets(), target_mean),
                rows,
            ),
        }
    }
}

impl Learner for LinRegLearner {
    type Model = LinearModel;

    fn fit(&self, data: &Dataset) -> Result<LinearModel, MlError> {
        let all: Vec<usize> = (0..data.n_attributes()).collect();
        self.fit_on(data, &all)
    }
}

fn mean_abs_dev(targets: &[f64], center: f64) -> f64 {
    if targets.is_empty() {
        return 0.0;
    }
    targets.iter().map(|t| (t - center).abs()).sum::<f64>() / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Dataset {
        // y = 5 + 2*a - 3*b
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = (i % 5) as f64 * 0.5;
            ds.push_row(vec![a, b], 5.0 + 2.0 * a - 3.0 * b).unwrap();
        }
        ds
    }

    #[test]
    fn recovers_exact_linear_relation() {
        let ds = linear_data(60);
        let m = LinRegLearner::default().fit(&ds).unwrap();
        assert!((m.predict(&[10.0, 1.0]) - (5.0 + 20.0 - 3.0)).abs() < 1e-6);
        assert!(m.training_mae() < 1e-8);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let ds = Dataset::new(vec!["a".into()], "y");
        assert!(matches!(LinRegLearner::default().fit(&ds), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn single_row_falls_back_to_constant() {
        let mut ds = Dataset::new(vec!["a".into()], "y");
        ds.push_row(vec![1.0], 42.0).unwrap();
        let m = LinRegLearner::default().fit(&ds).unwrap();
        assert_eq!(m.terms().len(), 0);
        assert_eq!(m.predict(&[999.0]), 42.0);
    }

    #[test]
    fn constant_column_gets_no_term() {
        let mut ds = Dataset::new(vec!["c".into(), "x".into()], "y");
        for i in 0..20 {
            ds.push_row(vec![7.0, i as f64], 3.0 * i as f64).unwrap();
        }
        let m = LinRegLearner::default().fit(&ds).unwrap();
        assert!(m.terms().iter().all(|&(idx, _)| idx != 0));
        assert!((m.predict(&[7.0, 4.0]) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn elimination_drops_noise_attribute() {
        // y depends only on a; b is pure noise with tiny correlation.
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], "y");
        let mut state = 1u64;
        for i in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let a = i as f64;
            ds.push_row(vec![a, noise], 2.0 * a + 1.0).unwrap();
        }
        let m = LinRegLearner::default().fit(&ds).unwrap();
        let used = m.used_attributes();
        assert!(used.contains(&"a"));
        // The noise term should have been eliminated or have a tiny coefficient.
        let b_coef =
            m.terms().iter().find(|&&(idx, _)| idx == 1).map(|&(_, c)| c.abs()).unwrap_or(0.0);
        assert!(b_coef < 0.5, "noise coefficient {b_coef} too large");
    }

    #[test]
    fn fit_on_restricts_attributes() {
        let ds = linear_data(50);
        let m = LinRegLearner::default().fit_on(&ds, &[0]).unwrap();
        assert!(m.terms().iter().all(|&(idx, _)| idx == 0));
    }

    #[test]
    fn duplicate_allowed_indices_are_deduped() {
        let ds = linear_data(50);
        let m = LinRegLearner::default().fit_on(&ds, &[0, 0, 1, 1]).unwrap();
        assert!(m.terms().len() <= 2);
        assert!((m.predict(&[4.0, 2.0]) - (5.0 + 8.0 - 6.0)).abs() < 1e-6);
    }

    #[test]
    fn collinear_columns_still_fit_via_ridge() {
        let mut ds = Dataset::new(vec!["a".into(), "a2".into()], "y");
        for i in 0..30 {
            let a = i as f64;
            ds.push_row(vec![a, a], 4.0 * a).unwrap();
        }
        let m = LinRegLearner::without_elimination().fit(&ds).unwrap();
        assert!((m.predict(&[10.0, 10.0]) - 40.0).abs() < 1e-2);
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_predict() {
        let ds = linear_data(60);
        let rows: Vec<Vec<f64>> = ds.iter().map(|r| r.values().to_vec()).collect();
        let m = LinRegLearner::default().fit(&ds).unwrap();
        let batch = m.predict_batch(&rows);
        for (row, &b) in rows.iter().zip(&batch) {
            assert!(m.predict(row).to_bits() == b.to_bits());
        }
    }

    #[test]
    fn adjusted_error_exceeds_training_mae() {
        let ds = linear_data(30);
        let m = LinRegLearner::default().fit(&ds).unwrap();
        assert!(m.adjusted_error() >= m.training_mae());
    }

    #[test]
    fn describe_contains_equation() {
        let ds = linear_data(50);
        let m = LinRegLearner::default().fit(&ds).unwrap();
        let d = m.describe();
        assert!(d.contains('a') || d.contains('b'));
        assert_eq!(m.name(), "LinearRegression");
    }

    #[test]
    fn constant_model_metadata() {
        let m = LinearModel::constant(9.0, vec!["x".into()], 1.5, 10);
        assert_eq!(m.intercept(), 9.0);
        assert_eq!(m.n_params(), 1);
        assert_eq!(m.n_train(), 10);
        assert!(m.adjusted_error() > 1.5);
        assert!(m.used_attributes().is_empty());
    }
}
