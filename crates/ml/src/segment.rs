//! Piecewise-linear series segmentation — the related-work comparator of
//! Cherkasova et al. ("Anomaly? Application Change? or Workload Change?",
//! DSN'08, ref. \[15\] of the paper).
//!
//! That framework "divide\[s\] the sequence of recorded data into several
//! segments using the Linear Regression error. If for some period it is
//! impossible to obtain any Linear Regression with acceptable error at all,
//! the conclusion is that the system is suffering some type of anomaly."
//! The paper positions itself as complementary: \[15\] assumes a statically
//! modellable system between changes, while aging systems *drift*. This
//! module implements the segmentation so the benches can demonstrate that
//! distinction: an aging trace segments into pieces whose slopes share a
//! sign (degradation), a healthy trace into near-flat pieces.

use serde::{Deserialize, Serialize};

/// One linear segment of a series: `y ≈ intercept + slope · x` over
/// `indices [start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First index covered (inclusive).
    pub start: usize,
    /// One past the last index covered.
    pub end: usize,
    /// Fitted slope, in target units per index step.
    pub slope: f64,
    /// Fitted intercept (at x = 0, i.e. absolute index coordinates).
    pub intercept: f64,
    /// Largest absolute residual inside the segment.
    pub max_abs_err: f64,
}

impl Segment {
    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment covers no points (never true for produced
    /// segments).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Greedy left-to-right segmentation: each segment is extended while the
/// best-fit line over it keeps every residual within `tolerance`; when a
/// point cannot be absorbed a new segment starts there.
///
/// Non-finite samples are treated as missing observations: they are covered
/// by whatever segment spans their index but constrain neither the fit nor
/// the tolerance test (see [`diagnose`]).
///
/// # Panics
///
/// Panics if `tolerance` is not positive or `ys` is empty.
pub fn segment_series(ys: &[f64], tolerance: f64) -> Vec<Segment> {
    assert!(tolerance > 0.0, "tolerance must be positive");
    assert!(!ys.is_empty(), "cannot segment an empty series");

    let mut segments = Vec::new();
    let mut start = 0usize;
    while start < ys.len() {
        // Grow the segment as far as a within-tolerance fit exists.
        let mut end = (start + 1).min(ys.len());
        let mut best = fit(ys, start, end);
        while end < ys.len() {
            let candidate = fit(ys, start, end + 1);
            if candidate.max_abs_err <= tolerance {
                end += 1;
                best = candidate;
            } else {
                break;
            }
        }
        segments.push(best);
        start = end;
    }
    segments
}

/// Least-squares line over `ys[start..end]` (in absolute index coords).
///
/// Non-finite samples (NaN, ±∞ — e.g. a monitoring gap or a divided-by-zero
/// derived variable) are treated as *missing*: they contribute to neither
/// the normal equations nor the residual test, so a single bad checkpoint
/// cannot poison the slope or force a spurious segment break. A window with
/// no finite samples at all fits the zero line with zero error.
fn fit(ys: &[f64], start: usize, end: usize) -> Segment {
    if end - start == 1 {
        let y = ys[start];
        let intercept = if y.is_finite() { y } else { 0.0 };
        return Segment { start, end, slope: 0.0, intercept, max_abs_err: 0.0 };
    }
    let mut n = 0.0;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &y) in ys[start..end].iter().enumerate() {
        if !y.is_finite() {
            continue;
        }
        let x = (start + i) as f64;
        n += 1.0;
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    if n == 0.0 {
        return Segment { start, end, slope: 0.0, intercept: 0.0, max_abs_err: 0.0 };
    }
    let denom = n * sxx - sx * sx;
    let (slope, intercept) = if denom.abs() < 1e-12 {
        (0.0, sy / n)
    } else {
        let slope = (n * sxy - sx * sy) / denom;
        (slope, (sy - slope * sx) / n)
    };
    let max_abs_err = ys[start..end]
        .iter()
        .enumerate()
        .filter(|(_, y)| y.is_finite())
        .map(|(i, &y)| (y - (intercept + slope * (start + i) as f64)).abs())
        .fold(0.0, f64::max);
    Segment { start, end, slope, intercept, max_abs_err }
}

/// Verdict of the drift analysis over a segmented resource series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SeriesDiagnosis {
    /// Slopes hover around zero: the resource is statically modellable —
    /// the regime Cherkasova et al. assume.
    Stable,
    /// Most segments share a positive slope: the resource drifts upward —
    /// software aging in the paper's sense.
    Degrading {
        /// Length-weighted mean slope per index step.
        mean_slope: f64,
    },
    /// The series needs many short segments: no locally linear model holds
    /// for long — an anomaly in the sense of \[15\].
    Anomalous {
        /// Mean segment length in points.
        mean_segment_len: f64,
    },
}

/// Classifies a series by segmenting it and inspecting the segment slopes.
///
/// `tolerance` is the acceptable residual (same units as `ys`);
/// `slope_threshold` separates "flat" from "drifting" slopes (units per
/// index step).
///
/// NaN or infinite samples are skipped as missing observations rather than
/// poisoning the fitted slopes (a single NaN used to break every
/// containing segment *and* propagate into the length-weighted mean slope,
/// turning any series into `Stable` by NaN-comparison fallthrough). A
/// series with no finite samples at all diagnoses as `Stable`.
///
/// # Panics
///
/// Same as [`segment_series`].
pub fn diagnose(ys: &[f64], tolerance: f64, slope_threshold: f64) -> SeriesDiagnosis {
    let segments = segment_series(ys, tolerance);
    let total: usize = segments.iter().map(Segment::len).sum();
    let mean_len = total as f64 / segments.len() as f64;
    if mean_len < 5.0 && segments.len() > 3 {
        return SeriesDiagnosis::Anomalous { mean_segment_len: mean_len };
    }
    let weighted_slope: f64 =
        segments.iter().map(|s| s.slope * s.len() as f64).sum::<f64>() / total as f64;
    let drifting_fraction: f64 =
        segments.iter().filter(|s| s.slope > slope_threshold).map(|s| s.len() as f64).sum::<f64>()
            / total as f64;
    if weighted_slope > slope_threshold && drifting_fraction > 0.5 {
        SeriesDiagnosis::Degrading { mean_slope: weighted_slope }
    } else {
        SeriesDiagnosis::Stable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_is_one_segment() {
        let ys: Vec<f64> = (0..100).map(|i| 5.0 + 2.0 * i as f64).collect();
        let segs = segment_series(&ys, 1.0);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].slope - 2.0).abs() < 1e-9);
        assert!((segs[0].intercept - 5.0).abs() < 1e-9);
        assert_eq!(segs[0].len(), 100);
    }

    #[test]
    fn breakpoint_is_found() {
        // Slope 1 for 50 points, then slope -3.
        let ys: Vec<f64> = (0..100)
            .map(|i| if i < 50 { i as f64 } else { 50.0 - 3.0 * (i as f64 - 50.0) })
            .collect();
        let segs = segment_series(&ys, 2.0);
        assert!(segs.len() >= 2, "expected a break, got {segs:?}");
        assert!((segs[0].slope - 1.0).abs() < 0.2);
        assert!(segs.last().unwrap().slope < -2.0);
        // The first break should be near index 50.
        assert!((segs[0].end as i64 - 50).unsigned_abs() <= 3);
    }

    #[test]
    fn segments_partition_the_series() {
        let mut s = 3u64;
        let ys: Vec<f64> = (0..200)
            .map(|i| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let noise = (((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * 4.0;
                (i as f64 * 0.7) + noise
            })
            .collect();
        let segs = segment_series(&ys, 3.0);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, ys.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must be contiguous");
        }
        for s in &segs {
            assert!(s.max_abs_err <= 3.0 + 1e-9 || s.len() <= 2);
            assert!(!s.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn zero_tolerance_panics() {
        let _ = segment_series(&[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_panics() {
        let _ = segment_series(&[], 1.0);
    }

    #[test]
    fn diagnose_stable_series() {
        let ys: Vec<f64> = (0..200).map(|i| 100.0 + ((i % 7) as f64 - 3.0) * 0.4).collect();
        assert_eq!(diagnose(&ys, 5.0, 0.05), SeriesDiagnosis::Stable);
    }

    #[test]
    fn diagnose_degrading_series() {
        // A leak with GC staircase flats: net upward drift.
        let ys: Vec<f64> = (0..300)
            .map(|i| {
                let base = i as f64 * 0.8;
                let flat = if (i / 50) % 2 == 1 { -10.0 } else { 0.0 };
                200.0 + base + flat
            })
            .collect();
        match diagnose(&ys, 12.0, 0.05) {
            SeriesDiagnosis::Degrading { mean_slope } => {
                assert!(mean_slope > 0.4, "net drift ~0.8/step, got {mean_slope}")
            }
            other => panic!("expected Degrading, got {other:?}"),
        }
    }

    #[test]
    fn constant_series_is_one_flat_segment() {
        let ys = vec![42.0; 80];
        let segs = segment_series(&ys, 0.5);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].slope, 0.0);
        assert!((segs[0].intercept - 42.0).abs() < 1e-9);
        assert_eq!(segs[0].max_abs_err, 0.0);
        assert_eq!(diagnose(&ys, 0.5, 0.05), SeriesDiagnosis::Stable);
    }

    #[test]
    fn short_series_do_not_panic() {
        let one = segment_series(&[7.0], 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].intercept, 7.0);
        assert_eq!(diagnose(&[7.0], 1.0, 0.05), SeriesDiagnosis::Stable);

        let two = segment_series(&[1.0, 2.0], 1.0);
        assert_eq!(two[0].start, 0);
        assert_eq!(two.last().unwrap().end, 2);
        // Two rising points *are* a unit-slope drift; the point is only
        // that the degenerate length does not panic or emit non-finite
        // numbers.
        match diagnose(&[1.0, 2.0], 1.0, 0.05) {
            SeriesDiagnosis::Degrading { mean_slope } => assert!((mean_slope - 1.0).abs() < 1e-9),
            other => panic!("expected Degrading, got {other:?}"),
        }
    }

    #[test]
    fn nan_samples_do_not_poison_the_fit() {
        // A clean slope-2 line with every 10th sample lost to NaN: the
        // series must still segment as one piece with slope ≈ 2 and finite
        // residuals, and diagnose as Degrading.
        let ys: Vec<f64> =
            (0..120).map(|i| if i % 10 == 3 { f64::NAN } else { 5.0 + 2.0 * i as f64 }).collect();
        let segs = segment_series(&ys, 1.0);
        assert_eq!(segs.len(), 1, "NaN gaps must not force segment breaks: {segs:?}");
        assert!((segs[0].slope - 2.0).abs() < 1e-6);
        assert!(segs[0].max_abs_err.is_finite());
        match diagnose(&ys, 1.0, 0.05) {
            SeriesDiagnosis::Degrading { mean_slope } => {
                assert!((mean_slope - 2.0).abs() < 1e-6);
            }
            other => panic!("expected Degrading, got {other:?}"),
        }
    }

    #[test]
    fn infinities_are_treated_as_missing() {
        let mut ys: Vec<f64> = (0..60).map(|i| 100.0 + 0.01 * i as f64).collect();
        ys[10] = f64::INFINITY;
        ys[40] = f64::NEG_INFINITY;
        let segs = segment_series(&ys, 2.0);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].slope.is_finite());
        assert!(segs[0].max_abs_err <= 2.0);
        assert_eq!(diagnose(&ys, 2.0, 0.05), SeriesDiagnosis::Stable);
    }

    #[test]
    fn all_nan_series_is_stable() {
        let ys = vec![f64::NAN; 30];
        let segs = segment_series(&ys, 1.0);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 30);
        for s in &segs {
            assert!(s.slope.is_finite());
            assert!(s.intercept.is_finite());
            assert!(s.max_abs_err.is_finite());
        }
        assert_eq!(diagnose(&ys, 1.0, 0.05), SeriesDiagnosis::Stable);
    }

    #[test]
    fn diagnose_anomalous_series() {
        // Wild jumps: no locally linear model holds.
        let mut s = 17u64;
        let ys: Vec<f64> = (0..120)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 33) as f64 / (1u64 << 31) as f64) * 1000.0
            })
            .collect();
        match diagnose(&ys, 5.0, 0.05) {
            SeriesDiagnosis::Anomalous { mean_segment_len } => {
                assert!(mean_segment_len < 5.0)
            }
            other => panic!("expected Anomalous, got {other:?}"),
        }
    }
}
