//! Hand-coded machine-learning algorithms for software-aging prediction.
//!
//! This crate reimplements, from scratch, every learner the DSN'10 paper
//! *"Adaptive on-line software aging prediction based on Machine Learning"*
//! uses or compares against:
//!
//! - [`m5p`]: the paper's chosen algorithm — **M5P model trees** (a binary
//!   decision tree with multiple-linear-regression models at the leaves),
//!   including standard-deviation-reduction growth, coefficient
//!   simplification, pessimistic pruning and smoothing, per Quinlan's M5 and
//!   Wang & Witten's M5′,
//! - [`linreg`]: the **linear regression** baseline of Tables 3 and 4,
//! - [`regtree`]: the plain **regression tree** from the authors'
//!   preliminary comparison (ICAS'09),
//! - [`naive`]: the closed-form slope predictor of the paper's Eq. (1),
//! - [`arma`]: the ARMA time-series comparator from the related work
//!   (Li, Vaidyanathan & Trivedi),
//! - [`eval`]: the paper's accuracy metrics — MAE, S-MAE (±10 % security
//!   margin), PRE-MAE and POST-MAE (last-10-minutes split),
//! - [`feature_select`]: expert/correlation-based variable selection
//!   (Experiment 4.3),
//! - [`board`]: the *prediction board* ensemble sketched in the paper's
//!   future work,
//! - [`bagging`] / [`gbrt`] / [`knn`]: the "more sophisticated" techniques
//!   the paper's Section 1 names (bagging, boosting) plus an
//!   instance-based comparator,
//! - [`segment`]: the piecewise-linear anomaly/change detector of the
//!   related work (Cherkasova et al., DSN'08),
//! - [`cluster`]: seeded k-means + silhouette scoring over standardised
//!   vectors — the machinery behind automatic service-class discovery,
//! - [`online`]: an adaptive on-line wrapper that retrains on a sliding
//!   buffer of recent checkpoints,
//! - [`matrix`]: contiguous row-major feature matrices for allocation-free
//!   batched inference ([`Regressor::predict_matrix`]).
//!
//! # Quickstart
//!
//! ```
//! use aging_dataset::Dataset;
//! use aging_ml::{m5p::M5pLearner, Learner, Regressor};
//!
//! let mut ds = Dataset::new(vec!["x".into()], "y");
//! for i in 0..100 {
//!     let x = i as f64;
//!     let y = if x < 50.0 { 2.0 * x } else { 300.0 - 4.0 * x };
//!     ds.push_row(vec![x], y)?;
//! }
//! let model = M5pLearner::default().fit(&ds)?;
//! let pred = model.predict(&[25.0]);
//! assert!((pred - 50.0).abs() < 15.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arma;
pub mod bagging;
pub mod board;
pub mod cluster;
pub mod eval;
pub mod feature_select;
pub mod gbrt;
pub mod knn;
pub(crate) mod linalg;
pub mod linreg;
pub mod m5p;
pub mod matrix;
pub mod naive;
pub mod online;
pub mod regtree;
pub mod segment;

mod error;
pub use error::MlError;
pub use matrix::FeatureMatrix;

use aging_dataset::Dataset;
use std::sync::Arc;

/// A fitted regression model: maps an attribute vector to a real prediction.
///
/// All learners in this crate produce `Regressor`s; the trait is
/// object-safe so heterogeneous models can sit together on a
/// [`board::PredictionBoard`].
pub trait Regressor: std::fmt::Debug + Send + Sync {
    /// Predicts the target for the attribute vector `x`.
    ///
    /// Implementations must accept any `x` whose length equals the number of
    /// attributes the model was trained on and must return a finite value.
    ///
    /// # Panics
    ///
    /// May panic if `x.len()` differs from the training arity.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts the target for every row of a feature matrix.
    ///
    /// `rows` are attribute vectors of the training arity; the result has
    /// one prediction per row, in order, **bitwise-identical** to calling
    /// [`Regressor::predict`] row by row (callers such as the fleet engine
    /// rely on batched and per-sample paths being interchangeable).
    ///
    /// The default implementation maps [`Regressor::predict`]; models
    /// whose per-call setup can be amortised across rows (e.g. M5P's
    /// smoothing-path buffer) override it.
    ///
    /// # Panics
    ///
    /// May panic if any row's length differs from the training arity.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|row| self.predict(row)).collect()
    }

    /// Predicts the target for every row of a contiguous row-major
    /// [`FeatureMatrix`] — the allocation-free variant of
    /// [`Regressor::predict_batch`] used by the fleet shard hot loop.
    ///
    /// The same bitwise-identity contract applies: the result must equal
    /// calling [`Regressor::predict`] on every row in order.
    ///
    /// # Panics
    ///
    /// May panic if the matrix width differs from the training arity.
    fn predict_matrix(&self, matrix: &FeatureMatrix) -> Vec<f64> {
        matrix.rows().map(|row| self.predict(row)).collect()
    }

    /// Short human-readable name of the model family (e.g. `"M5P"`).
    fn name(&self) -> &'static str;

    /// A human-readable description of the fitted model, suitable for the
    /// paper's root-cause inspection (Section 4.4). Default: the `Debug`
    /// representation.
    fn describe(&self) -> String {
        format!("{self:?}")
    }
}

/// A learning algorithm: fits a [`Regressor`] to a [`Dataset`].
pub trait Learner {
    /// The concrete model type this learner produces.
    type Model: Regressor;

    /// Fits a model to `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyTrainingSet`] when `data` has no rows, or
    /// other [`MlError`] variants specific to the algorithm.
    fn fit(&self, data: &Dataset) -> Result<Self::Model, MlError>;

    /// Fits and boxes the model, for heterogeneous collections.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    fn fit_boxed(&self, data: &Dataset) -> Result<Box<dyn Regressor>, MlError>
    where
        Self::Model: 'static,
    {
        Ok(Box::new(self.fit(data)?))
    }
}

/// An object-safe training handle: the learner-agnostic counterpart of
/// [`Learner`], usable behind `Arc<dyn DynLearner>`.
///
/// [`Learner`] carries an associated `Model` type and therefore cannot be a
/// trait object; services that must be generic over the training algorithm
/// at *runtime* (e.g. a fleet model service that can be backed by M5P,
/// linear regression or GBRT from the same code path) hold a
/// `Arc<dyn DynLearner>` instead. Every `Learner` whose model type is
/// `'static` gets this implementation for free via the blanket impl.
pub trait DynLearner: std::fmt::Debug + Send + Sync {
    /// Fits a boxed model to `data`.
    ///
    /// # Errors
    ///
    /// Same as [`Learner::fit`].
    fn fit_dyn(&self, data: &Dataset) -> Result<Box<dyn Regressor>, MlError>;
}

impl<L> DynLearner for L
where
    L: Learner + std::fmt::Debug + Send + Sync,
    L::Model: 'static,
{
    fn fit_dyn(&self, data: &Dataset) -> Result<Box<dyn Regressor>, MlError> {
        self.fit_boxed(data)
    }
}

impl Regressor for Arc<dyn Regressor> {
    fn predict(&self, x: &[f64]) -> f64 {
        (**self).predict(x)
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        (**self).predict_batch(rows)
    }

    fn predict_matrix(&self, matrix: &FeatureMatrix) -> Vec<f64> {
        (**self).predict_matrix(matrix)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// A shared [`DynLearner`] is itself a [`Learner`] producing shared models,
/// so generic wrappers such as [`online::OnlineRegressor`] work unchanged
/// over a runtime-chosen algorithm.
impl Learner for Arc<dyn DynLearner> {
    type Model = Arc<dyn Regressor>;

    fn fit(&self, data: &Dataset) -> Result<Self::Model, MlError> {
        // Explicit double-deref: `Arc<dyn DynLearner>` also satisfies the
        // blanket `DynLearner` impl (it is itself a `Learner`), and plain
        // `self.fit_dyn(...)` would resolve to that impl and recurse
        // forever instead of reaching the inner trait object.
        (**self).fit_dyn(data).map(Arc::from)
    }
}

/// Declarative learner choice for runtime-configured model services.
///
/// Per-class adaptation (a router serving heterogeneous service classes)
/// needs to name a training algorithm in *configuration* — a spec file, a
/// JSON fleet description — rather than in code. `LearnerKind` is that
/// name: a serialisable tag that [`LearnerKind::learner`] turns into a
/// ready [`DynLearner`] with the defaults this workspace uses everywhere
/// (M5P with the paper's settings; baseline linear regression; GBRT).
///
/// # Example
///
/// ```
/// use aging_ml::LearnerKind;
///
/// let learner = LearnerKind::M5p.learner();
/// let mut ds = aging_dataset::Dataset::new(vec!["x".into()], "y");
/// for i in 0..40 {
///     ds.push_row(vec![i as f64], 3.0 * i as f64)?;
/// }
/// let model = learner.fit_dyn(&ds)?;
/// assert!((model.predict(&[10.0]) - 30.0).abs() < 1.0);
/// # Ok::<(), aging_ml::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LearnerKind {
    /// M5P model trees with the paper's settings
    /// (`m5p::M5pLearner::paper_default`).
    M5p,
    /// The linear-regression baseline (`linreg::LinRegLearner::default`).
    LinReg,
    /// Gradient-boosted regression trees (`gbrt::GbrtLearner::default`).
    Gbrt,
}

impl LearnerKind {
    /// Every kind, in declaration order — the iteration surface for
    /// search spaces and CLI flag validation.
    pub const ALL: [LearnerKind; 3] = [LearnerKind::M5p, LearnerKind::LinReg, LearnerKind::Gbrt];

    /// Builds a fresh shared learner of this kind.
    pub fn learner(&self) -> Arc<dyn DynLearner> {
        match self {
            LearnerKind::M5p => Arc::new(m5p::M5pLearner::paper_default()),
            LearnerKind::LinReg => Arc::new(linreg::LinRegLearner::default()),
            LearnerKind::Gbrt => Arc::new(gbrt::GbrtLearner::default()),
        }
    }

    /// The kind's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LearnerKind::M5p => "M5P",
            LearnerKind::LinReg => "LinearRegression",
            LearnerKind::Gbrt => "GBRT",
        }
    }

    /// The inverse of [`LearnerKind::name`]: resolves a display name (or
    /// the common short aliases `m5p`, `linreg`, `gbrt`) back to its kind,
    /// case-insensitively. `None` for unknown names — declarative
    /// configuration (search spaces, `--tune` flags) should reject rather
    /// than guess.
    pub fn from_name(name: &str) -> Option<LearnerKind> {
        match name.to_ascii_lowercase().as_str() {
            "m5p" => Some(LearnerKind::M5p),
            "linearregression" | "linreg" => Some(LearnerKind::LinReg),
            "gbrt" => Some(LearnerKind::Gbrt),
            _ => None,
        }
    }
}

#[cfg(test)]
mod learner_kind_tests {
    use super::LearnerKind;

    #[test]
    fn from_name_round_trips_every_kind() {
        for kind in LearnerKind::ALL {
            assert_eq!(LearnerKind::from_name(kind.name()), Some(kind), "{}", kind.name());
        }
    }

    #[test]
    fn from_name_is_case_insensitive_and_accepts_aliases() {
        assert_eq!(LearnerKind::from_name("m5p"), Some(LearnerKind::M5p));
        assert_eq!(LearnerKind::from_name("LINREG"), Some(LearnerKind::LinReg));
        assert_eq!(LearnerKind::from_name("gbrt"), Some(LearnerKind::Gbrt));
        assert_eq!(LearnerKind::from_name("linearregression"), Some(LearnerKind::LinReg));
    }

    #[test]
    fn from_name_rejects_unknown_names() {
        assert_eq!(LearnerKind::from_name(""), None);
        assert_eq!(LearnerKind::from_name("m5"), None);
        assert_eq!(LearnerKind::from_name("random-forest"), None);
    }
}
