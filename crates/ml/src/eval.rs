//! The paper's accuracy metrics (Section 2.2).
//!
//! - **MAE** — mean absolute error between predicted and true time to
//!   failure.
//! - **S-MAE** (*Soft* MAE) — errors within a *security margin* of ±10 % of
//!   the true TTF count as zero; outside the margin, the part of the error
//!   exceeding the margin is counted (the paper's example: true TTF 10 min,
//!   prediction 13 min ⇒ 2 min error). S-MAE ≤ MAE always.
//! - **PRE-MAE / POST-MAE** — the MAE over all checkpoints except the last
//!   10 minutes before the crash, and over those last 10 minutes
//!   respectively: "our approach has to have lower MAE in the last 10
//!   minutes … showing that the prediction becomes more accurate when it is
//!   more needed".

use crate::Regressor;
use aging_dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Parameters of the paper's metric suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// The security margin as a fraction of the true TTF (paper: 0.10).
    pub security_margin: f64,
    /// True-TTF threshold separating POST (≤) from PRE (>) instances, in
    /// seconds (paper: the last 10 minutes = 600 s).
    pub post_window_secs: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { security_margin: 0.10, post_window_secs: 600.0 }
    }
}

/// The paper's full metric suite for one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Mean absolute error (seconds).
    pub mae: f64,
    /// Soft MAE under the security margin (seconds).
    pub s_mae: f64,
    /// Root mean squared error (seconds).
    pub rmse: f64,
    /// MAE restricted to instances with true TTF above the POST window.
    /// `None` when no such instance exists.
    pub pre_mae: Option<f64>,
    /// MAE restricted to the last `post_window_secs` before the crash.
    /// `None` when no such instance exists.
    pub post_mae: Option<f64>,
    /// Number of evaluated instances.
    pub n: usize,
}

impl Evaluation {
    /// Renders the suite in the paper's "X min Y secs" style.
    pub fn summary(&self) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or("n/a".to_string(), format_duration);
        format!(
            "MAE {} | S-MAE {} | PRE-MAE {} | POST-MAE {} (n={})",
            format_duration(self.mae),
            format_duration(self.s_mae),
            fmt_opt(self.pre_mae),
            fmt_opt(self.post_mae),
            self.n
        )
    }
}

/// Computes the metric suite from parallel slices of predictions and true
/// TTFs (both in seconds).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn evaluate(predictions: &[f64], actuals: &[f64], config: &EvalConfig) -> Evaluation {
    assert_eq!(predictions.len(), actuals.len(), "prediction/actual length mismatch");
    assert!(!predictions.is_empty(), "cannot evaluate zero instances");
    let n = predictions.len();

    let mut abs_sum = 0.0;
    let mut soft_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut pre_sum = 0.0;
    let mut pre_n = 0usize;
    let mut post_sum = 0.0;
    let mut post_n = 0usize;

    for i in 0..n {
        let err = predictions[i] - actuals[i];
        let abs = err.abs();
        abs_sum += abs;
        sq_sum += err * err;
        let margin = config.security_margin * actuals[i].abs();
        soft_sum += (abs - margin).max(0.0);
        if actuals[i] <= config.post_window_secs {
            post_sum += abs;
            post_n += 1;
        } else {
            pre_sum += abs;
            pre_n += 1;
        }
    }

    Evaluation {
        mae: abs_sum / n as f64,
        s_mae: soft_sum / n as f64,
        rmse: (sq_sum / n as f64).sqrt(),
        pre_mae: (pre_n > 0).then(|| pre_sum / pre_n as f64),
        post_mae: (post_n > 0).then(|| post_sum / post_n as f64),
        n,
    }
}

/// Runs `model` over every row of `test` and computes the metric suite
/// against the dataset targets.
///
/// # Panics
///
/// Panics if `test` is empty.
pub fn evaluate_model(model: &dyn Regressor, test: &Dataset, config: &EvalConfig) -> Evaluation {
    let predictions: Vec<f64> = test.iter().map(|r| model.predict(r.values())).collect();
    evaluate(&predictions, test.targets(), config)
}

/// Formats a duration in seconds the way the paper reports accuracies:
/// `"16 min 26 secs"` (sub-minute durations render as `"26 secs"`).
pub fn format_duration(secs: f64) -> String {
    let total = secs.round().max(0.0) as u64;
    let mins = total / 60;
    let rem = total % 60;
    if mins == 0 {
        format!("{rem} secs")
    } else {
        format!("{mins} min {rem} secs")
    }
}

/// `k`-fold cross-validated MAE of a learner on `data` (folds are
/// contiguous blocks; callers shuffle first if order matters).
///
/// # Errors
///
/// Propagates fitting errors from the learner.
///
/// # Panics
///
/// Panics if `k < 2` or `data.len() < k`.
pub fn cross_validated_mae<L>(learner: &L, data: &Dataset, k: usize) -> Result<f64, crate::MlError>
where
    L: crate::Learner,
{
    assert!(k >= 2, "cross-validation needs k >= 2");
    assert!(data.len() >= k, "cross-validation needs at least k rows");
    let n = data.len();
    let mut total_abs = 0.0;
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let train = data.filter_rows(|i, _| i < lo || i >= hi);
        let test = data.filter_rows(|i, _| i >= lo && i < hi);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let model = learner.fit(&train)?;
        for row in test.iter() {
            total_abs += (model.predict(row.values()) - row.target()).abs();
        }
    }
    Ok(total_abs / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinRegLearner;

    #[test]
    fn mae_and_rmse_basic() {
        let e = evaluate(&[10.0, 20.0], &[12.0, 16.0], &EvalConfig::default());
        assert!((e.mae - 3.0).abs() < 1e-12);
        assert!((e.rmse - (10.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(e.n, 2);
    }

    #[test]
    fn smae_zero_inside_margin() {
        // True 600s, margin 10% = 60s: a 50s error counts as zero.
        let e = evaluate(&[650.0], &[600.0], &EvalConfig::default());
        assert_eq!(e.s_mae, 0.0);
        assert_eq!(e.mae, 50.0);
    }

    #[test]
    fn smae_counts_excess_over_margin() {
        // Paper's example: true 10 min, predicted 13 min => 2 min soft error.
        let e = evaluate(&[780.0], &[600.0], &EvalConfig::default());
        assert!((e.s_mae - 120.0).abs() < 1e-9);
        let e = evaluate(&[420.0], &[600.0], &EvalConfig::default());
        assert!((e.s_mae - 120.0).abs() < 1e-9);
    }

    #[test]
    fn smae_never_exceeds_mae() {
        let preds = [100.0, 5000.0, 9000.0, 300.0];
        let actuals = [120.0, 4000.0, 10000.0, 200.0];
        let e = evaluate(&preds, &actuals, &EvalConfig::default());
        assert!(e.s_mae <= e.mae);
    }

    #[test]
    fn pre_post_split() {
        // Two instances deep before crash, one inside the last 10 minutes.
        let e =
            evaluate(&[5000.0, 2000.0, 550.0], &[4800.0, 1900.0, 500.0], &EvalConfig::default());
        assert!((e.pre_mae.unwrap() - 150.0).abs() < 1e-9);
        assert!((e.post_mae.unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pre_post_none_when_absent() {
        let e = evaluate(&[100.0], &[100.0], &EvalConfig::default());
        assert!(e.pre_mae.is_none());
        assert!(e.post_mae.is_some());
        let e = evaluate(&[5000.0], &[5000.0], &EvalConfig::default());
        assert!(e.pre_mae.is_some());
        assert!(e.post_mae.is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = evaluate(&[1.0], &[1.0, 2.0], &EvalConfig::default());
    }

    #[test]
    #[should_panic(expected = "zero instances")]
    fn empty_panics() {
        let _ = evaluate(&[], &[], &EvalConfig::default());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(986.0), "16 min 26 secs");
        assert_eq!(format_duration(59.4), "59 secs");
        assert_eq!(format_duration(60.0), "1 min 0 secs");
        assert_eq!(format_duration(0.0), "0 secs");
        assert_eq!(format_duration(-5.0), "0 secs", "negative clamps to zero");
    }

    #[test]
    fn summary_mentions_all_metrics() {
        let e = evaluate(&[700.0, 100.0], &[650.0, 90.0], &EvalConfig::default());
        let s = e.summary();
        assert!(s.contains("MAE"));
        assert!(s.contains("S-MAE"));
        assert!(s.contains("PRE-MAE"));
        assert!(s.contains("POST-MAE"));
    }

    #[test]
    fn evaluate_model_runs_regressor() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..20 {
            ds.push_row(vec![i as f64], 2.0 * i as f64).unwrap();
        }
        let m = crate::Learner::fit(&LinRegLearner::default(), &ds).unwrap();
        let e = evaluate_model(&m, &ds, &EvalConfig::default());
        assert!(e.mae < 1e-8);
    }

    #[test]
    fn cross_validation_on_linear_data_is_tight() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..60 {
            ds.push_row(vec![i as f64], 5.0 + 3.0 * i as f64).unwrap();
        }
        let mae = cross_validated_mae(&LinRegLearner::default(), &ds, 5).unwrap();
        assert!(mae < 1e-6, "linear data should cross-validate exactly, got {mae}");
    }

    #[test]
    fn custom_margin_and_window() {
        let cfg = EvalConfig { security_margin: 0.5, post_window_secs: 50.0 };
        let e = evaluate(&[140.0], &[100.0], &cfg);
        assert_eq!(e.s_mae, 0.0, "±50% margin absorbs a 40% error");
        assert!(e.post_mae.is_none(), "100s > 50s window => PRE");
    }
}
