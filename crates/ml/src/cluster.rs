//! Seeded k-means clustering over standardised feature vectors.
//!
//! Built for **automatic class discovery**: the adaptation layer
//! summarises every fleet instance into an aging-signature vector and
//! clusters the signatures to decide which deployments should share a
//! model. The requirements that shape this module:
//!
//! - **determinism** — the fleet re-evaluates partitions at epoch
//!   boundaries and must produce the same partition for the same streams
//!   whatever the shard count, so initialisation is k-means++ driven by a
//!   caller-supplied seed (through the vendored deterministic
//!   [`rand::rngs::StdRng`]) and every tie is broken by index order;
//! - **finite-input contract** — signature builders guarantee finite
//!   vectors (NaN-laced error streams are filtered upstream), and this
//!   module *enforces* the contract with an [`MlError::InvalidParameter`]
//!   instead of silently propagating NaN distances into every centroid;
//! - **scale-invariance** — callers standardise columns first
//!   ([`standardise`]) so a quantile measured in thousands of seconds
//!   cannot drown a slope measured in seconds per checkpoint.
//!
//! [`silhouette`] scores a clustering (the split/merge gate of the
//! discovery engine): `+1` means tight, well-separated clusters, values
//! near `0` mean the structure is not real.

use crate::MlError;
use aging_obs::{Recorder, Unit};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Tuning for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// RNG seed for the k-means++ initialisation — same seed, same points,
    /// same clustering.
    pub seed: u64,
    /// Lloyd-iteration cap (convergence usually takes far fewer).
    pub max_iters: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { seed: 42, max_iters: 64 }
    }
}

/// A fitted clustering: `assignments[i]` is the cluster of `points[i]`,
/// `centroids[c]` the mean of cluster `c`. Clusters are non-empty except
/// when the points contain exact duplicates that cannot support `k`
/// distinct centroids (see [`kmeans`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids, in cluster-index order.
    pub centroids: Vec<Vec<f64>>,
    /// Per-point cluster index.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of every point to its centroid.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Points per cluster, in cluster-index order.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Validates the shared preconditions of [`kmeans`] and [`silhouette`].
fn validate_points(points: &[Vec<f64>]) -> Result<usize, MlError> {
    let Some(first) = points.first() else {
        return Err(MlError::EmptyTrainingSet);
    };
    let dim = first.len();
    for (i, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(MlError::InvalidParameter(format!(
                "point {i} has {} components, expected {dim}",
                p.len()
            )));
        }
        if let Some(j) = p.iter().position(|v| !v.is_finite()) {
            return Err(MlError::InvalidParameter(format!(
                "point {i} component {j} is not finite; filter missing observations upstream"
            )));
        }
    }
    Ok(dim)
}

/// Seeded k-means (k-means++ initialisation, Lloyd iterations) over
/// `points`. `k` is clamped to the number of points. An emptied cluster is
/// re-seeded to the point farthest from its centroid (deterministically),
/// so clusters only stay empty when the points are exact duplicates.
///
/// # Errors
///
/// [`MlError::EmptyTrainingSet`] for no points,
/// [`MlError::InvalidParameter`] for `k == 0`, ragged rows or non-finite
/// components.
pub fn kmeans(points: &[Vec<f64>], k: usize, config: KMeansConfig) -> Result<Clustering, MlError> {
    validate_points(points)?;
    if k == 0 {
        return Err(MlError::InvalidParameter("k must be positive".into()));
    }
    let n = points.len();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // k-means++: first centroid uniform, the rest sampled proportionally
    // to squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut nearest_sq: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = nearest_sq.iter().sum();
        let next = if total > 0.0 {
            // Inverse-CDF draw over the squared-distance weights.
            let mut draw = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in nearest_sq.iter().enumerate() {
                if draw < w {
                    chosen = i;
                    break;
                }
                draw -= w;
            }
            chosen
        } else {
            // All remaining points coincide with a centroid: any index
            // works, the duplicate centroid will own an empty set and the
            // re-seed below keeps the invariant.
            rng.gen_range(0..n)
        };
        centroids.push(points[next].clone());
        for (d, p) in nearest_sq.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }

    lloyd(points, centroids, config.max_iters)
}

/// Lloyd iterations from **caller-supplied** starting centroids — the
/// warm-start entry point. A tracker re-evaluating a slowly drifting
/// population (class discovery at epoch boundaries) starts from last
/// round's centroids instead of a fresh k-means++ draw: the clustering
/// tracks the regimes instead of hopping between local optima as the
/// points move.
///
/// # Errors
///
/// Same validation as [`kmeans`], plus dimensionality checks on the
/// centroids.
pub fn kmeans_from(
    points: &[Vec<f64>],
    centroids: Vec<Vec<f64>>,
    max_iters: usize,
) -> Result<Clustering, MlError> {
    let dim = validate_points(points)?;
    if centroids.is_empty() {
        return Err(MlError::InvalidParameter("need at least one starting centroid".into()));
    }
    for (i, c) in centroids.iter().enumerate() {
        if c.len() != dim {
            return Err(MlError::InvalidParameter(format!(
                "centroid {i} has {} components, expected {dim}",
                c.len()
            )));
        }
        if c.iter().any(|v| !v.is_finite()) {
            return Err(MlError::InvalidParameter(format!("centroid {i} is not finite")));
        }
    }
    lloyd(points, centroids, max_iters)
}

fn lloyd(
    points: &[Vec<f64>],
    mut centroids: Vec<Vec<f64>>,
    max_iters: usize,
) -> Result<Clustering, MlError> {
    let n = points.len();
    let dim = points[0].len();
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iters.max(1) {
        // Assign: nearest centroid, ties to the lower index.
        let mut moved = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = sq_dist(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                moved = true;
            }
        }
        // Update: centroid = member mean.
        let k_now = centroids.len();
        let mut sums = vec![vec![0.0f64; dim]; k_now];
        let mut counts = vec![0usize; k_now];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k_now {
            if counts[c] > 0 {
                for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        // An emptied cluster is re-seeded to the point farthest from its
        // own (freshly updated) centroid — deterministic, lowest index on
        // ties — so k only shrinks when points are exact duplicates.
        for c in 0..k_now {
            if counts[c] == 0 {
                let farthest = (0..n)
                    .max_by(|&i, &j| {
                        let di = sq_dist(&points[i], &centroids[assignments[i]]);
                        let dj = sq_dist(&points[j], &centroids[assignments[j]]);
                        di.total_cmp(&dj).then_with(|| j.cmp(&i))
                    })
                    .expect("points non-empty");
                if sq_dist(&points[farthest], &centroids[assignments[farthest]]) > 0.0 {
                    centroids[c] = points[farthest].clone();
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }

    // One final assignment pass: the loop can exhaust `max_iters` right
    // after an empty-cluster re-seed mutated a centroid, and the returned
    // assignments must always be consistent with the returned centroids.
    for (i, p) in points.iter().enumerate() {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d = sq_dist(p, centroid);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignments[i] = best;
    }

    let inertia = points.iter().zip(&assignments).map(|(p, &a)| sq_dist(p, &centroids[a])).sum();
    Ok(Clustering { centroids, assignments, inertia })
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
///
/// For each point: `a` = mean distance to its own cluster's other members,
/// `b` = smallest mean distance to another cluster; the silhouette is
/// `(b − a) / max(a, b)`. Singleton clusters score `0` for their point
/// (no within-cluster evidence), and a clustering with fewer than two
/// clusters — no separation to measure — scores `0.0`.
///
/// # Errors
///
/// Same input validation as [`kmeans`], plus a length check on
/// `assignments`.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64, MlError> {
    validate_points(points)?;
    if assignments.len() != points.len() {
        return Err(MlError::InvalidParameter(format!(
            "{} assignments for {} points",
            assignments.len(),
            points.len()
        )));
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Ok(0.0);
    }
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a] += 1;
    }
    let n = points.len();
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if sizes[own] <= 1 {
            continue; // singleton: s(i) = 0 contributes nothing
        }
        // Mean distance from point i to every cluster.
        let mut dist_sum = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            dist_sum[assignments[j]] += sq_dist(&points[i], &points[j]).sqrt();
        }
        let a = dist_sum[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| dist_sum[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
    }
    Ok(total / n as f64)
}

/// Clusters `points` into `k` groups and scores the result's mean
/// silhouette, as one instrumented evaluation: wall time lands in the
/// `ml_cluster_eval_seconds` histogram and each call bumps
/// `ml_cluster_evals_total` on `recorder`. The class-discovery engine
/// calls this at every reassessment boundary; pass
/// [`aging_obs::NoopRecorder`] to run it untelemetered (the instruments
/// collapse to one untaken branch each).
///
/// # Errors
///
/// Exactly the validation of [`kmeans`] and [`silhouette`] — failed
/// evaluations still count their wall time, but only successful ones
/// increment the evaluation counter.
pub fn evaluate_clustering(
    points: &[Vec<f64>],
    k: usize,
    config: KMeansConfig,
    recorder: &dyn Recorder,
) -> Result<(Clustering, f64), MlError> {
    let span = recorder
        .histogram(
            "ml_cluster_eval_seconds",
            "Wall time of one clustering evaluation (k-means fit + silhouette scoring)",
            Unit::Seconds,
        )
        .span();
    let outcome = kmeans(points, k, config).and_then(|clustering| {
        silhouette(points, &clustering.assignments).map(|s| (clustering, s))
    });
    span.finish();
    if outcome.is_ok() {
        recorder.counter("ml_cluster_evals_total", "Clustering evaluations completed").inc();
    }
    outcome
}

/// Per-column `(mean, standard deviation)` pairs produced by
/// [`standardise`] and consumed by [`apply_standardisation`].
pub type ColumnScales = Vec<(f64, f64)>;

/// Column-wise z-score standardisation: returns the standardised points
/// plus the per-column `(mean, std)` used, with constant columns given a
/// unit deviation so they divide out to zero instead of NaN.
///
/// # Errors
///
/// Same input validation as [`kmeans`].
pub fn standardise(points: &[Vec<f64>]) -> Result<(Vec<Vec<f64>>, ColumnScales), MlError> {
    let dim = validate_points(points)?;
    let n = points.len() as f64;
    let mut scales = Vec::with_capacity(dim);
    for c in 0..dim {
        let mean = points.iter().map(|p| p[c]).sum::<f64>() / n;
        let var = points.iter().map(|p| (p[c] - mean) * (p[c] - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        scales.push((mean, if std > 1e-12 { std } else { 1.0 }));
    }
    let standardised = points
        .iter()
        .map(|p| p.iter().zip(&scales).map(|(v, (m, s))| (v - m) / s).collect())
        .collect();
    Ok((standardised, scales))
}

/// Applies a previously computed standardisation to one vector (e.g. a
/// stored raw-space centroid compared against freshly standardised
/// signatures).
pub fn apply_standardisation(point: &[f64], scales: &[(f64, f64)]) -> Vec<f64> {
    point.iter().zip(scales).map(|(v, (m, s))| (v - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        // Deterministic lattice jitter — no RNG needed for test data.
        (0..n)
            .map(|i| {
                let dx = ((i % 3) as f64 - 1.0) * spread;
                let dy = ((i % 5) as f64 - 2.0) * spread * 0.5;
                vec![cx + dx, cy + dy]
            })
            .collect()
    }

    #[test]
    fn two_blobs_separate_cleanly() {
        let mut points = blob(0.0, 0.0, 12, 0.3);
        points.extend(blob(10.0, 10.0, 12, 0.3));
        let clustering = kmeans(&points, 2, KMeansConfig::default()).unwrap();
        let first = clustering.assignments[0];
        assert!(clustering.assignments[..12].iter().all(|&a| a == first));
        assert!(clustering.assignments[12..].iter().all(|&a| a != first));
        let s = silhouette(&points, &clustering.assignments).unwrap();
        assert!(s > 0.8, "well-separated blobs must score high, got {s}");
    }

    #[test]
    fn same_seed_same_clustering() {
        let mut points = blob(0.0, 0.0, 10, 0.5);
        points.extend(blob(6.0, -3.0, 7, 0.5));
        points.extend(blob(-5.0, 8.0, 9, 0.5));
        let a = kmeans(&points, 3, KMeansConfig { seed: 7, max_iters: 64 }).unwrap();
        let b = kmeans(&points, 3, KMeansConfig { seed: 7, max_iters: 64 }).unwrap();
        assert_eq!(a, b, "same seed and points must reproduce bit-identically");
    }

    #[test]
    fn k_is_clamped_to_the_point_count() {
        let points = vec![vec![0.0], vec![1.0]];
        let clustering = kmeans(&points, 10, KMeansConfig::default()).unwrap();
        assert_eq!(clustering.k(), 2);
        assert!(clustering.sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn duplicate_points_keep_every_cluster_non_empty() {
        let points = vec![vec![3.0, 3.0]; 8];
        let clustering = kmeans(&points, 3, KMeansConfig::default()).unwrap();
        assert_eq!(clustering.k(), 3);
        assert_eq!(clustering.inertia, 0.0);
    }

    #[test]
    fn forced_split_of_one_blob_scores_low() {
        let points = blob(0.0, 0.0, 30, 0.4);
        let natural =
            silhouette(&points, &kmeans(&points, 2, KMeansConfig::default()).unwrap().assignments)
                .unwrap();
        let mut two_blobs = blob(0.0, 0.0, 15, 0.4);
        two_blobs.extend(blob(20.0, 0.0, 15, 0.4));
        let separated = silhouette(
            &two_blobs,
            &kmeans(&two_blobs, 2, KMeansConfig::default()).unwrap().assignments,
        )
        .unwrap();
        assert!(
            natural < separated,
            "splitting one blob ({natural}) must score below real structure ({separated})"
        );
        assert!(separated > 0.6);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(kmeans(&[], 2, KMeansConfig::default()), Err(MlError::EmptyTrainingSet)));
        assert!(kmeans(&[vec![1.0]], 0, KMeansConfig::default()).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, KMeansConfig::default()).is_err());
        assert!(kmeans(&[vec![f64::NAN]], 1, KMeansConfig::default()).is_err());
        assert!(silhouette(&[vec![1.0]], &[0, 1]).is_err());
    }

    #[test]
    fn single_cluster_silhouette_is_zero() {
        let points = blob(0.0, 0.0, 10, 0.5);
        assert_eq!(silhouette(&points, &[0; 10]).unwrap(), 0.0);
    }

    #[test]
    fn evaluate_clustering_scores_and_counts() {
        let registry = aging_obs::Registry::new();
        let mut points = blob(0.0, 0.0, 12, 0.3);
        points.extend(blob(10.0, 10.0, 12, 0.3));
        let (clustering, score) =
            evaluate_clustering(&points, 2, KMeansConfig::default(), &registry).unwrap();
        assert_eq!(clustering.k(), 2);
        assert!(score > 0.8);
        // The untelemetered path must behave identically.
        let (plain, plain_score) =
            evaluate_clustering(&points, 2, KMeansConfig::default(), &aging_obs::NoopRecorder)
                .unwrap();
        assert_eq!(plain, clustering);
        assert_eq!(plain_score, score);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("ml_cluster_evals_total", None), Some(1));
        assert_eq!(snapshot.histogram("ml_cluster_eval_seconds", None).unwrap().count, 1);
        // Invalid input: timed, but not counted as an evaluation.
        assert!(evaluate_clustering(&[], 2, KMeansConfig::default(), &registry).is_err());
        assert_eq!(registry.snapshot().counter("ml_cluster_evals_total", None), Some(1));
    }

    #[test]
    fn standardise_zeroes_means_and_units_deviations() {
        let points = vec![vec![10.0, 5.0], vec![20.0, 5.0], vec![30.0, 5.0]];
        let (std_points, scales) = standardise(&points).unwrap();
        assert_eq!(scales[0].0, 20.0);
        assert_eq!(scales[1], (5.0, 1.0), "constant column: unit deviation, no NaN");
        assert!(std_points.iter().all(|p| p.iter().all(|v| v.is_finite())));
        let mean0: f64 = std_points.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        assert_eq!(apply_standardisation(&[20.0, 5.0], &scales), vec![0.0, 0.0]);
    }
}
