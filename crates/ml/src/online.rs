//! Adaptive on-line learning wrapper.
//!
//! The paper's title promises *on-line* prediction and motivates M5P partly
//! by its "low training and prediction costs \[since\] we will eventually
//! want on-line processing". [`OnlineRegressor`] wraps any batch
//! [`Learner`] into an on-line one: labelled checkpoints stream in, are kept
//! in a bounded FIFO buffer, and the model is refitted every
//! `retrain_every` new observations.

use crate::{Learner, MlError, Regressor};
use aging_dataset::Dataset;
use std::collections::VecDeque;

/// On-line wrapper around a batch learner.
///
/// # Example
///
/// ```
/// use aging_ml::{online::OnlineRegressor, linreg::LinRegLearner};
///
/// let mut online = OnlineRegressor::new(
///     LinRegLearner::default(),
///     vec!["x".into()],
///     "y",
///     100,  // buffer capacity
///     10,   // retrain every 10 observations
/// )?;
/// for i in 0..25 {
///     online.observe(vec![i as f64], 2.0 * i as f64)?;
/// }
/// let pred = online.predict(&[30.0]).expect("model trained after 25 observations");
/// assert!((pred - 60.0).abs() < 1.0);
/// # Ok::<(), aging_ml::MlError>(())
/// ```
#[derive(Debug)]
pub struct OnlineRegressor<L: Learner> {
    learner: L,
    attribute_names: Vec<String>,
    target_name: String,
    buffer: VecDeque<(Vec<f64>, f64)>,
    capacity: usize,
    retrain_every: usize,
    since_retrain: usize,
    model: Option<L::Model>,
    retrain_count: usize,
}

impl<L: Learner> OnlineRegressor<L> {
    /// Creates an on-line wrapper.
    ///
    /// `capacity` bounds the training buffer (oldest observations are
    /// evicted); `retrain_every` controls how often the model is refitted.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] when `capacity == 0` or
    /// `retrain_every == 0`.
    pub fn new(
        learner: L,
        attribute_names: Vec<String>,
        target_name: impl Into<String>,
        capacity: usize,
        retrain_every: usize,
    ) -> Result<Self, MlError> {
        if capacity == 0 {
            return Err(MlError::InvalidParameter("buffer capacity must be positive".into()));
        }
        if retrain_every == 0 {
            return Err(MlError::InvalidParameter("retrain_every must be positive".into()));
        }
        Ok(OnlineRegressor {
            learner,
            attribute_names,
            target_name: target_name.into(),
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            retrain_every,
            since_retrain: 0,
            model: None,
            retrain_count: 0,
        })
    }

    /// Feeds one labelled checkpoint; retrains when due.
    ///
    /// # Errors
    ///
    /// Propagates learner fitting failures and dataset arity errors.
    pub fn observe(&mut self, values: Vec<f64>, target: f64) -> Result<(), MlError> {
        if values.len() != self.attribute_names.len() {
            return Err(MlError::Dataset(aging_dataset::DatasetError::ArityMismatch {
                expected: self.attribute_names.len(),
                got: values.len(),
            }));
        }
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back((values, target));
        self.since_retrain += 1;
        if self.since_retrain >= self.retrain_every {
            self.retrain()?;
        }
        Ok(())
    }

    /// Forces a retrain on the current buffer contents.
    ///
    /// # Errors
    ///
    /// Propagates learner fitting failures.
    pub fn retrain(&mut self) -> Result<(), MlError> {
        let mut ds = Dataset::new(self.attribute_names.clone(), self.target_name.clone());
        for (values, target) in &self.buffer {
            ds.push_row(values.clone(), *target)?;
        }
        if ds.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.model = Some(self.learner.fit(&ds)?);
        self.since_retrain = 0;
        self.retrain_count += 1;
        Ok(())
    }

    /// Predicts with the latest model; `None` before the first retrain.
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        self.model.as_ref().map(|m| m.predict(x))
    }

    /// The latest fitted model, if any.
    pub fn model(&self) -> Option<&L::Model> {
        self.model.as_ref()
    }

    /// Number of observations currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The buffered observations, oldest first — `(features, target)` in
    /// eviction order. Borrowing iterator, so consumers (e.g. a replay
    /// digest over the sliding window) never copy the rows.
    pub fn rows(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.buffer.iter().map(|(values, target)| (values.as_slice(), *target))
    }

    /// How many times the model has been (re)fitted.
    pub fn retrain_count(&self) -> usize {
        self.retrain_count
    }

    /// Clears the buffer and drops the model (e.g. after a rejuvenation,
    /// when history no longer describes the process).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.model = None;
        self.since_retrain = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinRegLearner;
    use crate::m5p::M5pLearner;

    fn online_lr(cap: usize, every: usize) -> OnlineRegressor<LinRegLearner> {
        OnlineRegressor::new(LinRegLearner::default(), vec!["x".into()], "y", cap, every).unwrap()
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(OnlineRegressor::new(LinRegLearner::default(), vec![], "y", 0, 1).is_err());
        assert!(OnlineRegressor::new(LinRegLearner::default(), vec![], "y", 1, 0).is_err());
    }

    #[test]
    fn no_model_before_first_retrain() {
        let mut o = online_lr(100, 10);
        for i in 0..9 {
            o.observe(vec![i as f64], i as f64).unwrap();
        }
        assert!(o.predict(&[1.0]).is_none());
        o.observe(vec![9.0], 9.0).unwrap();
        assert!(o.predict(&[1.0]).is_some());
        assert_eq!(o.retrain_count(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut o = online_lr(10, 5);
        assert!(o.observe(vec![1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn adapts_to_regime_change() {
        // Slope 2 for 100 points, then slope -5: after the buffer fills with
        // the new regime the prediction must follow it.
        let mut o = online_lr(50, 10);
        for i in 0..100 {
            o.observe(vec![i as f64], 2.0 * i as f64).unwrap();
        }
        for i in 100..200 {
            o.observe(vec![i as f64], 1000.0 - 5.0 * i as f64).unwrap();
        }
        let pred = o.predict(&[210.0]).unwrap();
        let truth = 1000.0 - 5.0 * 210.0;
        assert!(
            (pred - truth).abs() < 10.0,
            "online model should track the new regime: pred {pred}, truth {truth}"
        );
    }

    #[test]
    fn buffer_is_bounded() {
        let mut o = online_lr(20, 5);
        for i in 0..100 {
            o.observe(vec![i as f64], i as f64).unwrap();
        }
        assert_eq!(o.buffered(), 20);
    }

    #[test]
    fn reset_clears_state() {
        let mut o = online_lr(10, 2);
        o.observe(vec![1.0], 1.0).unwrap();
        o.observe(vec![2.0], 2.0).unwrap();
        assert!(o.predict(&[1.0]).is_some());
        o.reset();
        assert!(o.predict(&[1.0]).is_none());
        assert_eq!(o.buffered(), 0);
    }

    #[test]
    fn manual_retrain_on_empty_buffer_errors() {
        let mut o = online_lr(10, 2);
        assert!(matches!(o.retrain(), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn works_with_m5p() {
        let mut o =
            OnlineRegressor::new(M5pLearner::default(), vec!["x".into()], "y", 200, 50).unwrap();
        for i in 0..200 {
            let x = i as f64;
            let y = if x < 100.0 { x } else { 300.0 - 2.0 * x };
            o.observe(vec![x], y).unwrap();
        }
        let m = o.model().expect("trained");
        assert!(m.n_leaves() >= 1);
        assert!(o.predict(&[50.0]).unwrap().is_finite());
    }
}
