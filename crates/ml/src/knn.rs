//! k-nearest-neighbour regression with z-score standardisation.
//!
//! A simple instance-based comparator: predictions are the
//! (inverse-distance-weighted) mean target of the `k` closest training
//! checkpoints in standardised feature space. Included in the
//! "sophisticated baselines" study as the classic non-parametric
//! alternative to model trees.

use crate::{Learner, MlError, Regressor};
use aging_dataset::{stats, Dataset};
use serde::{Deserialize, Serialize};

/// Configuration for k-NN regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnLearner {
    /// Number of neighbours.
    pub k: usize,
    /// Whether to weight neighbours by inverse distance.
    pub distance_weighted: bool,
}

impl Default for KnnLearner {
    fn default() -> Self {
        KnnLearner { k: 5, distance_weighted: true }
    }
}

/// A fitted k-NN model (stores the standardised training set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnModel {
    k: usize,
    distance_weighted: bool,
    /// Column means for standardisation.
    means: Vec<f64>,
    /// Column standard deviations (1.0 for constant columns).
    stds: Vec<f64>,
    /// Standardised training rows (row-major).
    rows: Vec<f64>,
    targets: Vec<f64>,
    n_attributes: usize,
}

/// What an instance-less model predicts: the TTF labelling cap
/// (`aging_monitor::TTF_CAP_SECS`, duplicated here because the ml crate
/// sits below the monitor in the dependency graph). A k-NN model with no
/// stored neighbours knows nothing about the current execution, and in
/// this workspace's time-to-failure domain "no evidence" means "no
/// failure in sight" — the same convention the labelling horizon uses.
pub const EMPTY_MODEL_TTF_SECS: f64 = 10_800.0;

impl KnnModel {
    fn standardise(&self, x: &[f64]) -> Vec<f64> {
        x.iter().enumerate().map(|(i, v)| (v - self.means[i]) / self.stds[i]).collect()
    }
}

impl Regressor for KnnModel {
    fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_attributes, "attribute arity mismatch");
        let n = self.targets.len();
        // An empty training set cannot reach here through `fit` (it returns
        // `MlError::EmptyTrainingSet`), but a deserialized or hand-built
        // model can: `k.min(0) = 0` would then underflow `k - 1` in the
        // neighbour selection below and panic. Return the cap instead.
        if n == 0 {
            return EMPTY_MODEL_TTF_SECS;
        }
        let q = self.standardise(x);
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let row = &self.rows[i * self.n_attributes..(i + 1) * self.n_attributes];
                let d2: f64 = row.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, self.targets[i])
            })
            .collect();
        let k = self.k.min(n);
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &dists[..k];
        if self.distance_weighted {
            let mut wsum = 0.0;
            let mut acc = 0.0;
            for &(d2, t) in neighbours {
                let w = 1.0 / (d2.sqrt() + 1e-9);
                wsum += w;
                acc += w * t;
            }
            acc / wsum
        } else {
            neighbours.iter().map(|&(_, t)| t).sum::<f64>() / k as f64
        }
    }

    fn name(&self) -> &'static str {
        "kNN"
    }

    fn describe(&self) -> String {
        format!(
            "{}-NN over {} standardised instances ({})",
            self.k,
            self.targets.len(),
            if self.distance_weighted { "distance-weighted" } else { "uniform" }
        )
    }
}

impl Learner for KnnLearner {
    type Model = KnnModel;

    fn fit(&self, data: &Dataset) -> Result<KnnModel, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.k == 0 {
            return Err(MlError::InvalidParameter("k must be positive".into()));
        }
        let p = data.n_attributes();
        let mut means = Vec::with_capacity(p);
        let mut stds = Vec::with_capacity(p);
        for c in 0..p {
            let col = data.column(c).expect("index in range");
            means.push(stats::mean(&col));
            let sd = stats::std_dev(&col);
            stds.push(if sd > 1e-12 { sd } else { 1.0 });
        }
        let mut rows = Vec::with_capacity(data.len() * p);
        for i in 0..data.len() {
            for (c, v) in data.row(i).values().iter().enumerate() {
                rows.push((v - means[c]) / stds[c]);
            }
        }
        Ok(KnnModel {
            k: self.k,
            distance_weighted: self.distance_weighted,
            means,
            stds,
            rows,
            targets: data.targets().to_vec(),
            n_attributes: p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            ds.push_row(vec![i as f64], 3.0 * i as f64).unwrap();
        }
        ds
    }

    #[test]
    fn interpolates_locally() {
        let m = KnnLearner::default().fit(&grid()).unwrap();
        let p = m.predict(&[50.5]);
        assert!((p - 151.5).abs() < 6.0, "local mean around 50.5, got {p}");
    }

    #[test]
    fn exact_match_dominates_when_weighted() {
        let m = KnnLearner { k: 3, distance_weighted: true }.fit(&grid()).unwrap();
        let p = m.predict(&[40.0]);
        assert!((p - 120.0).abs() < 1.0, "exact neighbour dominates, got {p}");
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        ds.push_row(vec![0.0], 1.0).unwrap();
        ds.push_row(vec![1.0], 3.0).unwrap();
        let m = KnnLearner { k: 10, distance_weighted: false }.fit(&ds).unwrap();
        assert_eq!(m.predict(&[0.5]), 2.0);
    }

    #[test]
    fn standardisation_makes_scales_comparable() {
        // Without standardisation the huge-scale column would dominate.
        let mut ds = Dataset::new(vec!["big".into(), "small".into()], "y");
        for i in 0..50 {
            // y depends only on `small`; `big` is a decoy with a huge scale.
            ds.push_row(vec![1e6 + (i % 3) as f64 * 1e5, i as f64], i as f64).unwrap();
        }
        let m = KnnLearner { k: 1, distance_weighted: false }.fit(&ds).unwrap();
        let p = m.predict(&[1e6, 25.0]);
        assert!((p - 25.0).abs() < 3.0, "small-scale attribute must matter, got {p}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(KnnLearner { k: 0, ..Default::default() }.fit(&grid()).is_err());
        let empty = Dataset::new(vec!["x".into()], "y");
        assert!(matches!(KnnLearner::default().fit(&empty), Err(MlError::EmptyTrainingSet)));
    }

    #[test]
    fn empty_model_predicts_the_ttf_cap_instead_of_panicking() {
        // Regression test: `fit` rejects empty datasets, but a model can
        // arrive instance-less through serde; `predict` used to compute
        // `k = self.k.min(0) = 0` and panic on the `k - 1` underflow in
        // `select_nth_unstable_by`.
        let empty = KnnModel {
            k: 5,
            distance_weighted: true,
            means: Vec::new(),
            stds: Vec::new(),
            rows: Vec::new(),
            targets: Vec::new(),
            n_attributes: 0,
        };
        assert_eq!(empty.predict(&[]), EMPTY_MODEL_TTF_SECS);
        // The unweighted path used to hit the same underflow.
        let uniform = KnnModel { distance_weighted: false, n_attributes: 2, ..empty };
        assert_eq!(uniform.predict(&[1.0, 2.0]), EMPTY_MODEL_TTF_SECS);
        // A serde round-trip of an instance-less model stays panic-free.
        let json = serde_json::to_string(&uniform).unwrap();
        let back: KnnModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&[0.0, 0.0]), EMPTY_MODEL_TTF_SECS);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let m = KnnLearner::default().fit(&grid()).unwrap();
        let _ = m.predict(&[1.0, 2.0]);
    }

    #[test]
    fn constant_column_does_not_nan() {
        let mut ds = Dataset::new(vec!["c".into(), "x".into()], "y");
        for i in 0..30 {
            ds.push_row(vec![7.0, i as f64], i as f64).unwrap();
        }
        let m = KnnLearner::default().fit(&ds).unwrap();
        assert!(m.predict(&[7.0, 15.0]).is_finite());
    }
}
