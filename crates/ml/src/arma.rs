//! ARMA time-series models — the related-work comparator.
//!
//! Li, Vaidyanathan & Trivedi ("An Approach for Estimation of Software Aging
//! in a Web Server", ref. \[26\] of the paper) estimate resource exhaustion
//! with ARMA models over the monitored resource series. The paper argues its
//! ML approach is more general because ARMA assumes a fixed aging trend;
//! implementing ARMA lets the benches demonstrate that claim.
//!
//! Fitting uses the Hannan–Rissanen two-stage procedure: a long AR model is
//! fitted by least squares to estimate innovations, then the ARMA(p, q)
//! coefficients are obtained by regressing on lagged values *and* lagged
//! innovation estimates.

use crate::{linalg, MlError};
use serde::{Deserialize, Serialize};

/// A fitted ARMA(p, q) model with intercept:
/// `x_t = c + Σ φᵢ·x_{t−i} + Σ θⱼ·ε_{t−j} + ε_t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmaModel {
    intercept: f64,
    ar: Vec<f64>,
    ma: Vec<f64>,
    /// Innovation estimates for the tail of the training series (newest
    /// last), used to seed forecasting.
    residual_tail: Vec<f64>,
    /// The training series tail (newest last), used to seed forecasting.
    series_tail: Vec<f64>,
}

impl ArmaModel {
    /// Fits an ARMA(p, q) to `series` by Hannan–Rissanen.
    ///
    /// # Errors
    ///
    /// - [`MlError::InvalidParameter`] if `p == 0 && q == 0`,
    /// - [`MlError::TooFewInstances`] if the series is too short
    ///   (`series.len()` must exceed `3·(p + q) + 10`),
    /// - [`MlError::SingularSystem`] if the design matrix cannot be solved.
    pub fn fit(series: &[f64], p: usize, q: usize) -> Result<Self, MlError> {
        if p == 0 && q == 0 {
            return Err(MlError::InvalidParameter("ARMA needs p > 0 or q > 0".into()));
        }
        let needed = 3 * (p + q) + 10;
        if series.len() < needed {
            return Err(MlError::TooFewInstances { needed, got: series.len() });
        }

        // Stage 1: long AR to estimate innovations.
        let long_p = (p + q + 2).min(series.len() / 4);
        let ar_long = fit_ar(series, long_p)?;
        let mut residuals = vec![0.0; series.len()];
        for t in long_p..series.len() {
            let mut pred = ar_long[0];
            for i in 0..long_p {
                pred += ar_long[i + 1] * series[t - 1 - i];
            }
            residuals[t] = series[t] - pred;
        }

        // Stage 2: regress x_t on lags of x and lags of the residuals.
        let start = long_p + q.max(p);
        let rows = series.len() - start;
        let cols = 1 + p + q;
        let mut design = Vec::with_capacity(rows * cols);
        let mut y = Vec::with_capacity(rows);
        for t in start..series.len() {
            design.push(1.0);
            for i in 1..=p {
                design.push(series[t - i]);
            }
            for j in 1..=q {
                design.push(residuals[t - j]);
            }
            y.push(series[t]);
        }
        let coef =
            linalg::least_squares(&design, &y, rows, cols, 1e-8).ok_or(MlError::SingularSystem)?;

        let intercept = coef[0];
        let ar = coef[1..1 + p].to_vec();
        let ma = coef[1 + p..].to_vec();

        let tail_len = p.max(q).max(1);
        let series_tail = series[series.len() - tail_len..].to_vec();
        let residual_tail = residuals[residuals.len() - tail_len..].to_vec();
        Ok(ArmaModel { intercept, ar, ma, residual_tail, series_tail })
    }

    /// AR coefficients φ.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// MA coefficients θ.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// The intercept `c`.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Forecasts `horizon` steps beyond the end of the training series
    /// (future innovations are taken as zero, their expectation).
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let mut hist = self.series_tail.clone();
        let mut resid = self.residual_tail.clone();
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut x = self.intercept;
            for (i, &phi) in self.ar.iter().enumerate() {
                if let Some(&v) = hist.get(hist.len().wrapping_sub(1 + i)) {
                    x += phi * v;
                }
            }
            for (j, &theta) in self.ma.iter().enumerate() {
                if let Some(&e) = resid.get(resid.len().wrapping_sub(1 + j)) {
                    x += theta * e;
                }
            }
            out.push(x);
            hist.push(x);
            resid.push(0.0);
        }
        out
    }

    /// Predicts time to exhaustion: forecasts the resource series until it
    /// crosses `capacity`, in steps of `step_secs` seconds, up to
    /// `cap_secs`. Returns `cap_secs` when no crossing occurs in the
    /// horizon.
    ///
    /// This is how the ARMA comparator produces a TTF comparable with the
    /// paper's predictors.
    pub fn time_to_exhaustion(&self, capacity: f64, step_secs: f64, cap_secs: f64) -> f64 {
        let horizon = (cap_secs / step_secs).ceil() as usize;
        for (i, v) in self.forecast(horizon).into_iter().enumerate() {
            if v >= capacity {
                return ((i + 1) as f64 * step_secs).min(cap_secs);
            }
        }
        cap_secs
    }
}

/// Fits AR(p) with intercept by least squares; returns `[c, φ₁…φ_p]`.
fn fit_ar(series: &[f64], p: usize) -> Result<Vec<f64>, MlError> {
    let rows = series.len() - p;
    let cols = p + 1;
    let mut design = Vec::with_capacity(rows * cols);
    let mut y = Vec::with_capacity(rows);
    for t in p..series.len() {
        design.push(1.0);
        for i in 1..=p {
            design.push(series[t - i]);
        }
        y.push(series[t]);
    }
    linalg::least_squares(&design, &y, rows, cols, 1e-8).ok_or(MlError::SingularSystem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trend(n: usize, slope: f64) -> Vec<f64> {
        (0..n).map(|i| 10.0 + slope * i as f64).collect()
    }

    #[test]
    fn fits_and_forecasts_linear_trend() {
        let series = linear_trend(120, 2.0);
        let m = ArmaModel::fit(&series, 2, 1).unwrap();
        let fc = m.forecast(10);
        let expected_last = 10.0 + 2.0 * (119 + 10) as f64;
        assert!(
            (fc[9] - expected_last).abs() < 8.0,
            "forecast {} should continue the trend to ~{expected_last}",
            fc[9]
        );
    }

    #[test]
    fn ar1_on_stationary_series_reverts_to_mean() {
        // x_t = 0.5 * x_{t-1} + c, fixed point at 20.
        let mut series = vec![100.0];
        for _ in 0..150 {
            let prev = *series.last().unwrap();
            series.push(10.0 + 0.5 * prev);
        }
        let m = ArmaModel::fit(&series, 1, 0).unwrap();
        assert!((m.ar_coefficients()[0] - 0.5).abs() < 0.1);
        let fc = m.forecast(50);
        assert!((fc[49] - 20.0).abs() < 2.0);
    }

    #[test]
    fn rejects_degenerate_orders_and_short_series() {
        assert!(matches!(ArmaModel::fit(&[1.0; 50], 0, 0), Err(MlError::InvalidParameter(_))));
        assert!(matches!(
            ArmaModel::fit(&[1.0, 2.0, 3.0], 2, 2),
            Err(MlError::TooFewInstances { .. })
        ));
    }

    #[test]
    fn time_to_exhaustion_on_growing_resource() {
        // Grows ~2 MB per step; capacity 1024 MB from ~250: ~387 steps.
        let series = linear_trend(120, 2.0); // ends at 248
        let m = ArmaModel::fit(&series, 2, 1).unwrap();
        let ttf = m.time_to_exhaustion(1024.0, 15.0, 10_800.0);
        let expected = ((1024.0 - 248.0) / 2.0) * 15.0;
        assert!(
            (ttf - expected).abs() < expected * 0.3,
            "ttf {ttf} should be within 30% of {expected}"
        );
    }

    #[test]
    fn time_to_exhaustion_caps_for_flat_series() {
        let series: Vec<f64> =
            (0..100).map(|i| 50.0 + if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let m = ArmaModel::fit(&series, 1, 1).unwrap();
        assert_eq!(m.time_to_exhaustion(1024.0, 15.0, 10_800.0), 10_800.0);
    }

    #[test]
    fn accessors() {
        let series = linear_trend(100, 1.0);
        let m = ArmaModel::fit(&series, 2, 1).unwrap();
        assert_eq!(m.ar_coefficients().len(), 2);
        assert_eq!(m.ma_coefficients().len(), 1);
        assert!(m.intercept().is_finite());
    }
}
