//! Feature / variable selection (Experiment 4.3 of the paper).
//!
//! The paper's first attempt at the periodic-pattern scenario performed
//! poorly because "the model was paying too much attention to irrelevant
//! attributes"; following Hoffmann, Trivedi & Malek (ref. \[22\]) the authors
//! re-trained using only the variables related to the Java heap, which
//! rescued the accuracy. This module provides:
//!
//! - *expert selection* by name predicate (the paper's manual choice),
//! - *correlation ranking* with the target,
//! - *greedy forward selection* driven by hold-out MAE — an automated
//!   stand-in for the expert.

use crate::{Learner, MlError, Regressor};
use aging_dataset::{stats, Dataset};

/// Ranks every attribute by the absolute Pearson correlation of its column
/// with the target, strongest first.
///
/// # Example
///
/// ```
/// use aging_dataset::Dataset;
/// use aging_ml::feature_select::rank_by_correlation;
///
/// let mut ds = Dataset::new(vec!["signal".into(), "noise".into()], "y");
/// for i in 0..50 {
///     let x = i as f64;
///     ds.push_row(vec![x, (i % 3) as f64], 2.0 * x)?;
/// }
/// let ranked = rank_by_correlation(&ds);
/// assert_eq!(ranked[0].0, "signal");
/// # Ok::<(), aging_dataset::DatasetError>(())
/// ```
pub fn rank_by_correlation(data: &Dataset) -> Vec<(String, f64)> {
    let mut ranked: Vec<(String, f64)> = (0..data.n_attributes())
        .map(|c| {
            let col = data.column(c).expect("index in range");
            let corr = stats::correlation(&col, data.targets()).abs();
            (data.attribute_names()[c].clone(), corr)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// Projects `data` onto its `k` most target-correlated attributes.
///
/// # Errors
///
/// Propagates dataset projection failures.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn select_top_k(data: &Dataset, k: usize) -> Result<Dataset, MlError> {
    assert!(k > 0, "cannot select zero features");
    let ranked = rank_by_correlation(data);
    let names: Vec<&str> = ranked.iter().take(k).map(|(n, _)| n.as_str()).collect();
    Ok(data.select_columns(&names)?)
}

/// Expert selection: keeps the attributes whose name satisfies `keep`.
///
/// This is the operation the paper performs in Experiment 4.3 ("re-train the
/// model only with the variables related with the Java Heap evolution").
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] when no attribute matches.
pub fn select_by_name(
    data: &Dataset,
    mut keep: impl FnMut(&str) -> bool,
) -> Result<Dataset, MlError> {
    let names: Vec<&str> =
        data.attribute_names().iter().map(String::as_str).filter(|n| keep(n)).collect();
    if names.is_empty() {
        return Err(MlError::InvalidParameter("name predicate matched no attribute".into()));
    }
    Ok(data.select_columns(&names)?)
}

/// Greedy forward selection: starting from the empty set, repeatedly adds
/// the attribute that most reduces the MAE of `learner` on `holdout`,
/// stopping when no addition improves or `max_features` is reached.
///
/// Returns the selected attribute names in the order they were added.
///
/// # Errors
///
/// Propagates learner fitting failures.
///
/// # Panics
///
/// Panics if `holdout` is empty or its schema differs from `train`'s.
pub fn forward_select<L>(
    learner: &L,
    train: &Dataset,
    holdout: &Dataset,
    max_features: usize,
) -> Result<Vec<String>, MlError>
where
    L: Learner,
    L::Model: 'static,
{
    assert!(!holdout.is_empty(), "forward selection needs a non-empty holdout");
    assert_eq!(train.attribute_names(), holdout.attribute_names(), "train/holdout schema mismatch");
    let mut selected: Vec<String> = Vec::new();
    let mut best_mae = f64::INFINITY;

    while selected.len() < max_features.min(train.n_attributes()) {
        let mut round_best: Option<(String, f64)> = None;
        for cand in train.attribute_names() {
            if selected.iter().any(|s| s == cand) {
                continue;
            }
            let mut cols: Vec<&str> = selected.iter().map(String::as_str).collect();
            cols.push(cand);
            let sub_train = train.select_columns(&cols)?;
            let sub_hold = holdout.select_columns(&cols)?;
            let model = learner.fit(&sub_train)?;
            let mae = sub_hold
                .iter()
                .map(|r| (model.predict(r.values()) - r.target()).abs())
                .sum::<f64>()
                / sub_hold.len() as f64;
            if round_best.as_ref().is_none_or(|(_, m)| mae < *m) {
                round_best = Some((cand.clone(), mae));
            }
        }
        match round_best {
            Some((name, mae)) if mae < best_mae - 1e-12 => {
                best_mae = mae;
                selected.push(name);
            }
            _ => break,
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinRegLearner;

    fn mixed_data(n: usize) -> Dataset {
        // y = 4*a + small contribution from b; c is noise.
        let mut ds = Dataset::new(vec!["heap_a".into(), "sys_b".into(), "noise_c".into()], "y");
        let mut s = 3u64;
        for i in 0..n {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let a = i as f64;
            let b = (i % 7) as f64;
            ds.push_row(vec![a, b, noise * 100.0], 4.0 * a + 0.5 * b).unwrap();
        }
        ds
    }

    #[test]
    fn correlation_ranking_orders_signal_first() {
        let ds = mixed_data(200);
        let ranked = rank_by_correlation(&ds);
        assert_eq!(ranked[0].0, "heap_a");
        assert!(ranked[0].1 > 0.99);
        assert!(ranked.last().unwrap().1 < 0.3);
    }

    #[test]
    fn top_k_projects() {
        let ds = mixed_data(100);
        let top = select_top_k(&ds, 1).unwrap();
        assert_eq!(top.attribute_names(), &["heap_a".to_string()]);
        assert_eq!(top.len(), ds.len());
    }

    #[test]
    #[should_panic(expected = "zero features")]
    fn top_zero_panics() {
        let _ = select_top_k(&mixed_data(10), 0);
    }

    #[test]
    fn name_selection_mirrors_paper_heap_filter() {
        let ds = mixed_data(50);
        let heap_only = select_by_name(&ds, |n| n.starts_with("heap")).unwrap();
        assert_eq!(heap_only.n_attributes(), 1);
        assert!(select_by_name(&ds, |n| n.starts_with("zzz")).is_err());
    }

    #[test]
    fn forward_selection_finds_the_signal() {
        let ds = mixed_data(300);
        let (train, holdout) = ds.split_at(200);
        let picked = forward_select(&LinRegLearner::default(), &train, &holdout, 3).unwrap();
        assert_eq!(picked[0], "heap_a", "strongest attribute must be picked first");
        assert!(!picked.contains(&"noise_c".to_string()) || picked.len() == 3);
    }

    #[test]
    fn forward_selection_stops_when_no_improvement() {
        // Single informative attribute: selection should stop at 1-2 picks.
        let mut ds = Dataset::new(vec!["x".into(), "junk".into()], "y");
        for i in 0..100 {
            ds.push_row(vec![i as f64, 0.0], 2.0 * i as f64).unwrap();
        }
        let (train, holdout) = ds.split_at(70);
        let picked = forward_select(&LinRegLearner::default(), &train, &holdout, 2).unwrap();
        assert_eq!(picked, vec!["x".to_string()]);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn forward_selection_rejects_schema_mismatch() {
        let a = mixed_data(20);
        let mut b = Dataset::new(vec!["other".into()], "y");
        b.push_row(vec![1.0], 1.0).unwrap();
        let _ = forward_select(&LinRegLearner::default(), &a, &b, 1);
    }
}
