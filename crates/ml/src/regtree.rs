//! Plain regression trees (constant leaves) — the "Decision Trees"
//! comparator from the authors' preliminary study (ICAS'09, ref. \[14\] of
//! the paper), which M5P outperformed.
//!
//! Growth is identical to M5P's (standard-deviation-reduction splits);
//! leaves predict the mean of their training targets, and pruning uses the
//! same pessimistic `(n + ν)/(n − ν)` criterion with ν = 1.

use crate::{Learner, MlError, Regressor};
use aging_dataset::{stats, Dataset};
use serde::{Deserialize, Serialize};

/// Configuration for training [`RegressionTree`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct RegTreeLearner {
    /// Minimum number of instances per leaf.
    pub min_instances: usize,
    /// Whether to prune bottom-up.
    pub pruning: bool,
    /// Growth stops below this fraction of the root target deviation.
    pub sd_fraction: f64,
}

impl Default for RegTreeLearner {
    fn default() -> Self {
        RegTreeLearner { min_instances: 4, pruning: true, sd_fraction: 0.05 }
    }
}

/// A fitted regression tree with constant leaf predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    root: RtNode,
    attribute_names: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RtNode {
    Leaf { value: f64, n: usize, mae: f64 },
    Split { attr: usize, threshold: f64, n: usize, left: Box<RtNode>, right: Box<RtNode> },
}

impl RtNode {
    fn n(&self) -> usize {
        match self {
            RtNode::Leaf { n, .. } | RtNode::Split { n, .. } => *n,
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            RtNode::Leaf { .. } => 1,
            RtNode::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    fn error(&self) -> f64 {
        match self {
            RtNode::Leaf { n, mae, .. } => {
                let n = *n as f64;
                if n <= 1.0 {
                    f64::INFINITY
                } else {
                    mae * (n + 1.0) / (n - 1.0)
                }
            }
            RtNode::Split { left, right, .. } => {
                let nl = left.n() as f64;
                let nr = right.n() as f64;
                (nl * left.error() + nr * right.error()) / (nl + nr)
            }
        }
    }
}

impl RegressionTree {
    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }
}

impl Regressor for RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                RtNode::Leaf { value, .. } => return *value,
                RtNode::Split { attr, threshold, left, right, .. } => {
                    node = if x[*attr] <= *threshold { left } else { right };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "RegressionTree"
    }
}

/// Split threshold between two adjacent sorted attribute values.
///
/// The naive midpoint `(lo + hi) / 2` fails in two float corner cases:
/// it overflows to `±∞` when both values are huge, and it rounds *up to
/// `hi`* when the two are adjacent representable doubles. Either way the
/// `value <= threshold` partition then puts every row on one side, and
/// tree growth recurses forever on an unshrunk row set (a stack
/// overflow in release builds). Computing the midpoint as an offset from
/// `lo` and clamping it back to `lo` whenever it escapes `[lo, hi)`
/// guarantees a two-sided partition: rows valued ≤ `lo` go left, rows
/// valued ≥ `hi` go right.
pub(crate) fn split_threshold(lo: f64, hi: f64) -> f64 {
    debug_assert!(lo < hi);
    let mid = lo + (hi - lo) / 2.0;
    if (lo..hi).contains(&mid) {
        mid
    } else {
        lo
    }
}

impl Learner for RegTreeLearner {
    type Model = RegressionTree;

    fn fit(&self, data: &Dataset) -> Result<RegressionTree, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if self.min_instances == 0 {
            return Err(MlError::InvalidParameter("min_instances must be positive".into()));
        }
        let root_sd = data.target_std().expect("non-empty dataset");
        let rows: Vec<usize> = (0..data.len()).collect();
        let root = self.grow(data, rows, root_sd);
        Ok(RegressionTree { root, attribute_names: data.attribute_names().to_vec() })
    }
}

impl RegTreeLearner {
    fn grow(&self, data: &Dataset, rows: Vec<usize>, root_sd: f64) -> RtNode {
        let leaf = |rows: &[usize]| {
            let targets: Vec<f64> = rows.iter().map(|&i| data.target(i)).collect();
            let value = stats::mean(&targets);
            let mae = targets.iter().map(|t| (t - value).abs()).sum::<f64>() / targets.len() as f64;
            RtNode::Leaf { value, n: rows.len(), mae }
        };
        let n = rows.len();
        if n < 2 * self.min_instances {
            return leaf(&rows);
        }
        let targets: Vec<f64> = rows.iter().map(|&i| data.target(i)).collect();
        let sd = stats::std_dev(&targets);
        if sd <= self.sd_fraction * root_sd || sd == 0.0 {
            return leaf(&rows);
        }
        let Some((attr, threshold)) = self.best_split(data, &rows, sd) else {
            return leaf(&rows);
        };
        let (lrows, rrows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&i| data.value(i, attr) <= threshold);
        if lrows.is_empty() || rrows.is_empty() {
            // Degenerate threshold (cannot happen with the midpoint
            // clamped below, but a one-sided partition must never recurse
            // on the full row set).
            return leaf(&rows);
        }
        let left = self.grow(data, lrows, root_sd);
        let right = self.grow(data, rrows, root_sd);
        let split =
            RtNode::Split { attr, threshold, n, left: Box::new(left), right: Box::new(right) };
        if self.pruning {
            let as_leaf = leaf(&rows);
            if as_leaf.error() <= split.error() {
                return as_leaf;
            }
        }
        split
    }

    fn best_split(&self, data: &Dataset, rows: &[usize], parent_sd: f64) -> Option<(usize, f64)> {
        let n = rows.len();
        let mut best: Option<(f64, usize, f64)> = None;
        for attr in 0..data.n_attributes() {
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| data.value(a, attr).total_cmp(&data.value(b, attr)));
            let total: f64 = order.iter().map(|&i| data.target(i)).sum();
            let total_sq: f64 = order.iter().map(|&i| data.target(i) * data.target(i)).sum();
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for pos in 1..n {
                let prev = order[pos - 1];
                let t = data.target(prev);
                sum += t;
                sum_sq += t * t;
                if pos < self.min_instances || n - pos < self.min_instances {
                    continue;
                }
                let v_prev = data.value(prev, attr);
                let v_next = data.value(order[pos], attr);
                if v_next <= v_prev {
                    continue;
                }
                let nl = pos as f64;
                let nr = (n - pos) as f64;
                let var_l = (sum_sq / nl - (sum / nl).powi(2)).max(0.0);
                let var_r = ((total_sq - sum_sq) / nr - ((total - sum) / nr).powi(2)).max(0.0);
                let sdr =
                    parent_sd - (nl / n as f64) * var_l.sqrt() - (nr / n as f64) * var_r.sqrt();
                if sdr > best.map_or(0.0, |(s, _, _)| s) {
                    best = Some((sdr, attr, split_threshold(v_prev, v_next)));
                }
            }
        }
        best.map(|(_, a, t)| (a, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            let x = i as f64;
            ds.push_row(vec![x], if x < 50.0 { 10.0 } else { 90.0 }).unwrap();
        }
        ds
    }

    #[test]
    fn learns_step_function() {
        let t = RegTreeLearner::default().fit(&step_data()).unwrap();
        assert!((t.predict(&[10.0]) - 10.0).abs() < 1e-9);
        assert!((t.predict(&[80.0]) - 90.0).abs() < 1e-9);
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn constant_leaves_cannot_extrapolate_slopes() {
        // On truly linear data, a regression tree staircases: its prediction
        // at the extremes equals a training-range mean — this is exactly why
        // the paper's preliminary study found M5P better.
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for i in 0..100 {
            ds.push_row(vec![i as f64], 3.0 * i as f64).unwrap();
        }
        let t = RegTreeLearner::default().fit(&ds).unwrap();
        let p = t.predict(&[1000.0]);
        assert!(p <= 3.0 * 99.0 + 1e-9, "constant leaf cannot exceed max training target");
    }

    /// Two adjacent representable doubles whose naive midpoint
    /// `(a + b) / 2` rounds (ties-to-even) up to `b`.
    fn adjacent_pair() -> (f64, f64) {
        let a = f64::from_bits(1.0f64.to_bits() + 1);
        let b = f64::from_bits(1.0f64.to_bits() + 2);
        assert_eq!((a + b) / 2.0, b, "pair chosen so the naive midpoint rounds up");
        (a, b)
    }

    #[test]
    fn split_threshold_always_partitions_two_sided() {
        let (a, b) = adjacent_pair();
        let t = split_threshold(a, b);
        assert!((a..b).contains(&t), "threshold {t} must leave b strictly right");
        // Huge same-sign values: the naive midpoint overflows to ∞.
        let t = split_threshold(f64::MAX / 1.5, f64::MAX);
        assert!((f64::MAX / 1.5..f64::MAX).contains(&t));
        // Opposite-sign extremes: `hi - lo` overflows; fall back to `lo`.
        let t = split_threshold(f64::MIN, f64::MAX);
        assert!((f64::MIN..f64::MAX).contains(&t));
        // The ordinary case is still the midpoint.
        assert_eq!(split_threshold(1.0, 3.0), 2.0);
    }

    #[test]
    fn growth_terminates_when_best_boundary_is_adjacent_floats() {
        // Pre-fix, the threshold between two adjacent doubles rounded up
        // to the larger one, the `<= threshold` partition put every row
        // on the left, and `grow` recursed forever on the same rows —
        // a stack overflow in release builds.
        let (a, b) = adjacent_pair();
        let mut ds = Dataset::new(vec!["x".into()], "y");
        for _ in 0..10 {
            ds.push_row(vec![a], 0.0).unwrap();
            ds.push_row(vec![b], 100.0).unwrap();
        }
        let t = RegTreeLearner { pruning: false, ..Default::default() }.fit(&ds).unwrap();
        assert_eq!(t.n_leaves(), 2);
        assert!((t.predict(&[a]) - 0.0).abs() < 1e-9);
        assert!((t.predict(&[b]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_error_and_zero_min_rejected() {
        let ds = Dataset::new(vec!["x".into()], "y");
        assert!(matches!(RegTreeLearner::default().fit(&ds), Err(MlError::EmptyTrainingSet)));
        let mut one = Dataset::new(vec!["x".into()], "y");
        one.push_row(vec![0.0], 0.0).unwrap();
        let bad = RegTreeLearner { min_instances: 0, ..Default::default() };
        assert!(matches!(bad.fit(&one), Err(MlError::InvalidParameter(_))));
    }

    #[test]
    fn pruning_collapses_pure_noise() {
        // Targets independent of x: pruning should collapse to few leaves.
        let mut ds = Dataset::new(vec!["x".into()], "y");
        let mut s = 9u64;
        for i in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let noise = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            ds.push_row(vec![i as f64], noise).unwrap();
        }
        let pruned = RegTreeLearner::default().fit(&ds).unwrap();
        let unpruned = RegTreeLearner { pruning: false, ..Default::default() }.fit(&ds).unwrap();
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn deterministic() {
        let ds = step_data();
        let a = RegTreeLearner::default().fit(&ds).unwrap();
        let b = RegTreeLearner::default().fit(&ds).unwrap();
        assert_eq!(a, b);
    }
}
