//! Minimal dense linear algebra: just enough to solve the normal equations
//! of ordinary least squares with partial pivoting and a ridge fallback.

/// Solves `A x = b` for square `A` (row-major, `n × n`) by Gaussian
/// elimination with partial pivoting.
///
/// Returns `None` when a pivot is (numerically) zero, i.e. the system is
/// singular.
pub(crate) fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the diagonal.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for row in (col + 1)..n {
            let v = m[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    if x.iter().all(|v| v.is_finite()) {
        Some(x)
    } else {
        None
    }
}

/// Solves the ridge-regularised normal equations `(AᵀA + λI) x = Aᵀb` where
/// `A` is the `rows × cols` design matrix (row-major).
///
/// `lambda = 0` gives plain OLS. Returns `None` if even the regularised
/// system is singular.
pub(crate) fn least_squares(
    design: &[f64],
    targets: &[f64],
    rows: usize,
    cols: usize,
    lambda: f64,
) -> Option<Vec<f64>> {
    debug_assert_eq!(design.len(), rows * cols);
    debug_assert_eq!(targets.len(), rows);
    // Gram matrix AᵀA (cols × cols) and Aᵀb.
    let mut gram = vec![0.0; cols * cols];
    let mut atb = vec![0.0; cols];
    for r in 0..rows {
        let row = &design[r * cols..(r + 1) * cols];
        for i in 0..cols {
            atb[i] += row[i] * targets[r];
            for j in i..cols {
                gram[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle and add the ridge.
    for i in 0..cols {
        for j in 0..i {
            gram[i * cols + j] = gram[j * cols + i];
        }
        gram[i * cols + i] += lambda;
    }
    solve(&gram, &atb, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [3.0, 4.0];
        assert_eq!(solve(&a, &b, 2).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // First pivot is zero; only row swapping makes this solvable.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [2.0, 5.0];
        let x = solve(&a, &b, 2).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_general_3x3() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = [8.0, -11.0, -3.0];
        let x = solve(&a, &b, 3).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        let b = [1.0, 2.0];
        assert!(solve(&a, &b, 2).is_none());
    }

    #[test]
    fn least_squares_exact_line() {
        // y = 3 + 2x, design has intercept column.
        let design = [1.0, 0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let x = least_squares(&design, &y, 4, 2, 0.0).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // Noisy y = 1 + x: solution should land near (1, 1).
        let mut design = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let xv = i as f64 / 10.0;
            design.extend_from_slice(&[1.0, xv]);
            y.push(1.0 + xv + if i % 2 == 0 { 0.05 } else { -0.05 });
        }
        let x = least_squares(&design, &y, 50, 2, 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 0.1);
        assert!((x[1] - 1.0).abs() < 0.05);
    }

    #[test]
    fn ridge_rescues_collinear_design() {
        // Two identical columns: OLS is singular, ridge is not.
        let design = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        assert!(least_squares(&design, &y, 3, 2, 0.0).is_none());
        let x = least_squares(&design, &y, 3, 2, 1e-6).unwrap();
        // The two columns share the weight; their sum must be ~2.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }
}
